"""The versioned on-disk formats: round-trips, validation, legacy pickle,
and the sharded layout (manifest + base + per-shard archives)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.index import HC2LIndex
from repro.core.persistence import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_FILENAME,
    load_index,
    load_index_sharded,
    load_manifest,
    load_shard,
    save_index,
    save_index_sharded,
    shard_directory,
)

from helpers import random_query_pairs


@pytest.fixture(scope="module")
def built_index(request):
    graph = request.getfixturevalue("small_graph")
    return HC2LIndex.build(graph)


class TestRoundTrip:
    def test_distances_identical(self, small_graph, built_index, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path)
        loaded = HC2LIndex.load(path)
        for s, t in random_query_pairs(small_graph, 60, seed=3):
            assert loaded.distance(s, t) == built_index.distance(s, t)

    def test_batch_distances_identical(self, small_graph, built_index, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path)
        loaded = HC2LIndex.load(path)
        pairs = random_query_pairs(small_graph, 200, seed=4)
        assert loaded.distances(pairs).tolist() == built_index.distances(pairs).tolist()

    def test_flat_labelling_identical(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path)
        loaded = HC2LIndex.load(path)
        assert loaded.flat_labelling() == built_index.flat_labelling()
        assert loaded.labelling.labels == built_index.labelling.labels

    def test_metadata_round_trips(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path)
        loaded = HC2LIndex.load(path)
        assert loaded.parameters == built_index.parameters
        assert loaded.describe() == built_index.describe()
        assert loaded.graph.num_vertices == built_index.graph.num_vertices
        assert loaded.graph.num_edges == built_index.graph.num_edges
        assert loaded.hierarchy.height() == built_index.hierarchy.height()
        assert [n.bits for n in loaded.hierarchy.nodes] == [
            n.bits for n in built_index.hierarchy.nodes
        ]

    def test_save_load_functions_match_methods(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(built_index, path)
        loaded = load_index(path)
        assert loaded.flat_labelling() == built_index.flat_labelling()

    def test_uncontracted_index(self, small_graph, tmp_path):
        index = HC2LIndex.build(small_graph, contract=False)
        path = tmp_path / "plain.npz"
        index.save(path)
        loaded = HC2LIndex.load(path)
        for s, t in random_query_pairs(small_graph, 40, seed=8):
            assert loaded.distance(s, t) == index.distance(s, t)

    def test_tiny_graphs(self, tmp_path):
        from repro.graph.graph import Graph

        for n in (0, 1):
            index = HC2LIndex.build(Graph(n))
            path = tmp_path / f"tiny{n}.npz"
            index.save(path)
            loaded = HC2LIndex.load(path)
            assert loaded.graph.num_vertices == n


class TestValidation:
    def test_random_bytes_rejected(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"definitely not an index")
        with pytest.raises(ValueError, match="npz"):
            HC2LIndex.load(path)

    def test_npz_without_header_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        with open(path, "wb") as handle:
            np.savez(handle, something=np.zeros(3))
        with pytest.raises(ValueError, match="header"):
            HC2LIndex.load(path)

    def test_wrong_format_name_rejected(self, tmp_path):
        path = tmp_path / "wrong.npz"
        header = json.dumps({"format": "other-index", "version": 1}).encode()
        with open(path, "wb") as handle:
            np.savez(handle, header=np.frombuffer(header, dtype=np.uint8))
        with pytest.raises(ValueError, match="format"):
            HC2LIndex.load(path)

    def test_future_version_rejected(self, built_index, tmp_path):
        path = tmp_path / "future.npz"
        header = json.dumps({"format": FORMAT_NAME, "version": FORMAT_VERSION + 1}).encode()
        with open(path, "wb") as handle:
            np.savez(handle, header=np.frombuffer(header, dtype=np.uint8))
        with pytest.raises(ValueError, match="version"):
            HC2LIndex.load(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValueError):
            HC2LIndex.load(tmp_path / "does-not-exist.npz")


class TestVersionCompatibility:
    def test_version_1_archives_still_load(self, small_graph, built_index, tmp_path):
        """Archives written before the sharded layout (version 1) load fine."""
        path = tmp_path / "v1.npz"
        built_index.save(path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        header = json.loads(bytes(arrays["header"].tobytes()).decode("utf-8"))
        header["version"] = 1
        header.pop("label_layout", None)  # v1 headers predate the key
        arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8).copy()
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        loaded = HC2LIndex.load(path)
        pairs = random_query_pairs(small_graph, 30, seed=9)
        assert loaded.distances(pairs).tolist() == built_index.distances(pairs).tolist()

    def test_version_2_archives_still_load(self, small_graph, built_index, tmp_path):
        """Archives written before the subtree ranges (version 2) load fine."""
        path = tmp_path / "v2.npz"
        built_index.save(path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        header = json.loads(bytes(arrays["header"].tobytes()).decode("utf-8"))
        header["version"] = 2
        # v2 archives predate the persisted DFS linearisation
        for name in ("hier_core_position", "hier_node_range_lo", "hier_node_range_hi"):
            arrays.pop(name)
        arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8).copy()
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        loaded = HC2LIndex.load(path)
        pairs = random_query_pairs(small_graph, 30, seed=9)
        assert loaded.distances(pairs).tolist() == built_index.distances(pairs).tolist()
        # the DFS linearisation is recomputed on demand and matches
        assert loaded.hierarchy.subtree_ranges() == built_index.hierarchy.subtree_ranges()

    def test_current_archives_declare_version_3(self, built_index, tmp_path):
        path = tmp_path / "v3.npz"
        built_index.save(path)
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
            assert "hier_core_position" in archive.files
        assert header["version"] == FORMAT_VERSION == 3
        assert header["label_layout"] == "inline"


class TestShardedLayout:
    def test_layout_files(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path)
        layout = save_index_sharded(built_index, path, num_shards=3)
        assert layout == shard_directory(path)
        assert (layout / MANIFEST_FILENAME).exists()
        assert (layout / "base.npz").exists()
        _, manifest = load_manifest(path)
        assert len(manifest["shards"]) == 3
        for shard in manifest["shards"]:
            assert (layout / shard["file"]).exists()
        core_n = built_index.contraction.core.num_vertices
        assert manifest["boundaries"][0] == 0
        assert manifest["boundaries"][-1] == core_n

    def test_round_trip_through_concat(self, small_graph, built_index, tmp_path):
        path = tmp_path / "index.npz"
        save_index_sharded(built_index, path, num_shards=4)
        rebuilt = load_index_sharded(path)
        assert rebuilt.flat_labelling() == built_index.flat_labelling()
        pairs = random_query_pairs(small_graph, 60, seed=12)
        assert rebuilt.distances(pairs).tolist() == built_index.distances(pairs).tolist()
        assert rebuilt.parameters == built_index.parameters
        assert rebuilt.describe() == built_index.describe()

    def test_shards_reassemble_the_labelling(self, built_index, tmp_path):
        from repro.core.flat import FlatLabelling

        path = tmp_path / "index.npz"
        save_index_sharded(built_index, path, num_shards=3)
        parts = [load_shard(path, k) for k in range(3)]
        assert FlatLabelling.concat(parts) == built_index.flat_labelling()

    def test_shard_mmap_is_read_only(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        save_index_sharded(built_index, path, num_shards=2)
        shard = load_shard(path, 1, mmap=True)
        assert isinstance(shard.values, np.memmap)
        assert not shard.values.flags.writeable
        layout = shard_directory(path)
        assert (layout / "shard-0001.npz.mmap" / "label_values.npy").exists()

    def test_explicit_boundaries(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        core_n = built_index.contraction.core.num_vertices
        cut = core_n // 3
        save_index_sharded(built_index, path, boundaries=[0, cut, core_n])
        _, manifest = load_manifest(path)
        assert manifest["boundaries"] == [0, cut, core_n]
        assert load_shard(path, 0).num_vertices == cut

    def test_resharding_drops_orphan_files(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        layout = save_index_sharded(built_index, path, num_shards=4)
        assert (layout / "shard-0003.npz").exists()
        load_shard(path, 3, mmap=True)  # materialise a label-sized sidecar dir
        assert (layout / "shard-0003.npz.mmap").is_dir()
        save_index_sharded(built_index, path, num_shards=2)
        assert not (layout / "shard-0003.npz").exists()
        assert not (layout / "shard-0003.npz.mmap").exists()
        assert load_index_sharded(path).flat_labelling() == built_index.flat_labelling()

    def test_no_stray_tmp_files_after_save(self, built_index, tmp_path):
        """Archives are written via tmp + atomic rename; nothing lingers."""
        path = tmp_path / "index.npz"
        layout = save_index_sharded(built_index, path, num_shards=2)
        leftovers = [p.name for p in layout.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_base_archive_refuses_plain_load(self, built_index, tmp_path):
        """base.npz has no inline labels; load_index must say so clearly."""
        path = tmp_path / "index.npz"
        layout = save_index_sharded(built_index, path, num_shards=2)
        with pytest.raises(ValueError, match="sharded"):
            load_index(layout / "base.npz")

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="manifest"):
            load_manifest(tmp_path / "nothing.npz")

    def test_corrupt_manifest_rejected(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        layout = save_index_sharded(built_index, path, num_shards=2)
        manifest_path = layout / MANIFEST_FILENAME
        broken = json.loads(manifest_path.read_text())
        broken["format"] = "something-else"
        manifest_path.write_text(json.dumps(broken))
        with pytest.raises(ValueError, match="format"):
            load_manifest(path)

    def test_shard_id_out_of_range(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        save_index_sharded(built_index, path, num_shards=2)
        with pytest.raises(ValueError, match="shard"):
            load_shard(path, 5)


class TestLegacyPickle:
    def test_legacy_pickle_behind_flag(self, small_graph, built_index, tmp_path):
        import pickle

        path = tmp_path / "legacy.pickle"
        with open(path, "wb") as handle:
            pickle.dump(built_index, handle)
        # refused by default ...
        with pytest.raises(ValueError):
            HC2LIndex.load(path)
        # ... accepted with the explicit opt-in
        loaded = HC2LIndex.load(path, allow_pickle=True)
        for s, t in random_query_pairs(small_graph, 25, seed=5):
            assert loaded.distance(s, t) == built_index.distance(s, t)

    def test_pre_flat_storage_pickle_normalised(self, small_graph, built_index, tmp_path):
        """Pickles from the nested-label era load and answer queries.

        Old-format pickles restore ``__dict__`` directly: a ``labelling``
        instance attribute, no ``_flat`` / ``_engine``.  The loader must
        rebuild the flat-primary storage from that state.
        """
        import pickle

        legacy = object.__new__(HC2LIndex)
        legacy.__dict__ = {
            "graph": built_index.graph,
            "parameters": built_index.parameters,
            "contraction": built_index.contraction,
            "hierarchy": built_index.hierarchy,
            "labelling": built_index.flat_labelling().to_labelling(),
            "stats": built_index.stats,
            "construction_seconds": built_index.construction_seconds,
            "_extra": {},
        }
        path = tmp_path / "pre-flat.pickle"
        with open(path, "wb") as handle:
            pickle.dump(legacy, handle)
        loaded = HC2LIndex.load(path, allow_pickle=True)
        pairs = random_query_pairs(small_graph, 25, seed=8)
        assert loaded.distances(pairs).tolist() == built_index.distances(pairs).tolist()
        assert loaded.labelling.labels == built_index.labelling.labels

    def test_pickled_non_index_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pickle"
        with open(path, "wb") as handle:
            pickle.dump([1, 2, 3], handle)
        with pytest.raises(TypeError):
            HC2LIndex.load(path, allow_pickle=True)

    def test_graph_without_csr_slot_still_searchable(self):
        """Graphs from pre-CSR pickles lack the _csr slot; csr() must cope."""
        from repro.graph.graph import Graph
        from repro.graph.search import dijkstra

        legacy = object.__new__(Graph)
        legacy._adj = [{1: 2.0}, {0: 2.0}]
        legacy._num_edges = 1
        assert dijkstra(legacy, 0)[1] == 2.0
