"""The versioned .npz index format: round-trips, validation, legacy pickle."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.index import HC2LIndex
from repro.core.persistence import FORMAT_NAME, FORMAT_VERSION, load_index, save_index

from helpers import random_query_pairs


@pytest.fixture(scope="module")
def built_index(request):
    graph = request.getfixturevalue("small_graph")
    return HC2LIndex.build(graph)


class TestRoundTrip:
    def test_distances_identical(self, small_graph, built_index, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path)
        loaded = HC2LIndex.load(path)
        for s, t in random_query_pairs(small_graph, 60, seed=3):
            assert loaded.distance(s, t) == built_index.distance(s, t)

    def test_batch_distances_identical(self, small_graph, built_index, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path)
        loaded = HC2LIndex.load(path)
        pairs = random_query_pairs(small_graph, 200, seed=4)
        assert loaded.distances(pairs).tolist() == built_index.distances(pairs).tolist()

    def test_flat_labelling_identical(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path)
        loaded = HC2LIndex.load(path)
        assert loaded.flat_labelling() == built_index.flat_labelling()
        assert loaded.labelling.labels == built_index.labelling.labels

    def test_metadata_round_trips(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path)
        loaded = HC2LIndex.load(path)
        assert loaded.parameters == built_index.parameters
        assert loaded.describe() == built_index.describe()
        assert loaded.graph.num_vertices == built_index.graph.num_vertices
        assert loaded.graph.num_edges == built_index.graph.num_edges
        assert loaded.hierarchy.height() == built_index.hierarchy.height()
        assert [n.bits for n in loaded.hierarchy.nodes] == [
            n.bits for n in built_index.hierarchy.nodes
        ]

    def test_save_load_functions_match_methods(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(built_index, path)
        loaded = load_index(path)
        assert loaded.flat_labelling() == built_index.flat_labelling()

    def test_uncontracted_index(self, small_graph, tmp_path):
        index = HC2LIndex.build(small_graph, contract=False)
        path = tmp_path / "plain.npz"
        index.save(path)
        loaded = HC2LIndex.load(path)
        for s, t in random_query_pairs(small_graph, 40, seed=8):
            assert loaded.distance(s, t) == index.distance(s, t)

    def test_tiny_graphs(self, tmp_path):
        from repro.graph.graph import Graph

        for n in (0, 1):
            index = HC2LIndex.build(Graph(n))
            path = tmp_path / f"tiny{n}.npz"
            index.save(path)
            loaded = HC2LIndex.load(path)
            assert loaded.graph.num_vertices == n


class TestValidation:
    def test_random_bytes_rejected(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"definitely not an index")
        with pytest.raises(ValueError, match="npz"):
            HC2LIndex.load(path)

    def test_npz_without_header_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        with open(path, "wb") as handle:
            np.savez(handle, something=np.zeros(3))
        with pytest.raises(ValueError, match="header"):
            HC2LIndex.load(path)

    def test_wrong_format_name_rejected(self, tmp_path):
        path = tmp_path / "wrong.npz"
        header = json.dumps({"format": "other-index", "version": 1}).encode()
        with open(path, "wb") as handle:
            np.savez(handle, header=np.frombuffer(header, dtype=np.uint8))
        with pytest.raises(ValueError, match="format"):
            HC2LIndex.load(path)

    def test_future_version_rejected(self, built_index, tmp_path):
        path = tmp_path / "future.npz"
        header = json.dumps({"format": FORMAT_NAME, "version": FORMAT_VERSION + 1}).encode()
        with open(path, "wb") as handle:
            np.savez(handle, header=np.frombuffer(header, dtype=np.uint8))
        with pytest.raises(ValueError, match="version"):
            HC2LIndex.load(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValueError):
            HC2LIndex.load(tmp_path / "does-not-exist.npz")


class TestLegacyPickle:
    def test_legacy_pickle_behind_flag(self, small_graph, built_index, tmp_path):
        import pickle

        path = tmp_path / "legacy.pickle"
        with open(path, "wb") as handle:
            pickle.dump(built_index, handle)
        # refused by default ...
        with pytest.raises(ValueError):
            HC2LIndex.load(path)
        # ... accepted with the explicit opt-in
        loaded = HC2LIndex.load(path, allow_pickle=True)
        for s, t in random_query_pairs(small_graph, 25, seed=5):
            assert loaded.distance(s, t) == built_index.distance(s, t)

    def test_pre_flat_storage_pickle_normalised(self, small_graph, built_index, tmp_path):
        """Pickles from the nested-label era load and answer queries.

        Old-format pickles restore ``__dict__`` directly: a ``labelling``
        instance attribute, no ``_flat`` / ``_engine``.  The loader must
        rebuild the flat-primary storage from that state.
        """
        import pickle

        legacy = object.__new__(HC2LIndex)
        legacy.__dict__ = {
            "graph": built_index.graph,
            "parameters": built_index.parameters,
            "contraction": built_index.contraction,
            "hierarchy": built_index.hierarchy,
            "labelling": built_index.flat_labelling().to_labelling(),
            "stats": built_index.stats,
            "construction_seconds": built_index.construction_seconds,
            "_extra": {},
        }
        path = tmp_path / "pre-flat.pickle"
        with open(path, "wb") as handle:
            pickle.dump(legacy, handle)
        loaded = HC2LIndex.load(path, allow_pickle=True)
        pairs = random_query_pairs(small_graph, 25, seed=8)
        assert loaded.distances(pairs).tolist() == built_index.distances(pairs).tolist()
        assert loaded.labelling.labels == built_index.labelling.labels

    def test_pickled_non_index_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pickle"
        with open(path, "wb") as handle:
            pickle.dump([1, 2, 3], handle)
        with pytest.raises(TypeError):
            HC2LIndex.load(path, allow_pickle=True)

    def test_graph_without_csr_slot_still_searchable(self):
        """Graphs from pre-CSR pickles lack the _csr slot; csr() must cope."""
        from repro.graph.graph import Graph
        from repro.graph.search import dijkstra

        legacy = object.__new__(Graph)
        legacy._adj = [{1: 2.0}, {0: 2.0}]
        legacy._num_edges = 1
        assert dijkstra(legacy, 0)[1] == 2.0
