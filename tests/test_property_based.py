"""Property-based tests (hypothesis) for the core data structures and invariants.

Strategy: generate small random weighted graphs (connected or not), then
check the invariants the paper's correctness arguments rely on:

* Dijkstra matches networkx,
* balanced cuts really separate the two sides and stay balanced,
* shortcut-enhanced children are distance preserving (Definition 4.5),
* the balanced tree hierarchy satisfies the LCA cut-cover condition
  (Definition 4.1) and the labelling answers every query exactly,
* every baseline labelling agrees with Dijkstra on every pair.
"""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.h2h import H2HIndex
from repro.baselines.hub_labelling import HubLabelling
from repro.baselines.phl import PrunedHighwayLabelling
from repro.baselines.pll import PrunedLandmarkLabelling
from repro.core.index import HC2LIndex
from repro.graph.graph import Graph
from repro.graph.search import dijkstra
from repro.partition.cut import balanced_cut, separates
from repro.partition.shortcuts import child_adjacency, compute_shortcuts, is_distance_preserving
from repro.partition.working_graph import dijkstra_adjacency, working_graph_from

INF = float("inf")

# Keep the generated graphs small: every property re-solves all-pairs
# shortest paths, so size 25 keeps each example in the low milliseconds.
SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def weighted_graphs(draw, min_vertices: int = 2, max_vertices: int = 25, connected: bool = False):
    """A random weighted graph, optionally forced to be connected."""
    n = draw(st.integers(min_vertices, max_vertices))
    graph = Graph(n)
    if connected and n > 1:
        # random spanning tree first
        for v in range(1, n):
            parent = draw(st.integers(0, v - 1))
            weight = draw(st.integers(1, 20))
            graph.add_edge(parent, v, float(weight))
    max_extra = min(3 * n, n * (n - 1) // 2)
    extra = draw(st.integers(0, max_extra))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        weight = draw(st.integers(1, 20))
        graph.add_edge(u, v, float(weight))
    return graph


def all_pairs(graph: Graph):
    return {s: dijkstra(graph, s) for s in graph.vertices()}


class TestGraphProperties:
    @SETTINGS
    @given(weighted_graphs())
    def test_dijkstra_matches_networkx(self, graph):
        nxg = graph.to_networkx()
        expected = dict(nx.all_pairs_dijkstra_path_length(nxg))
        for s in graph.vertices():
            dist = dijkstra(graph, s)
            for t in graph.vertices():
                reference = expected.get(s, {}).get(t, INF)
                assert dist[t] == pytest.approx(reference) or (
                    math.isinf(dist[t]) and math.isinf(reference)
                )

    @SETTINGS
    @given(weighted_graphs())
    def test_distance_is_a_metric_up_to_triangle_inequality(self, graph):
        distances = all_pairs(graph)
        vertices = list(graph.vertices())[:8]
        for s in vertices:
            assert distances[s][s] == 0.0
            for t in vertices:
                assert distances[s][t] == pytest.approx(distances[t][s])
                for via in vertices:
                    if distances[s][via] < INF and distances[via][t] < INF:
                        assert (
                            distances[s][t]
                            <= distances[s][via] + distances[via][t] + 1e-9
                        )


class TestPartitionProperties:
    @SETTINGS
    @given(weighted_graphs(min_vertices=6, max_vertices=30, connected=True), st.sampled_from([0.2, 0.3]))
    def test_balanced_cut_separates_and_covers(self, graph, beta):
        adjacency = working_graph_from(graph)
        result = balanced_cut(adjacency, beta)
        union = set(result.part_a) | set(result.cut) | set(result.part_b)
        assert union == set(adjacency)
        assert separates(adjacency, result)

    @SETTINGS
    @given(weighted_graphs(min_vertices=8, max_vertices=28, connected=True))
    def test_shortcut_children_are_distance_preserving(self, graph):
        adjacency = working_graph_from(graph)
        result = balanced_cut(adjacency, 0.25)
        if not result.part_a or not result.part_b:
            return
        cut_distances = {c: dijkstra_adjacency(adjacency, c) for c in result.cut}
        for part in (result.part_a, result.part_b):
            shortcuts = compute_shortcuts(adjacency, result.cut, part, cut_distances)
            child = child_adjacency(adjacency, part, shortcuts)
            assert is_distance_preserving(adjacency, child)


class TestHC2LProperties:
    @SETTINGS
    @given(weighted_graphs(min_vertices=2, max_vertices=30), st.sampled_from([2, 4, 8]))
    def test_hc2l_answers_every_pair_exactly(self, graph, leaf_size):
        index = HC2LIndex.build(graph, leaf_size=leaf_size)
        distances = all_pairs(graph)
        for s in graph.vertices():
            for t in graph.vertices():
                expected = distances[s][t]
                got = index.distance(s, t)
                if math.isinf(expected):
                    assert math.isinf(got)
                else:
                    assert got == pytest.approx(expected, rel=1e-6)

    @SETTINGS
    @given(weighted_graphs(min_vertices=4, max_vertices=25, connected=True))
    def test_lca_cover_property(self, graph):
        index = HC2LIndex.build(graph, contract=False, leaf_size=2)
        hierarchy = index.hierarchy
        distances = all_pairs(graph)
        for s in graph.vertices():
            for t in graph.vertices():
                if s == t:
                    continue
                cut = hierarchy.lca_node(s, t).cut
                via = min(
                    (distances[s][c] + distances[c][t] for c in cut),
                    default=INF,
                )
                assert via == pytest.approx(distances[s][t], rel=1e-6)

    @SETTINGS
    @given(weighted_graphs(min_vertices=4, max_vertices=25))
    def test_tail_pruning_never_changes_answers(self, graph):
        pruned = HC2LIndex.build(graph, tail_pruning=True)
        naive = HC2LIndex.build(graph, tail_pruning=False)
        assert pruned.labelling.total_entries() <= naive.labelling.total_entries()
        for s in graph.vertices():
            for t in graph.vertices():
                a, b = pruned.distance(s, t), naive.distance(s, t)
                assert (math.isinf(a) and math.isinf(b)) or a == pytest.approx(b, rel=1e-9)

    @SETTINGS
    @given(weighted_graphs(min_vertices=3, max_vertices=22, connected=True))
    def test_hierarchy_height_bound(self, graph):
        index = HC2LIndex.build(graph, beta=0.25, leaf_size=2, contract=False)
        n = graph.num_vertices
        bound = math.log(max(n, 2)) / math.log(1 / 0.75) + 3
        assert index.tree_height() <= bound


class TestBaselineProperties:
    @SETTINGS
    @given(weighted_graphs(min_vertices=2, max_vertices=22))
    def test_all_labellings_agree_with_dijkstra(self, graph):
        distances = all_pairs(graph)
        indexes = [
            PrunedLandmarkLabelling.build(graph),
            PrunedHighwayLabelling.build(graph),
            H2HIndex.build(graph),
        ]
        for s in graph.vertices():
            for t in graph.vertices():
                expected = distances[s][t]
                for index in indexes:
                    got = index.distance(s, t)
                    if math.isinf(expected):
                        assert math.isinf(got)
                    else:
                        assert got == pytest.approx(expected, rel=1e-6)

    @SETTINGS
    @given(weighted_graphs(min_vertices=2, max_vertices=18, connected=True))
    def test_hub_labelling_with_ch_order(self, graph):
        hl = HubLabelling.build(graph)
        distances = all_pairs(graph)
        for s in graph.vertices():
            for t in graph.vertices():
                assert hl.distance(s, t) == pytest.approx(distances[s][t], rel=1e-6)
