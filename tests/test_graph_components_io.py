"""Unit tests for connected components and DIMACS I/O."""

from __future__ import annotations

import gzip

import pytest

from repro.graph.builders import graph_from_edges
from repro.graph.components import (
    components_of_adjacency,
    connected_components,
    is_connected,
    largest_component,
)
from repro.graph.io import (
    iter_query_pairs,
    read_coordinates,
    read_dimacs,
    write_coordinates,
    write_dimacs,
)


class TestComponents:
    def test_single_component(self, uniform_grid):
        assert is_connected(uniform_grid)
        assert len(connected_components(uniform_grid)) == 1
        assert len(largest_component(uniform_grid)) == uniform_grid.num_vertices

    def test_multiple_components(self, disconnected_graph):
        components = connected_components(disconnected_graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 3, 4]
        assert not is_connected(disconnected_graph)
        assert len(largest_component(disconnected_graph)) == 4

    def test_components_respect_allowed_subset(self, disconnected_graph):
        components = connected_components(disconnected_graph, allowed=[0, 1, 4, 5])
        assert sorted(sorted(c) for c in components) == [[0, 1], [4, 5]]

    def test_components_of_adjacency(self):
        adjacency = {0: {1: 1.0}, 1: {0: 1.0}, 2: {}, 3: {4: 1.0}, 4: {3: 1.0}}
        components = components_of_adjacency(adjacency)
        assert sorted(sorted(c) for c in components) == [[0, 1], [2], [3, 4]]

    def test_empty_graph_is_connected(self):
        assert is_connected(graph_from_edges([], num_vertices=0))

    def test_component_vertices_are_sorted(self, disconnected_graph):
        for component in connected_components(disconnected_graph):
            assert component == sorted(component)


class TestDimacsIO:
    def test_round_trip(self, tmp_path, small_graph):
        path = tmp_path / "net.gr"
        write_dimacs(small_graph, path)
        loaded = read_dimacs(path)
        assert loaded.num_vertices == small_graph.num_vertices
        assert loaded.num_edges == small_graph.num_edges
        assert sorted(loaded.edges()) == pytest.approx(sorted(small_graph.edges()))

    def test_gzip_round_trip(self, tmp_path):
        graph = graph_from_edges([(0, 1, 3.0), (1, 2, 4.0)])
        path = tmp_path / "net.gr.gz"
        write_dimacs(graph, path)
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("c ")
        loaded = read_dimacs(path)
        assert sorted(loaded.edges()) == [(0, 1, 3.0), (1, 2, 4.0)]

    def test_directed_arcs_collapse_to_min(self, tmp_path):
        path = tmp_path / "asym.gr"
        path.write_text("p sp 2 2\na 1 2 10\na 2 1 4\n")
        graph = read_dimacs(path)
        assert graph.edge_weight(0, 1) == 4.0

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "c.gr"
        path.write_text("c hello\n\np sp 3 2\nc more\na 1 2 1\na 2 3 2\n")
        graph = read_dimacs(path)
        assert graph.num_edges == 2

    def test_missing_problem_line_rejected(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("a 1 2 1\n")
        with pytest.raises(ValueError):
            read_dimacs(path)

    def test_malformed_arc_rejected(self, tmp_path):
        path = tmp_path / "bad2.gr"
        path.write_text("p sp 2 1\na 1 2\n")
        with pytest.raises(ValueError):
            read_dimacs(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "bad3.gr"
        path.write_text("p sp 2 1\nx 1 2 3\n")
        with pytest.raises(ValueError):
            read_dimacs(path)

    def test_coordinates_round_trip(self, tmp_path):
        coords = {0: (100.0, 200.0), 1: (-5.0, 40.0)}
        path = tmp_path / "net.co"
        write_coordinates(coords, path)
        loaded = read_coordinates(path)
        assert loaded == coords

    def test_malformed_coordinates_rejected(self, tmp_path):
        path = tmp_path / "bad.co"
        path.write_text("v 1 2\n")
        with pytest.raises(ValueError):
            read_coordinates(path)

    def test_iter_query_pairs(self, tmp_path):
        path = tmp_path / "pairs.txt"
        path.write_text("# comment\n1 2\n3 4\n\n")
        assert list(iter_query_pairs(path)) == [(1, 2), (3, 4)]
