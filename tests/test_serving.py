"""Serving layer: caching, coalescing, mmap loading, single-copy storage.

Every serving path must return *bit-identical* answers to the bare
engine - the assertions use ``==``, not ``approx``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.index import HC2LIndex
from repro.core.labelling import HC2LLabelling
from repro.experiments.workloads import random_pairs, skewed_pairs
from repro.serving import CachingOracle, CoalescingServer, load_index_mmap


@pytest.fixture(scope="module")
def index(small_graph):
    return HC2LIndex.build(small_graph)


# --------------------------------------------------------------------- #
# CachingOracle
# --------------------------------------------------------------------- #
class TestCachingOracle:
    def test_answers_identical_to_engine(self, index, small_graph):
        cached = CachingOracle(index)
        pairs = random_pairs(small_graph, 300, seed=3)
        direct = index.distances(pairs)
        # twice: first pass fills the cache, second pass serves from it
        assert cached.distances(pairs).tolist() == direct.tolist()
        assert cached.distances(pairs).tolist() == direct.tolist()
        for s, t in pairs[:25]:
            assert cached.distance(s, t) == index.distance(s, t)

    def test_hit_accounting_on_skewed_workload(self, index, small_graph):
        cached = CachingOracle(index)
        workload = skewed_pairs(small_graph, 2000, seed=11, exponent=1.2)
        cached.distances(workload)
        stats = cached.stats
        assert stats.pair_hits + stats.pair_misses == len(workload)
        # Zipf-skewed traffic revisits hot pairs; the cache must notice
        assert stats.pair_hits > 0
        assert 0.0 < stats.hit_rate() < 1.0
        # replaying the workload is then (almost) all hits
        before_hits = stats.pair_hits
        cached.distances(workload)
        assert stats.pair_hits >= before_hits + len(workload) - cached.max_pairs

    def test_repeat_traffic_fully_cached(self, index, small_graph):
        cached = CachingOracle(index)
        pairs = random_pairs(small_graph, 50, seed=5)
        cached.distances(pairs)
        misses_after_first = cached.stats.pair_misses
        cached.distances(pairs)
        assert cached.stats.pair_misses == misses_after_first

    def test_symmetric_pairs_share_one_entry(self, index):
        cached = CachingOracle(index)
        first = cached.distance(3, 17)
        second = cached.distance(17, 3)
        assert first == second
        assert cached.stats.pair_hits == 1
        assert cached.stats.pair_misses == 1

    def test_pair_cache_respects_capacity(self, index, small_graph):
        cached = CachingOracle(index, max_pairs=16)
        cached.distances(random_pairs(small_graph, 400, seed=7))
        assert len(cached._pairs) <= 16

    def test_row_cache_hits_and_copies(self, index, small_graph):
        cached = CachingOracle(index)
        targets = list(range(0, small_graph.num_vertices, 5))
        row = cached.one_to_many(2, targets)
        assert row.tolist() == index.one_to_many(2, targets).tolist()
        assert cached.stats.row_misses == 1
        row[0] = -1.0  # mutating the returned row must not poison the cache
        again = cached.one_to_many(2, targets)
        assert cached.stats.row_hits == 1
        assert again.tolist() == index.one_to_many(2, targets).tolist()

    def test_many_to_many_identical_and_matrix_cached(self, index):
        cached = CachingOracle(index)
        sources = [0, 7, 13]
        targets = [2, 9, 40, 77]
        direct = index.many_to_many(sources, targets)
        assert cached.many_to_many(sources, targets).tolist() == direct.tolist()
        assert cached.stats.matrix_misses == 1
        assert cached.stats.row_misses == len(sources)
        # the repeat request is one matrix hit; no row assembly at all
        assert cached.many_to_many(sources, targets).tolist() == direct.tolist()
        assert cached.stats.matrix_hits == 1
        assert cached.stats.row_hits == 0

    def test_many_to_many_returns_copies(self, index):
        cached = CachingOracle(index)
        sources, targets = [0, 7], [2, 9, 40]
        direct = index.many_to_many(sources, targets)
        first = cached.many_to_many(sources, targets)
        first[0, 0] = -1.0  # mutating a result must not poison the cache
        assert cached.many_to_many(sources, targets).tolist() == direct.tolist()

    def test_many_to_many_in_batch_source_dedup(self, index):
        """A source repeated within one request is assembled once and
        counts as a row hit from the second occurrence on."""
        cached = CachingOracle(index)
        sources = [5, 9, 5, 5]
        targets = [2, 40]
        direct = index.many_to_many(sources, targets)
        assert cached.many_to_many(sources, targets).tolist() == direct.tolist()
        assert cached.stats.row_misses == 2  # two distinct sources
        assert cached.stats.row_hits == 2  # the two repeats of source 5

    def test_matrix_cache_respects_capacity(self, index):
        cached = CachingOracle(index, max_matrices=2)
        for s in range(4):
            cached.many_to_many([s], [10, 11])
        assert len(cached._matrices) <= 2
        # LRU: the oldest matrix was evicted, the newest still hits
        cached.many_to_many([3], [10, 11])
        assert cached.stats.matrix_hits == 1
        cached.many_to_many([0], [10, 11])
        assert cached.stats.matrix_misses == 5  # s=0 re-assembled after eviction

    def test_matrix_stats_in_requests_and_hit_rate(self, index):
        cached = CachingOracle(index)
        cached.many_to_many([0], [1])
        cached.many_to_many([0], [1])
        assert cached.stats.requests == cached.stats.matrix_hits + cached.stats.matrix_misses + cached.stats.row_misses
        assert cached.stats.hit_rate() > 0.0
        assert cached.stats.as_dict()["matrix_hits"] == 1
        cached.clear()
        cached.many_to_many([0], [1])
        assert cached.stats.matrix_misses == 2  # clear() drops matrices too

    def test_metadata_passthrough(self, index):
        cached = CachingOracle(index)
        assert cached.index_size_bytes == index.index_size_bytes
        assert cached.supports_batch == index.supports_batch
        assert cached.distance_with_hub_count(0, 9) == index.distance_with_hub_count(0, 9)

    def test_invalid_capacity_rejected(self, index):
        with pytest.raises(ValueError):
            CachingOracle(index, max_pairs=0)
        with pytest.raises(ValueError):
            CachingOracle(index, max_rows=0)
        with pytest.raises(ValueError):
            CachingOracle(index, max_matrices=0)

    def test_clear_preserves_stats(self, index):
        cached = CachingOracle(index)
        cached.distance(0, 5)
        cached.clear()
        assert cached.stats.pair_misses == 1
        cached.distance(0, 5)
        assert cached.stats.pair_misses == 2

    def test_float_ids_rejected_regardless_of_cache_state(self, index):
        """A warm cache must not turn an invalid query into a hit."""
        cached = CachingOracle(index)
        with pytest.raises(ValueError):
            cached.distance(2.7, 3)  # cold cache
        cached.distance(2, 3)
        with pytest.raises(ValueError):
            cached.distance(2.7, 3)  # warm cache: int(2.7) must not alias (2, 3)
        targets = [0, 1, 3]
        cached.one_to_many(2, targets)
        with pytest.raises(ValueError):
            cached.one_to_many(2.7, targets)  # same rule for the row cache


# --------------------------------------------------------------------- #
# CoalescingServer
# --------------------------------------------------------------------- #
class TestCoalescingServer:
    def test_submit_flush_matches_direct_batch(self, index, small_graph):
        server = CoalescingServer(index, window_seconds=0.0)
        pairs = random_pairs(small_graph, 64, seed=9)
        requests = [server.submit(s, t) for s, t in pairs]
        assert server.pending == len(pairs)
        assert server.flush() == len(pairs)
        direct = index.distances(pairs)
        assert [r.result() for r in requests] == direct.tolist()
        stats = server.stats()
        assert stats["requests"] == len(pairs)
        assert stats["batches"] == 1
        assert stats["largest_batch"] == len(pairs)

    def test_concurrent_requests_identical_to_scalar(self, index, small_graph):
        server = CoalescingServer(index, window_seconds=0.002)
        pairs = random_pairs(small_graph, 200, seed=21)
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda p: server.distance(*p), pairs))
        assert results == [index.distance(s, t) for s, t in pairs]
        stats = server.stats()
        assert stats["requests"] == len(pairs)
        assert 1 <= stats["batches"] <= stats["requests"]

    def test_max_batch_splits_large_flushes(self, index, small_graph):
        server = CoalescingServer(index, window_seconds=0.0, max_batch=10)
        pairs = random_pairs(small_graph, 25, seed=31)
        requests = [server.submit(s, t) for s, t in pairs]
        assert server.flush() == len(pairs)
        assert server.stats()["batches"] == 3
        assert server.largest_batch <= 10
        assert [r.result() for r in requests] == index.distances(pairs).tolist()

    def test_batched_entry_point_bypasses_queue(self, index, small_graph):
        server = CoalescingServer(index)
        pairs = random_pairs(small_graph, 30, seed=41)
        assert server.distances(pairs).tolist() == index.distances(pairs).tolist()
        assert server.stats()["requests"] == 0

    def test_shared_fate_on_invalid_vertex(self, index, small_graph):
        server = CoalescingServer(index, window_seconds=0.0)
        good = server.submit(0, 1)
        bad = server.submit(0, small_graph.num_vertices + 5)
        server.flush()
        with pytest.raises(ValueError):
            bad.result()
        with pytest.raises(ValueError):
            good.result()  # same batch, same fate

    def test_invalid_parameters_rejected(self, index):
        with pytest.raises(ValueError):
            CoalescingServer(index, window_seconds=-1.0)
        with pytest.raises(ValueError):
            CoalescingServer(index, max_batch=0)


# --------------------------------------------------------------------- #
# mmap-backed loading
# --------------------------------------------------------------------- #
class TestMmapLoading:
    def test_bit_identical_to_in_memory_load(self, index, small_graph, tmp_path):
        path = tmp_path / "index.npz"
        index.save(path)
        in_memory = HC2LIndex.load(path)
        mapped = load_index_mmap(path)
        pairs = random_pairs(small_graph, 200, seed=13)
        assert mapped.distances(pairs).tolist() == in_memory.distances(pairs).tolist()
        assert mapped.distances(pairs).tolist() == index.distances(pairs).tolist()
        for s, t in pairs[:20]:
            assert mapped.distance(s, t) == index.distance(s, t)

    def test_labels_are_memory_mapped(self, index, tmp_path):
        path = tmp_path / "index.npz"
        index.save(path)
        mapped = load_index_mmap(path)
        flat = mapped.flat_labelling()
        assert isinstance(flat.values, np.memmap)
        assert isinstance(flat.level_indptr, np.memmap)
        assert not flat.values.flags.writeable
        assert (tmp_path / "index.npz.mmap" / "label_values.npy").exists()

    def test_sidecars_reused_across_loads(self, index, tmp_path):
        path = tmp_path / "index.npz"
        index.save(path)
        load_index_mmap(path)
        sidecar = tmp_path / "index.npz.mmap" / "label_values.npy"
        first_mtime = sidecar.stat().st_mtime_ns
        load_index_mmap(path)
        assert sidecar.stat().st_mtime_ns == first_mtime

    def test_load_flag_on_index_class(self, index, tmp_path):
        path = tmp_path / "index.npz"
        index.save(path)
        mapped = HC2LIndex.load(path, mmap_labels=True)
        assert isinstance(mapped.flat_labelling().values, np.memmap)


# --------------------------------------------------------------------- #
# single-copy label storage + mutation guard
# --------------------------------------------------------------------- #
class TestSingleCopyStorage:
    def test_batch_query_keeps_exactly_one_label_copy(self, small_graph):
        index = HC2LIndex.build(small_graph)
        index.distances([(0, 5), (3, 9), (7, 7)])
        # the flat buffers are the only materialised labels: no nested view,
        # no scalar list mirror inside the engine
        assert index._labelling_view is None
        assert index.engine._values_list is None
        assert index.engine.flat is index.flat_labelling()

    def test_scalar_path_materialises_mirror_lazily(self, small_graph):
        index = HC2LIndex.build(small_graph)
        index.distances([(0, 5)])
        assert index.engine._values_list is None
        index.distance(0, 5)
        assert index.engine._values_list is not None
        # the nested view still does not exist
        assert index._labelling_view is None

    def test_labelling_view_matches_flat_and_is_cached(self, index):
        view = index.labelling
        assert view is index.labelling
        assert view.total_entries() == index.flat_labelling().total_entries()

    def test_direct_assignment_rejected(self, small_graph):
        index = HC2LIndex.build(small_graph)
        with pytest.raises(AttributeError, match="replace_labelling"):
            index.labelling = HC2LLabelling(3)

    def test_view_mutation_rejected(self, small_graph):
        index = HC2LIndex.build(small_graph)
        with pytest.raises(RuntimeError, match="replace_labelling"):
            index.labelling.append_level(0, [1.0])

    def test_replace_labelling_invalidates_engine(self, small_graph):
        index = HC2LIndex.build(small_graph)
        before = index.distance(0, 9)
        engine_before = index.engine
        nested = index.flat_labelling().to_labelling()
        replacement = HC2LLabelling(num_vertices=nested.num_vertices, labels=nested.labels)
        index.replace_labelling(replacement)
        assert index.engine is not engine_before
        assert index.distance(0, 9) == before

    def test_replace_labelling_rejects_wrong_shape(self, small_graph):
        index = HC2LIndex.build(small_graph)
        with pytest.raises(ValueError):
            index.replace_labelling(HC2LLabelling(2))
        with pytest.raises(TypeError):
            index.replace_labelling([[1.0]])


# --------------------------------------------------------------------- #
# composed stack
# --------------------------------------------------------------------- #
def test_full_serving_stack_identical_answers(index, small_graph, tmp_path):
    """mmap load -> cache -> coalescer returns the bare engine's answers."""
    path = tmp_path / "index.npz"
    index.save(path)
    stack = CoalescingServer(CachingOracle(load_index_mmap(path)), window_seconds=0.0)
    pairs = random_pairs(small_graph, 120, seed=17)
    direct = index.distances(pairs).tolist()
    assert stack.distances(pairs).tolist() == direct
    assert [stack.distance(s, t) for s, t in pairs[:15]] == direct[:15]
