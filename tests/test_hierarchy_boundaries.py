"""Hierarchy-aligned shard boundaries, label reordering and sidecars.

Covers the serving-side payoff of the hierarchy phase:

* the DFS linearisation (``subtree_ranges`` / ``core_order``) and the
  boundary derivation (:func:`derive_shard_boundaries`) - both layouts
  must exactly tile the core vertex range (no gap, no overlap),
* ``FlatLabelling.reorder`` round trips and the lossless
  ``partition``/``concat`` cycle under either layout,
* the sharded on-disk format: hierarchy layouts answer bit-identically,
  reassemble losslessly, version-1 manifests still load, and
* the fixture criterion: on neighbourhood-style traffic the hierarchy
  layout's cross-shard pair fraction is at most the even layout's,
* the persisted Euler-tour tree resolver sidecar used by the mmap path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from helpers import random_query_pairs
from repro.core.flat import FlatLabelling
from repro.core.index import HC2LIndex
from repro.core.persistence import (
    load_index_sharded,
    load_manifest,
    load_tree_sidecar,
    save_index_sharded,
    save_tree_sidecar,
    tree_sidecar_directory,
)
from repro.experiments.sharding import boundary_locality_rows
from repro.experiments.workloads import neighborhood_pairs
from repro.hierarchy.tree import derive_shard_boundaries
from repro.serving import ShardRouter


@pytest.fixture(scope="module")
def built_index(small_graph) -> HC2LIndex:
    return HC2LIndex.build(small_graph, leaf_size=6)


def _assert_tiles(edges, total):
    assert edges[0] == 0
    assert edges[-1] == total
    assert all(a <= b for a, b in zip(edges, edges[1:]))


class TestSubtreeRanges:
    def test_positions_are_a_permutation(self, built_index):
        hierarchy = built_index.hierarchy
        position = hierarchy.subtree_ranges()
        assert sorted(position) == list(range(hierarchy.num_vertices))
        order = hierarchy.core_order()
        assert [position[v] for v in order] == list(range(hierarchy.num_vertices))

    def test_every_subtree_is_contiguous(self, built_index):
        hierarchy = built_index.hierarchy
        position = hierarchy.subtree_ranges()
        for node in hierarchy.nodes:
            members = sorted(position[v] for v in hierarchy.subtree_vertices(node.index))
            assert members == list(range(node.range_lo, node.range_hi))

    def test_children_tile_their_parent(self, built_index):
        hierarchy = built_index.hierarchy
        hierarchy.subtree_ranges()
        for node in hierarchy.nodes:
            cursor = node.range_lo + len(node.cut)
            for child_index in (node.left, node.right):
                if child_index is None:
                    continue
                child = hierarchy.nodes[child_index]
                assert child.range_lo == cursor
                cursor = child.range_hi
            assert cursor == node.range_hi


class TestBoundaryDerivation:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 7, 16])
    def test_hierarchy_boundaries_tile_the_range(self, built_index, num_shards):
        hierarchy = built_index.hierarchy
        edges, order = derive_shard_boundaries(hierarchy, num_shards)
        assert len(edges) == num_shards + 1
        _assert_tiles(edges, hierarchy.num_vertices)
        assert sorted(order) == list(range(hierarchy.num_vertices))

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 7, 16])
    def test_even_boundaries_tile_the_range(self, built_index, num_shards):
        m = built_index.contraction.core.num_vertices
        edges = FlatLabelling.even_boundaries(m, num_shards)
        assert len(edges) == num_shards + 1
        _assert_tiles(edges, m)

    def test_interior_boundaries_sit_on_subtree_edges(self, built_index):
        hierarchy = built_index.hierarchy
        edges, _ = derive_shard_boundaries(hierarchy, 4)
        hierarchy.subtree_ranges()
        subtree_starts = {node.range_lo for node in hierarchy.nodes}
        for boundary in edges[1:-1]:
            assert boundary in subtree_starts

    def test_invalid_shard_count(self, built_index):
        with pytest.raises(ValueError, match="num_shards"):
            derive_shard_boundaries(built_index.hierarchy, 0)


class TestReorder:
    def test_reorder_round_trips(self, built_index):
        flat = built_index.flat_labelling()
        _, order = derive_shard_boundaries(built_index.hierarchy, 3)
        position = built_index.hierarchy.subtree_ranges()
        reordered = flat.reorder(order)
        assert reordered.reorder(position) == flat
        # per-vertex arrays are byte-identical, just relocated
        for vertex in range(0, flat.num_vertices, 7):
            for depth in range(flat.num_levels(vertex)):
                assert (
                    reordered.level_array(position[vertex], depth)
                    == flat.level_array(vertex, depth)
                )

    def test_reorder_rejects_non_permutations(self, built_index):
        flat = built_index.flat_labelling()
        with pytest.raises(ValueError, match="permutation"):
            flat.reorder([0] * flat.num_vertices)
        with pytest.raises(ValueError, match="permutation"):
            flat.reorder(list(range(flat.num_vertices - 1)))

    def test_partition_concat_round_trip_in_dfs_order(self, built_index):
        flat = built_index.flat_labelling()
        edges, order = derive_shard_boundaries(built_index.hierarchy, 5)
        reordered = flat.reorder(order)
        parts = reordered.partition(edges)
        assert FlatLabelling.concat(parts) == reordered


class TestHierarchyShardedLayout:
    @pytest.mark.parametrize("mode", ["even", "hierarchy"])
    def test_router_is_bit_identical(self, built_index, small_graph, tmp_path, mode):
        path = tmp_path / "index.npz"
        layout = save_index_sharded(built_index, path, num_shards=3, boundaries=mode)
        _, manifest = load_manifest(layout)
        assert manifest["vertex_order"] == ("hierarchy" if mode == "hierarchy" else "identity")
        router = ShardRouter(path)
        pairs = random_query_pairs(small_graph, 80, seed=21)
        assert router.distances(pairs).tolist() == built_index.distances(pairs).tolist()
        for s, t in pairs[:15]:
            assert router.distance(s, t) == built_index.distance(s, t)

    def test_hierarchy_layout_reassembles_losslessly(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        save_index_sharded(built_index, path, num_shards=4, boundaries="hierarchy")
        rebuilt = load_index_sharded(path)
        assert rebuilt.flat_labelling() == built_index.flat_labelling()

    def test_version_1_manifests_still_load(self, built_index, small_graph, tmp_path):
        path = tmp_path / "index.npz"
        layout = save_index_sharded(built_index, path, num_shards=2)
        manifest_path = layout / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["version"] = 1
        manifest.pop("vertex_order")  # v1 manifests predate the key
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        router = ShardRouter(path)
        assert router.vertex_order == "identity"
        pairs = random_query_pairs(small_graph, 40, seed=3)
        assert router.distances(pairs).tolist() == built_index.distances(pairs).tolist()

    def test_unknown_vertex_order_rejected(self, built_index, tmp_path):
        path = tmp_path / "index.npz"
        layout = save_index_sharded(built_index, path, num_shards=2)
        manifest_path = layout / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["vertex_order"] = "shuffled"
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ValueError, match="vertex_order"):
            ShardRouter(path)

    def test_unknown_boundaries_mode_rejected(self, built_index, tmp_path):
        with pytest.raises(ValueError, match="boundaries"):
            save_index_sharded(built_index, tmp_path / "x.npz", boundaries="bogus")


class TestCrossShardFraction:
    def test_hierarchy_beats_even_on_local_traffic(self, built_index, small_graph, tmp_path):
        pairs = neighborhood_pairs(small_graph, 800, seed=5, max_hops=3)
        assert len(pairs) == 800
        rows = boundary_locality_rows(built_index, pairs, tmp_path, num_shards=4)
        by_mode = {row["boundaries"]: row for row in rows}
        assert set(by_mode) == {"even", "hierarchy"}
        assert (
            by_mode["hierarchy"]["cross_shard_fraction"]
            <= by_mode["even"]["cross_shard_fraction"]
        )

    def test_stats_report_the_fraction(self, built_index, small_graph, tmp_path):
        path = tmp_path / "index.npz"
        save_index_sharded(built_index, path, num_shards=2)
        router = ShardRouter(path)
        assert router.stats.cross_shard_fraction() == 0.0
        router.distances(random_query_pairs(small_graph, 50, seed=8))
        stats = router.stats.as_dict()
        assert 0.0 <= stats["cross_shard_fraction"] <= 1.0


class TestTreeSidecar:
    def test_sidecar_round_trip(self, built_index, small_graph, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path, tree_sidecar=True)
        sidecar = tree_sidecar_directory(path)
        assert (sidecar / "meta.json").exists()
        resolver = load_tree_sidecar(path, built_index.contraction)
        assert resolver is not None
        fresh = built_index.engine.resolver.tree_resolver
        assert resolver.num_members == fresh.num_members
        for name, array in resolver.state_arrays().items():
            assert np.array_equal(array, fresh.state_arrays()[name]), name

    def test_mmap_load_uses_the_sidecar(self, built_index, small_graph, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path, tree_sidecar=True)
        loaded = HC2LIndex.load(path, mmap_labels=True)
        # the resolver is pre-installed (no lazy build) and mmap-backed
        installed = loaded.engine.resolver._tree_resolver
        assert installed is not None
        assert isinstance(installed.state_arrays()["euler"], np.memmap)
        pairs = random_query_pairs(small_graph, 120, seed=13)
        assert loaded.distances(pairs).tolist() == built_index.distances(pairs).tolist()

    def test_missing_sidecar_is_fine(self, built_index, small_graph, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path)
        assert load_tree_sidecar(path, built_index.contraction) is None
        loaded = HC2LIndex.load(path, mmap_labels=True)
        assert loaded.engine.resolver._tree_resolver is None
        pairs = random_query_pairs(small_graph, 40, seed=2)
        assert loaded.distances(pairs).tolist() == built_index.distances(pairs).tolist()

    def test_stale_sidecar_is_ignored(self, built_index, tmp_path):
        import os
        import time

        path = tmp_path / "index.npz"
        built_index.save(path, tree_sidecar=True)
        # rewriting the archive after the sidecar invalidates it
        time.sleep(0.02)
        built_index.save(path)
        os.utime(path)  # ensure the archive mtime moves past the sidecar's
        assert load_tree_sidecar(path, built_index.contraction) is None

    def test_wrong_index_is_rejected(self, built_index, small_graph, tmp_path):
        path = tmp_path / "index.npz"
        built_index.save(path, tree_sidecar=True)
        other = HC2LIndex.build(small_graph, leaf_size=9, contract=False)
        assert load_tree_sidecar(path, other.contraction) is None
