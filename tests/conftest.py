"""Shared fixtures for the test suite.

Most tests validate exact distances against a Dijkstra oracle on small
synthetic road networks; the fixtures below provide a consistent set of
graphs (path, grid, road-like, disconnected) so individual test modules
stay focused on behaviour rather than setup.

Plain (non-fixture) helpers live in :mod:`helpers`; test modules import
them explicitly with ``from helpers import ...``.
"""

from __future__ import annotations

import pytest

from helpers import ExactOracle, assert_distance_equal, random_query_pairs  # noqa: F401
from repro.graph.builders import graph_from_edges, grid_graph, path_graph
from repro.graph.generators import RoadNetworkSpec, synthetic_road_network
from repro.graph.graph import Graph

INF = float("inf")


# --------------------------------------------------------------------- #
# graphs
# --------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def paper_example_graph() -> Graph:
    """A 16-vertex unit-weight graph shaped like the paper's running example.

    Not the exact Figure 1 graph (the figure is hard to read precisely),
    but the same flavour: a small sparse network with an obvious central
    cut, used wherever a hand-checkable graph is convenient.
    """
    edges = [
        (1, 2, 1), (2, 3, 1), (1, 9, 1), (2, 16, 1), (3, 7, 1),
        (9, 12, 1), (9, 5, 1), (16, 15, 1), (16, 5, 1), (7, 14, 1),
        (12, 8, 1), (12, 4, 1), (5, 13, 1), (15, 6, 1), (14, 13, 1),
        (14, 8, 1), (4, 10, 1), (4, 11, 1), (13, 11, 1), (6, 11, 1),
        (10, 11, 1), (15, 13, 1),
    ]
    return graph_from_edges([(u - 1, v - 1, w) for u, v, w in edges], num_vertices=16)


@pytest.fixture(scope="session")
def small_road_network():
    """A ~200-vertex synthetic road network (distance + travel-time weights)."""
    return synthetic_road_network(RoadNetworkSpec("test-small", num_vertices=180, seed=42))


@pytest.fixture(scope="session")
def small_graph(small_road_network) -> Graph:
    """The distance-weighted graph of the small road network."""
    return small_road_network.distance_graph


@pytest.fixture(scope="session")
def medium_road_network():
    """A ~450-vertex synthetic road network for integration tests."""
    return synthetic_road_network(RoadNetworkSpec("test-medium", num_vertices=420, seed=7))


@pytest.fixture(scope="session")
def medium_graph(medium_road_network) -> Graph:
    """The distance-weighted graph of the medium road network."""
    return medium_road_network.distance_graph


@pytest.fixture(scope="session")
def uniform_grid() -> Graph:
    """A 10x10 grid with uniform weights (many tied shortest paths)."""
    graph, _ = grid_graph(10, 10, seed=3, weight_jitter=0.0)
    return graph


@pytest.fixture(scope="session")
def jittered_grid() -> Graph:
    """A 12x12 grid with jittered weights (mostly unique shortest paths)."""
    graph, _ = grid_graph(12, 12, seed=5, weight_jitter=0.3)
    return graph


@pytest.fixture(scope="session")
def disconnected_graph() -> Graph:
    """Two components plus an isolated vertex."""
    edges = [
        (0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 5.0),
        (4, 5, 1.5), (5, 6, 2.5), (6, 4, 1.0),
    ]
    return graph_from_edges(edges, num_vertices=8)


@pytest.fixture(scope="session")
def line_graph() -> Graph:
    """A 30-vertex path (worst case for balanced partitioning seeds)."""
    return path_graph(30, weight=2.0)


# --------------------------------------------------------------------- #
# oracles and helpers
# --------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def small_oracle(small_graph) -> ExactOracle:
    """Exact distances on the small road network."""
    return ExactOracle(small_graph)


@pytest.fixture(scope="session")
def medium_oracle(medium_graph) -> ExactOracle:
    """Exact distances on the medium road network."""
    return ExactOracle(medium_graph)


@pytest.fixture
def query_pairs_small(small_graph):
    """80 deterministic query pairs on the small network."""
    return random_query_pairs(small_graph, 80, seed=11)


@pytest.fixture
def query_pairs_medium(medium_graph):
    """60 deterministic query pairs on the medium network."""
    return random_query_pairs(medium_graph, 60, seed=13)
