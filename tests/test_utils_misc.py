"""Unit tests for timers, RNG helpers and validation."""

from __future__ import annotations

import random
import time

import pytest

from repro.utils.rng import derive_rng, make_rng
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_balance_parameter,
    check_non_negative_weight,
    check_probability,
    check_vertex,
)


class TestTimer:
    def test_measure_accumulates(self):
        timer = Timer()
        with timer.measure("phase"):
            time.sleep(0.001)
        with timer.measure("phase"):
            time.sleep(0.001)
        assert timer.get("phase") >= 0.002
        assert timer.total() == pytest.approx(timer.get("phase"))

    def test_missing_phase_is_zero(self):
        assert Timer().get("nothing") == 0.0

    def test_timed_returns_result_and_elapsed(self):
        result, elapsed = timed(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0.0


class TestRng:
    def test_default_seed_is_deterministic(self):
        assert make_rng().random() == make_rng().random()

    def test_integer_seed(self):
        assert make_rng(5).random() == make_rng(5).random()
        assert make_rng(5).random() != make_rng(6).random()

    def test_passthrough_of_random_instance(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_derive_rng_changes_stream(self):
        base = make_rng(3)
        a = derive_rng(base, 1).random()
        base2 = make_rng(3)
        b = derive_rng(base2, 2).random()
        assert a != b


class TestValidation:
    def test_check_vertex_accepts_valid(self):
        assert check_vertex(3, 10) == 3

    @pytest.mark.parametrize("vertex", [-1, 10, 100])
    def test_check_vertex_rejects_out_of_range(self, vertex):
        with pytest.raises(ValueError):
            check_vertex(vertex, 10)

    @pytest.mark.parametrize("vertex", [1.5, "3", True, None])
    def test_check_vertex_rejects_non_int(self, vertex):
        with pytest.raises(ValueError):
            check_vertex(vertex, 10)

    def test_check_weight_accepts_positive(self):
        assert check_non_negative_weight(2.5) == 2.5
        assert check_non_negative_weight(0) == 0.0

    @pytest.mark.parametrize("weight", [-1.0, float("inf"), float("nan")])
    def test_check_weight_rejects_bad_values(self, weight):
        with pytest.raises(ValueError):
            check_non_negative_weight(weight)

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)
        with pytest.raises(ValueError):
            check_probability(-0.1)

    def test_check_balance_parameter(self):
        assert check_balance_parameter(0.2) == 0.2
        assert check_balance_parameter(0.5) == 0.5
        with pytest.raises(ValueError):
            check_balance_parameter(0.0)
        with pytest.raises(ValueError):
            check_balance_parameter(0.6)
