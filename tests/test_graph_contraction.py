"""Unit tests for the degree-one tree contraction (Section 4.2.2)."""

from __future__ import annotations

import pytest

from repro.graph.builders import graph_from_edges, path_graph, star_graph
from repro.graph.contraction import contract_degree_one
from repro.graph.search import dijkstra


class TestContractionStructure:
    def test_no_degree_one_vertices_is_identity(self, uniform_grid):
        contracted = contract_degree_one(uniform_grid)
        assert contracted.num_contracted == 0
        assert contracted.core.num_vertices == uniform_grid.num_vertices
        assert contracted.contraction_ratio() == 0.0

    def test_pendant_vertex_removed(self):
        graph = graph_from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 5.0)])
        contracted = contract_degree_one(graph)
        assert contracted.num_contracted == 1
        assert not contracted.is_core(3)
        assert contracted.root[3] == 2
        assert contracted.dist_to_root[3] == 5.0

    def test_chain_contracts_iteratively(self):
        # triangle with a 3-vertex tail hanging off vertex 2
        graph = graph_from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0), (3, 4, 2.0), (4, 5, 3.0)]
        )
        contracted = contract_degree_one(graph, iterative=True)
        assert contracted.num_contracted == 3
        assert contracted.root[5] == 2
        assert contracted.dist_to_root[5] == 6.0
        assert contracted.depth[5] == 3

    def test_non_iterative_only_removes_original_degree_one(self):
        graph = graph_from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0), (3, 4, 2.0), (4, 5, 3.0)]
        )
        contracted = contract_degree_one(graph, iterative=False)
        # only vertex 5 has degree one in the original graph
        assert contracted.num_contracted == 1
        assert not contracted.is_core(5)
        assert contracted.is_core(4)

    def test_iterative_contracts_more_than_non_iterative(self, small_graph):
        iterative = contract_degree_one(small_graph, iterative=True)
        single_pass = contract_degree_one(small_graph, iterative=False)
        assert iterative.num_contracted >= single_pass.num_contracted

    def test_star_keeps_centre(self):
        contracted = contract_degree_one(star_graph(6))
        assert contracted.core.num_vertices == 1
        assert contracted.is_core(0)
        assert all(contracted.root[v] == 0 for v in range(1, 6))
        assert all(contracted.dist_to_root[v] == 1.0 for v in range(1, 6))

    def test_path_contracts_to_single_vertex(self):
        contracted = contract_degree_one(path_graph(10))
        assert contracted.core.num_vertices == 1

    def test_isolated_vertices_stay_core(self):
        graph = graph_from_edges([(0, 1, 1.0)], num_vertices=4)
        contracted = contract_degree_one(graph)
        assert contracted.is_core(2)
        assert contracted.is_core(3)

    def test_core_ids_are_consistent(self, small_graph):
        contracted = contract_degree_one(small_graph)
        for core_id, original in enumerate(contracted.core_to_original):
            assert contracted.original_to_core[original] == core_id
        assert contracted.num_original == small_graph.num_vertices


class TestContractionDistances:
    def test_tree_lca_distance_on_shared_root(self):
        # root 0 (part of a cycle), tree: 0-1-2 and 0-1-3 (1 is contracted too)
        graph = graph_from_edges(
            [(0, 4, 1.0), (4, 5, 1.0), (5, 0, 1.0), (0, 1, 2.0), (1, 2, 3.0), (1, 3, 4.0)]
        )
        contracted = contract_degree_one(graph)
        assert contracted.root[2] == 0 and contracted.root[3] == 0
        # distance 2 -> 3 goes through their LCA (vertex 1): 3 + 4
        assert contracted.tree_lca_distance(2, 3) == 7.0
        # distance 2 -> 1 walks up one edge
        assert contracted.tree_lca_distance(2, 1) == 3.0

    def test_resolve_query_same_vertex(self, small_graph):
        contracted = contract_degree_one(small_graph)
        answer, _, _, _ = contracted.resolve_query(3, 3)
        assert answer == 0.0

    def test_resolve_query_cross_root_offsets(self, small_graph, small_oracle):
        contracted = contract_degree_one(small_graph)
        core = contracted.core
        # reconstruct full distances through the core and compare to Dijkstra
        checked = 0
        for v in range(small_graph.num_vertices):
            if contracted.is_core(v):
                continue
            for w in range(0, small_graph.num_vertices, 17):
                answer, core_s, core_t, offset = contracted.resolve_query(v, w)
                expected = small_oracle.distance(v, w)
                if answer is not None:
                    assert answer == pytest.approx(expected, rel=1e-6)
                else:
                    core_distance = dijkstra(
                        core, core_s, targets=[core_t]
                    )[core_t]
                    assert offset + core_distance == pytest.approx(expected, rel=1e-6)
                checked += 1
        assert checked > 0

    def test_core_distances_preserved(self, small_graph, small_oracle):
        contracted = contract_degree_one(small_graph)
        core = contracted.core
        originals = contracted.core_to_original
        dist = dijkstra(core, 0)
        for core_id in range(0, core.num_vertices, 11):
            expected = small_oracle.distance(originals[0], originals[core_id])
            assert dist[core_id] == pytest.approx(expected, rel=1e-6)
