"""Tests for the command line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main
from repro.graph.builders import path_graph
from repro.graph.io import read_dimacs, write_dimacs


@pytest.fixture()
def dimacs_file(tmp_path, small_graph):
    path = tmp_path / "net.gr"
    write_dimacs(small_graph, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build", "-o", "x.idx"])

    def test_synthetic_and_graph_are_exclusive(self, dimacs_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["build", "--graph", str(dimacs_file), "--synthetic", "100", "-o", "x.idx"]
            )


class TestBuildAndQuery:
    def test_build_from_dimacs_then_query(self, tmp_path, dimacs_file, capsys, small_oracle):
        index_path = tmp_path / "ny.idx"
        assert main(["build", "--graph", str(dimacs_file), "-o", str(index_path)]) == 0
        assert index_path.exists()
        capsys.readouterr()

        assert main(["query", str(index_path), "0,5", "3,17"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        s, t, distance = lines[0].split("\t")
        assert (int(s), int(t)) == (0, 5)
        assert float(distance) == pytest.approx(small_oracle.distance(0, 5), rel=1e-6)

    def test_build_synthetic(self, tmp_path, capsys):
        index_path = tmp_path / "synthetic.idx"
        code = main(
            ["build", "--synthetic", "150", "--seed", "3", "-o", str(index_path), "--workers", "2"]
        )
        assert code == 0
        assert index_path.exists()
        out = capsys.readouterr().out
        assert "construction" in out

    def test_build_with_tree_sidecar(self, tmp_path, dimacs_file, capsys):
        from repro.core.persistence import tree_sidecar_directory

        index_path = tmp_path / "sidecar.idx"
        code = main(
            ["build", "--graph", str(dimacs_file), "-o", str(index_path), "--tree-sidecar"]
        )
        assert code == 0
        assert (tree_sidecar_directory(index_path) / "meta.json").exists()

    @pytest.mark.parametrize("mode", ["even", "hierarchy"])
    def test_shard_boundaries_modes(self, tmp_path, dimacs_file, capsys, mode, small_oracle):
        from repro.core.persistence import load_manifest

        index_path = tmp_path / "shards.idx"
        assert main(["build", "--graph", str(dimacs_file), "-o", str(index_path)]) == 0
        assert main(
            ["shard", str(index_path), "--shards", "3", "--boundaries", mode]
        ) == 0
        out = capsys.readouterr().out
        assert f"({mode} boundaries)" in out
        _, manifest = load_manifest(index_path)
        assert len(manifest["shards"]) == 3
        expected = "hierarchy" if mode == "hierarchy" else "identity"
        assert manifest["vertex_order"] == expected

        assert main(["query", "--shards", str(index_path), "0,5"]) == 0
        line = capsys.readouterr().out.strip().splitlines()[0]
        assert float(line.split("\t")[2]) == pytest.approx(
            small_oracle.distance(0, 5), rel=1e-6
        )

    def test_query_from_stdin(self, tmp_path, dimacs_file, capsys, monkeypatch):
        index_path = tmp_path / "ny.idx"
        main(["build", "--graph", str(dimacs_file), "-o", str(index_path)])
        capsys.readouterr()
        monkeypatch.setattr("sys.stdin", io.StringIO("1 2\n# comment\n4,9\n"))
        assert main(["query", str(index_path), "--stdin"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2

    def test_query_without_pairs_errors(self, tmp_path, dimacs_file, capsys):
        index_path = tmp_path / "ny.idx"
        main(["build", "--graph", str(dimacs_file), "-o", str(index_path)])
        capsys.readouterr()
        assert main(["query", str(index_path)]) == 2


class TestCompareAndGenerate:
    def test_compare_prints_table(self, capsys):
        code = main(
            ["compare", "--synthetic", "140", "--seed", "5", "--methods", "HC2L,HL", "--queries", "100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HC2L" in out and "HL" in out and "query_us" in out

    def test_compare_unknown_method(self, capsys):
        assert main(["compare", "--synthetic", "80", "--methods", "NOPE"]) == 2

    def test_generate_writes_dimacs(self, tmp_path, capsys):
        output = tmp_path / "generated.gr"
        assert main(["generate", "--vertices", "120", "--seed", "2", "-o", str(output)]) == 0
        graph = read_dimacs(output)
        assert graph.num_vertices >= 120

    def test_generate_travel_time_weighting(self, tmp_path):
        distance_path = tmp_path / "d.gr"
        travel_path = tmp_path / "t.gr"
        main(["generate", "--vertices", "100", "--seed", "4", "-o", str(distance_path)])
        main(
            ["generate", "--vertices", "100", "--seed", "4", "--weighting", "travel_time",
             "-o", str(travel_path)]
        )
        d_graph = read_dimacs(distance_path)
        t_graph = read_dimacs(travel_path)
        assert d_graph.num_edges == t_graph.num_edges
        assert sorted(w for _, _, w in d_graph.edges()) != sorted(w for _, _, w in t_graph.edges())


class TestRoundTripThroughCli:
    def test_generated_network_can_be_indexed(self, tmp_path, capsys):
        network_path = tmp_path / "city.gr"
        index_path = tmp_path / "city.idx"
        main(["generate", "--vertices", "130", "--seed", "9", "-o", str(network_path)])
        main(["build", "--graph", str(network_path), "-o", str(index_path), "--beta", "0.25"])
        capsys.readouterr()
        assert main(["query", str(index_path), "0,10"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("0\t10\t")

    def test_small_path_graph_cli(self, tmp_path, capsys):
        path = tmp_path / "path.gr"
        write_dimacs(path_graph(12, weight=2.0), path)
        index_path = tmp_path / "path.idx"
        main(["build", "--graph", str(path), "-o", str(index_path), "--leaf-size", "3"])
        capsys.readouterr()
        main(["query", str(index_path), "0,11"])
        out = capsys.readouterr().out
        assert float(out.split("\t")[2]) == pytest.approx(22.0)
