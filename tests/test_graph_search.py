"""Unit tests for the shortest-path search routines (vs networkx)."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.graph.builders import graph_from_edges, grid_graph
from repro.graph.search import (
    all_pairs_dijkstra,
    bfs_hops,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_predecessors,
    dijkstra_to_target,
    eccentricity_estimate,
    farthest_vertex,
)

INF = float("inf")


@pytest.fixture(scope="module")
def weighted_graph():
    graph, _ = grid_graph(7, 7, seed=13, weight_jitter=0.35)
    return graph


@pytest.fixture(scope="module")
def nx_distances(weighted_graph):
    nxg = weighted_graph.to_networkx()
    return dict(nx.all_pairs_dijkstra_path_length(nxg))


class TestDijkstra:
    def test_matches_networkx(self, weighted_graph, nx_distances):
        for source in range(0, weighted_graph.num_vertices, 7):
            dist = dijkstra(weighted_graph, source)
            for target in range(weighted_graph.num_vertices):
                assert dist[target] == pytest.approx(nx_distances[source][target])

    def test_source_distance_zero(self, weighted_graph):
        assert dijkstra(weighted_graph, 5)[5] == 0.0

    def test_unreachable_is_inf(self, disconnected_graph):
        dist = dijkstra(disconnected_graph, 0)
        assert dist[4] == INF
        assert dist[7] == INF
        assert dist[2] == 3.0

    def test_allowed_restricts_search(self, weighted_graph):
        allowed = list(range(7))  # the first grid row
        dist = dijkstra(weighted_graph, 0, allowed=allowed)
        assert dist[6] < INF
        assert dist[7] == INF  # outside the allowed set

    def test_targets_early_exit_still_correct(self, weighted_graph, nx_distances):
        dist = dijkstra(weighted_graph, 0, targets=[3])
        assert dist[3] == pytest.approx(nx_distances[0][3])

    def test_dijkstra_to_target(self, weighted_graph, nx_distances):
        assert dijkstra_to_target(weighted_graph, 2, 40) == pytest.approx(nx_distances[2][40])
        assert dijkstra_to_target(weighted_graph, 4, 4) == 0.0

    def test_dijkstra_to_target_unreachable(self, disconnected_graph):
        assert dijkstra_to_target(disconnected_graph, 0, 5) == INF

    def test_predecessors_form_shortest_path_tree(self, weighted_graph, nx_distances):
        dist, parent = dijkstra_predecessors(weighted_graph, 0)
        assert parent[0] == 0
        for v in range(1, weighted_graph.num_vertices):
            p = parent[v]
            assert p >= 0
            # tree edge consistency: dist[v] = dist[parent] + w(parent, v)
            assert dist[v] == pytest.approx(dist[p] + weighted_graph.edge_weight(p, v))
            assert dist[v] == pytest.approx(nx_distances[0][v])


class TestBidirectional:
    def test_matches_plain_dijkstra(self, weighted_graph, nx_distances):
        for s, t in [(0, 48), (3, 45), (10, 11), (20, 20), (6, 42)]:
            expected = nx_distances[s][t] if s != t else 0.0
            assert bidirectional_dijkstra(weighted_graph, s, t) == pytest.approx(expected)

    def test_disconnected(self, disconnected_graph):
        assert bidirectional_dijkstra(disconnected_graph, 0, 5) == INF
        assert math.isinf(bidirectional_dijkstra(disconnected_graph, 1, 7))


class TestAuxiliarySearches:
    def test_bfs_hops(self):
        graph = graph_from_edges([(0, 1, 10.0), (1, 2, 10.0), (0, 3, 1.0)])
        hops = bfs_hops(graph, 0)
        assert hops == [0, 1, 2, 1]

    def test_bfs_hops_unreachable(self, disconnected_graph):
        hops = bfs_hops(disconnected_graph, 0)
        assert hops[5] == -1

    def test_farthest_vertex(self):
        graph = graph_from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 5.0)])
        vertex, distance, dist = farthest_vertex(graph, 0)
        assert vertex == 3
        assert distance == 7.0
        assert dist[2] == 2.0

    def test_farthest_vertex_ignores_unreachable(self, disconnected_graph):
        vertex, distance, _ = farthest_vertex(disconnected_graph, 0)
        assert vertex in {0, 1, 2, 3}
        assert distance < INF

    def test_eccentricity_estimate_reasonable(self, weighted_graph, nx_distances):
        true_diameter = max(max(row.values()) for row in nx_distances.values())
        estimate = eccentricity_estimate(weighted_graph)
        assert estimate <= true_diameter + 1e-9
        assert estimate >= 0.5 * true_diameter

    def test_all_pairs_dijkstra_subset(self, weighted_graph, nx_distances):
        result = all_pairs_dijkstra(weighted_graph, sources=[0, 5])
        assert set(result) == {0, 5}
        assert result[5][0] == pytest.approx(nx_distances[5][0])
