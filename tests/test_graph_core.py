"""Unit tests for the Graph container."""

from __future__ import annotations

import pytest

from repro.graph.graph import Graph


class TestGraphBasics:
    def test_empty_graph(self):
        graph = Graph(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_add_edge_and_lookup(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 2.5)
        assert graph.num_edges == 1
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.edge_weight(0, 1) == 2.5
        assert graph.edge_weight(1, 0) == 2.5
        assert not graph.has_edge(0, 2)

    def test_parallel_edges_keep_minimum(self):
        graph = Graph(2)
        graph.add_edge(0, 1, 5.0)
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(0, 1, 4.0)
        assert graph.num_edges == 1
        assert graph.edge_weight(0, 1) == 3.0

    def test_self_loops_ignored(self):
        graph = Graph(2)
        graph.add_edge(1, 1, 1.0)
        assert graph.num_edges == 0

    def test_invalid_vertices_rejected(self):
        graph = Graph(2)
        with pytest.raises(ValueError):
            graph.add_edge(0, 2, 1.0)
        with pytest.raises(ValueError):
            graph.add_edge(-1, 1, 1.0)

    def test_negative_weight_rejected(self):
        graph = Graph(2)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, -1.0)

    def test_degree_and_neighbors(self):
        graph = Graph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 2, 2.0)
        assert graph.degree(0) == 2
        assert graph.degree(3) == 0
        assert dict(graph.neighbors(0)) == {1: 1.0, 2: 2.0}
        assert set(graph.neighbor_ids(0)) == {1, 2}

    def test_edges_listed_once(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 2.0)
        edges = sorted(graph.edges())
        assert edges == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_total_weight(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 2.5)
        assert graph.total_weight() == 3.5

    def test_add_vertex(self):
        graph = Graph(1)
        new_id = graph.add_vertex()
        assert new_id == 1
        assert graph.num_vertices == 2
        graph.add_edge(0, 1, 1.0)
        assert graph.has_edge(0, 1)

    def test_len_and_repr(self):
        graph = Graph(5)
        assert len(graph) == 5
        assert "num_vertices=5" in repr(graph)

    def test_memory_bytes_scales_with_edges(self):
        small = Graph(10)
        small.add_edge(0, 1, 1.0)
        big = Graph(10)
        for i in range(9):
            big.add_edge(i, i + 1, 1.0)
        assert big.memory_bytes() > small.memory_bytes()


class TestGraphDerived:
    def test_copy_is_independent(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 1.0)
        clone = graph.copy()
        clone.add_edge(1, 2, 2.0)
        assert graph.num_edges == 1
        assert clone.num_edges == 2

    def test_induced_subgraph(self):
        graph = Graph(5)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 2.0)
        graph.add_edge(2, 3, 3.0)
        sub, mapping = graph.induced_subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert mapping == [1, 2, 3]
        assert sub.num_edges == 2
        assert sub.edge_weight(0, 1) == 2.0  # original (1, 2)

    def test_reweighted(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 2.0)
        updated = graph.reweighted({(0, 1): 9.0})
        assert updated.edge_weight(0, 1) == 9.0
        assert updated.edge_weight(1, 2) == 2.0
        assert graph.edge_weight(0, 1) == 1.0

    def test_adjacency_dict_full(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 1.0)
        adjacency = graph.adjacency_dict()
        assert adjacency == {0: {1: 1.0}, 1: {0: 1.0}, 2: {}}
        # mutating the dict must not touch the graph
        adjacency[0][2] = 5.0
        assert not graph.has_edge(0, 2)

    def test_adjacency_dict_restricted(self):
        graph = Graph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 2.0)
        graph.add_edge(2, 3, 3.0)
        adjacency = graph.adjacency_dict([1, 2])
        assert set(adjacency) == {1, 2}
        assert adjacency[1] == {2: 2.0}

    def test_networkx_round_trip(self):
        graph = Graph(4)
        graph.add_edge(0, 1, 1.5)
        graph.add_edge(2, 3, 2.5)
        back = Graph.from_networkx(graph.to_networkx())
        assert sorted(back.edges()) == sorted(graph.edges())
