"""Unit tests for the labelling building blocks (Algorithms 4-5, Equation 6)."""

from __future__ import annotations

import pytest

from repro.core.labelling import HC2LLabelling, node_distance_arrays
from repro.core.pruned_dijkstra import dist_and_prune
from repro.core.ranking import rank_cut_vertices
from repro.graph.builders import graph_from_edges, path_graph
from repro.partition.working_graph import dijkstra_adjacency, working_graph_from

INF = float("inf")


@pytest.fixture()
def path_adjacency():
    # 0 - 1 - 2 - 3 - 4 with unit weights
    return working_graph_from(path_graph(5))


class TestDistAndPrune:
    def test_distances_match_dijkstra(self, jittered_grid):
        adjacency = working_graph_from(jittered_grid)
        result = dist_and_prune(adjacency, 0, prune_set=[])
        expected = dijkstra_adjacency(adjacency, 0)
        for v, d in expected.items():
            assert result.distance[v] == pytest.approx(d)

    def test_empty_prune_set_never_flags(self, path_adjacency):
        result = dist_and_prune(path_adjacency, 0, prune_set=[])
        assert not any(result.through_prune_set.values())

    def test_flag_set_beyond_prune_vertex(self, path_adjacency):
        result = dist_and_prune(path_adjacency, 0, prune_set=[2])
        # vertices strictly beyond 2 are reached through it
        assert result.through_prune_set[3] is True
        assert result.through_prune_set[4] is True
        # the prune vertex itself and everything before it are not flagged
        assert result.through_prune_set[2] is False
        assert result.through_prune_set[1] is False

    def test_root_in_prune_set_is_ignored(self, path_adjacency):
        result = dist_and_prune(path_adjacency, 0, prune_set=[0, 2])
        assert result.through_prune_set[1] is False
        assert result.through_prune_set[3] is True

    def test_tied_paths_prefer_flagged(self):
        # two equal-length paths 0->3: via 1 (in prune set) and via 2 (not)
        graph = graph_from_edges([(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)])
        adjacency = working_graph_from(graph)
        result = dist_and_prune(adjacency, 0, prune_set=[1])
        assert result.distance[3] == 2.0
        assert result.through_prune_set[3] is True

    def test_unreachable_vertices_absent(self, disconnected_graph):
        adjacency = working_graph_from(disconnected_graph)
        result = dist_and_prune(adjacency, 0, prune_set=[])
        assert 5 not in result.distance
        assert result.get(5) == (INF, False)


class TestRanking:
    def test_single_cut_vertex(self, path_adjacency):
        ranking = rank_cut_vertices(path_adjacency, [2])
        assert ranking.ordered == [2]
        assert ranking.coverage == {2: 0}

    def test_empty_cut(self, path_adjacency):
        ranking = rank_cut_vertices(path_adjacency, [])
        assert ranking.ordered == []

    def test_covered_vertex_ranks_last(self):
        # line 0-1-2-3-4-5; cut {1, 3}: from 3, the far side (0) is covered
        # via 1; from 1, only vertices {4,5} are covered via 3 - symmetric,
        # but with an extra appendage on 1's side the coverage differs.
        graph = graph_from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (4, 5, 1.0), (0, 6, 1.0), (6, 7, 1.0)]
        )
        adjacency = working_graph_from(graph)
        ranking = rank_cut_vertices(adjacency, [1, 3])
        # vertex 3 reaches {0, 6, 7} only through 1 => coverage(3) = 4 incl. 0-side
        # vertex 1 reaches {4, 5} only through 3 => coverage(1) = 2
        assert ranking.coverage[3] > ranking.coverage[1]
        assert ranking.ordered == [1, 3]

    def test_ordering_is_deterministic(self, medium_graph):
        adjacency = working_graph_from(medium_graph)
        cut = sorted(adjacency)[:6]
        first = rank_cut_vertices(adjacency, cut).ordered
        second = rank_cut_vertices(adjacency, cut).ordered
        assert first == second


class TestNodeDistanceArrays:
    def test_arrays_store_exact_distances(self, jittered_grid):
        adjacency = working_graph_from(jittered_grid)
        cut = [0, 7, 77]
        ranking = rank_cut_vertices(adjacency, cut)
        arrays, cut_distances = node_distance_arrays(adjacency, ranking, tail_pruning=False)
        assert set(cut_distances) == set(cut)
        for v, array in arrays.items():
            assert len(array) == len(cut)
            for i, c in enumerate(ranking.ordered):
                assert array[i] == pytest.approx(dijkstra_adjacency(adjacency, c).get(v, INF))

    def test_tail_pruning_only_truncates(self, jittered_grid):
        adjacency = working_graph_from(jittered_grid)
        cut = [0, 7, 77, 140]
        ranking = rank_cut_vertices(adjacency, cut)
        full, _ = node_distance_arrays(adjacency, ranking, tail_pruning=False)
        pruned, _ = node_distance_arrays(adjacency, ranking, tail_pruning=True)
        for v in full:
            assert len(pruned[v]) <= len(full[v])
            assert pruned[v] == full[v][: len(pruned[v])]
            assert len(pruned[v]) >= 1

    def test_tail_pruning_shrinks_total_size(self, medium_graph):
        adjacency = working_graph_from(medium_graph)
        cut = sorted(adjacency)[:8]
        ranking = rank_cut_vertices(adjacency, cut)
        full, _ = node_distance_arrays(adjacency, ranking, tail_pruning=False)
        pruned, _ = node_distance_arrays(adjacency, ranking, tail_pruning=True)
        assert sum(map(len, pruned.values())) < sum(map(len, full.values()))

    def test_empty_cut_produces_empty_arrays(self, path_adjacency):
        ranking = rank_cut_vertices(path_adjacency, [])
        arrays, cut_distances = node_distance_arrays(path_adjacency, ranking)
        assert cut_distances == {}
        assert all(array == [] for array in arrays.values())


class TestLabellingContainer:
    def test_append_and_access(self):
        labelling = HC2LLabelling(3)
        labelling.append_level(0, [1.0, 2.0])
        labelling.append_level(0, [3.0])
        labelling.append_level(1, [])
        assert labelling.num_levels(0) == 2
        assert labelling.level_array(0, 1) == [3.0]
        assert labelling.entries_of(0) == 3
        assert labelling.total_entries() == 3

    def test_size_accounting(self):
        labelling = HC2LLabelling(2)
        labelling.append_level(0, [1.0, 2.0, 3.0])
        labelling.append_level(1, [4.0])
        assert labelling.size_bytes() == 4 * 8 + 2 * 2 + 2 * 8
        assert labelling.average_label_entries() == 2.0
        assert labelling.max_label_entries() == 3

    def test_empty_labelling(self):
        labelling = HC2LLabelling(0)
        assert labelling.total_entries() == 0
        assert labelling.average_label_entries() == 0.0
        assert labelling.max_label_entries() == 0
