"""Unit tests for balanced partitioning, balanced cuts and shortcuts (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.graph.builders import graph_from_edges, grid_graph, path_graph
from repro.partition.cut import balanced_cut, separates
from repro.partition.partition import balanced_partition
from repro.partition.shortcuts import (
    border_vertices,
    child_adjacency,
    compute_shortcuts,
    is_distance_preserving,
)
from repro.partition.working_graph import (
    add_edge,
    dijkstra_adjacency,
    farthest_vertex_adjacency,
    num_edges,
    restrict_adjacency,
    working_graph_from,
)

INF = float("inf")


class TestWorkingGraph:
    def test_working_graph_from_graph(self, uniform_grid):
        adjacency = working_graph_from(uniform_grid)
        assert len(adjacency) == uniform_grid.num_vertices
        assert num_edges(adjacency) == uniform_grid.num_edges

    def test_restrict_adjacency(self, uniform_grid):
        adjacency = working_graph_from(uniform_grid)
        sub = restrict_adjacency(adjacency, range(10))
        assert set(sub) == set(range(10))
        assert all(w < 10 for nbrs in sub.values() for w in nbrs)
        # restriction must not alias the original dicts
        sub[0][99] = 1.0
        assert 99 not in adjacency[0]

    def test_add_edge_keeps_minimum(self):
        adjacency = {0: {}, 1: {}}
        add_edge(adjacency, 0, 1, 5.0)
        add_edge(adjacency, 0, 1, 3.0)
        add_edge(adjacency, 0, 1, 7.0)
        assert adjacency[0][1] == 3.0
        add_edge(adjacency, 0, 0, 1.0)  # self loops ignored
        assert 0 not in adjacency[0]

    def test_dijkstra_adjacency_matches_graph_dijkstra(self, jittered_grid):
        from repro.graph.search import dijkstra

        adjacency = working_graph_from(jittered_grid)
        expected = dijkstra(jittered_grid, 0)
        result = dijkstra_adjacency(adjacency, 0)
        for v in jittered_grid.vertices():
            assert result.get(v, INF) == pytest.approx(expected[v])

    def test_dijkstra_adjacency_allowed(self):
        adjacency = {0: {1: 1.0}, 1: {0: 1.0, 2: 1.0}, 2: {1: 1.0}}
        result = dijkstra_adjacency(adjacency, 0, allowed=[0, 1])
        assert 2 not in result

    def test_farthest_vertex_adjacency(self):
        adjacency = working_graph_from(path_graph(5, weight=2.0))
        vertex, distance, _ = farthest_vertex_adjacency(adjacency, 0)
        assert vertex == 4
        assert distance == 8.0


class TestBalancedPartition:
    @pytest.mark.parametrize("beta", [0.15, 0.2, 0.3])
    def test_partitions_cover_all_vertices(self, medium_graph, beta):
        adjacency = working_graph_from(medium_graph)
        result = balanced_partition(adjacency, beta)
        union = set(result.initial_a) | set(result.cut_region) | set(result.initial_b)
        assert union == set(adjacency)
        assert not (set(result.initial_a) & set(result.initial_b))

    def test_initial_partitions_meet_minimum_size(self, medium_graph):
        adjacency = working_graph_from(medium_graph)
        beta = 0.2
        result = balanced_partition(adjacency, beta)
        minimum = int(beta * len(adjacency)) - 1
        assert len(result.initial_a) >= minimum
        assert len(result.initial_b) >= minimum

    def test_invalid_beta_rejected(self, uniform_grid):
        adjacency = working_graph_from(uniform_grid)
        with pytest.raises(ValueError):
            balanced_partition(adjacency, 0.0)
        with pytest.raises(ValueError):
            balanced_partition(adjacency, 0.7)

    def test_empty_and_singleton_graphs(self):
        assert balanced_partition({}, 0.2).sizes() == (0, 0, 0)
        result = balanced_partition({5: {}}, 0.2)
        assert result.sizes() == (0, 1, 0)
        assert result.cut_region == [5]

    def test_disconnected_small_components(self):
        # three small components, none exceeding (1 - beta) share
        adjacency = {
            0: {1: 1.0}, 1: {0: 1.0},
            2: {3: 1.0}, 3: {2: 1.0},
            4: {5: 1.0}, 5: {4: 1.0},
        }
        result = balanced_partition(adjacency, 0.3)
        assert sorted(result.initial_a + result.cut_region + result.initial_b) == list(range(6))
        # with a dominant-free component structure the cut region gets a whole component
        assert len(result.initial_a) == 2
        assert len(result.initial_b) == 2

    def test_disconnected_dominant_component(self):
        grid, _ = grid_graph(5, 5, seed=1)
        adjacency = working_graph_from(grid)
        # add two isolated vertices
        adjacency[100] = {}
        adjacency[101] = {}
        result = balanced_partition(adjacency, 0.2)
        # the isolated vertices always land in the cut region
        assert 100 in result.cut_region and 101 in result.cut_region

    def test_uniform_path_handles_bottlenecks(self):
        # a star-like bottleneck: all shortest paths from one side to the
        # other pass through the centre, creating one big equivalence class
        edges = [(i, 10, 1.0) for i in range(5)] + [(10, i, 1.0) for i in range(11, 16)]
        graph = graph_from_edges(edges, num_vertices=16)
        adjacency = working_graph_from(graph)
        result = balanced_partition(adjacency, 0.3)
        union = set(result.initial_a) | set(result.cut_region) | set(result.initial_b)
        assert union == set(adjacency)


class TestBalancedCut:
    @pytest.mark.parametrize("beta", [0.2, 0.3])
    def test_cut_separates_partitions(self, medium_graph, beta):
        adjacency = working_graph_from(medium_graph)
        result = balanced_cut(adjacency, beta)
        assert separates(adjacency, result)
        union = set(result.part_a) | set(result.cut) | set(result.part_b)
        assert union == set(adjacency)

    def test_cut_is_small_on_grid(self):
        grid, _ = grid_graph(12, 12, seed=2, weight_jitter=0.2)
        adjacency = working_graph_from(grid)
        result = balanced_cut(adjacency, 0.25)
        # a 12x12 grid has a vertex separator of at most 12 (one column/row)
        assert 0 < len(result.cut) <= 13
        assert separates(adjacency, result)

    def test_balance_bound_roughly_holds(self, medium_graph):
        adjacency = working_graph_from(medium_graph)
        beta = 0.2
        result = balanced_cut(adjacency, beta)
        larger = max(len(result.part_a), len(result.part_b))
        assert larger <= (1 - beta) * len(adjacency) + 1

    def test_disconnected_graph_gets_empty_cut(self):
        adjacency = {
            0: {1: 1.0}, 1: {0: 1.0},
            2: {3: 1.0}, 3: {2: 1.0},
        }
        result = balanced_cut(adjacency, 0.3)
        assert result.cut == []
        assert separates(adjacency, result)

    def test_path_graph_cut(self):
        adjacency = working_graph_from(path_graph(31))
        result = balanced_cut(adjacency, 0.2)
        assert len(result.cut) == 1
        assert separates(adjacency, result)

    def test_balance_metric(self):
        from repro.partition.cut import BalancedCutResult

        result = BalancedCutResult(part_a=[1, 2, 3], cut=[0], part_b=[4, 5, 6])
        assert result.balance() == pytest.approx(0.5)
        assert BalancedCutResult([], [], []).balance() == 1.0


class TestShortcuts:
    def _cut_setup(self, graph, beta=0.25):
        adjacency = working_graph_from(graph)
        result = balanced_cut(adjacency, beta)
        cut_distances = {c: dijkstra_adjacency(adjacency, c) for c in result.cut}
        return adjacency, result, cut_distances

    def test_border_vertices_are_adjacent_to_cut(self, jittered_grid):
        adjacency, result, _ = self._cut_setup(jittered_grid)
        borders = border_vertices(adjacency, result.part_a, result.cut)
        cut_set = set(result.cut)
        for b in borders:
            assert any(w in cut_set for w in adjacency[b])

    def test_children_are_distance_preserving(self, jittered_grid):
        adjacency, result, cut_distances = self._cut_setup(jittered_grid)
        for part in (result.part_a, result.part_b):
            shortcuts = compute_shortcuts(adjacency, result.cut, part, cut_distances)
            child = child_adjacency(adjacency, part, shortcuts)
            sample = part[:: max(1, len(part) // 8)]
            assert is_distance_preserving(adjacency, child, sample_vertices=sample)

    def test_without_shortcuts_distances_can_grow(self, jittered_grid):
        adjacency, result, cut_distances = self._cut_setup(jittered_grid)
        needed = []
        for part in (result.part_a, result.part_b):
            shortcuts = compute_shortcuts(adjacency, result.cut, part, cut_distances)
            needed.extend(shortcuts)
        if not needed:
            pytest.skip("this cut produced no non-redundant shortcuts")
        # every emitted shortcut must be strictly shorter than the
        # within-partition distance it replaces
        for shortcut in needed:
            for part in (result.part_a, result.part_b):
                if shortcut.u in part and shortcut.v in part:
                    part_set = set(part)
                    within = dijkstra_adjacency(adjacency, shortcut.u, allowed=part_set)
                    assert shortcut.weight < within.get(shortcut.v, INF)

    def test_shortcut_weights_are_true_distances(self, medium_graph, medium_oracle):
        adjacency, result, cut_distances = self._cut_setup(medium_graph, beta=0.2)
        for part in (result.part_a, result.part_b):
            shortcuts = compute_shortcuts(adjacency, result.cut, part, cut_distances)
            for shortcut in shortcuts:
                expected = medium_oracle.distance(shortcut.u, shortcut.v)
                assert shortcut.weight == pytest.approx(expected, rel=1e-6)

    def test_small_partition_without_borders_needs_no_shortcuts(self):
        adjacency = {0: {1: 1.0}, 1: {0: 1.0}, 2: {}}
        assert compute_shortcuts(adjacency, [], [0, 1], {}) == []
