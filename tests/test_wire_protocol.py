"""Binary wire framing: round trips, fuzzed corruption, the pipe codec.

The binary frame moves raw ndarray bytes, so a malformed frame is a
memory-safety question, not just a correctness one: every truncation,
bad dtype code, oversized declared shape or trailing byte must raise
``ValueError`` (mid-stream EOF: ``ConnectionError``) - never a silently
zero-filled or short array.  This module fuzzes
:func:`decode_binary_payload` with systematically corrupted frames and
pins the shared frame-length cap, the JSON/binary stream dispatch and
the worker-pipe codec.
"""

from __future__ import annotations

import asyncio
import math
import pickle
import struct

import numpy as np
import pytest

from repro.serving.fleet import protocol
from repro.serving.fleet.protocol import (
    BINARY_MAGIC,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAX_FRAME_BYTES,
    BinaryMessage,
    check_frame_length,
    decode_binary_payload,
    decode_pipe_message,
    encode_binary_frame,
    encode_binary_payload,
    encode_frame,
    encode_pipe_message,
    read_frame,
)


def _read_one(data: bytes):
    """Feed bytes to a StreamReader and read one frame."""

    async def decode():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(decode())


PAYLOAD_CASES = [
    ("distances-request", KIND_REQUEST, "distances", [np.array([[0, 5], [3, 9]], dtype=np.int64)]),
    ("distances-reply", KIND_RESPONSE, "distances", [np.array([1.5, math.inf, 0.0])]),
    ("empty-batch", KIND_REQUEST, "distances", [np.empty((0, 2), dtype=np.int64)]),
    (
        "many_to_many-request",
        KIND_REQUEST,
        "many_to_many",
        [np.array([1, 2, 3], dtype=np.int64), np.array([4, 5], dtype=np.int64)],
    ),
    ("matrix-reply", KIND_RESPONSE, "many_to_many", [np.arange(6, dtype=np.float64).reshape(2, 3)]),
    (
        "one_to_many-request",
        KIND_REQUEST,
        "one_to_many",
        [np.array([7], dtype=np.int64), np.arange(10, dtype=np.int64)],
    ),
]


class TestBinaryRoundTrip:
    @pytest.mark.parametrize(
        "kind,op,arrays",
        [case[1:] for case in PAYLOAD_CASES],
        ids=[case[0] for case in PAYLOAD_CASES],
    )
    def test_payload_round_trip_is_bit_identical(self, kind, op, arrays):
        decoded = decode_binary_payload(encode_binary_payload(kind, op, 42, arrays))
        assert decoded.kind == kind
        assert decoded.op == op
        assert decoded.request_id == 42
        assert len(decoded.arrays) == len(arrays)
        for got, want in zip(decoded.arrays, arrays):
            assert got.shape == want.shape
            assert got.dtype.itemsize == 8
            assert got.tobytes() == np.ascontiguousarray(want).tobytes()

    def test_decoded_arrays_view_the_payload(self):
        values = np.array([1.0, 2.0, 4.0])
        payload = encode_binary_payload(KIND_RESPONSE, "distances", 1, [values])
        decoded = decode_binary_payload(payload)
        assert not decoded.arrays[0].flags.owndata  # np.frombuffer view

    def test_frame_adds_the_length_prefix(self):
        frame = encode_binary_frame(KIND_REQUEST, "distances", 9, [np.zeros((1, 2), dtype=np.int64)])
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert frame[4] == BINARY_MAGIC

    def test_non_contiguous_and_big_endian_inputs_canonicalised(self):
        fortran = np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4))
        big_endian = np.arange(4, dtype=">i8")
        decoded = decode_binary_payload(
            encode_binary_payload(KIND_RESPONSE, "many_to_many", 0, [fortran])
        )
        assert decoded.arrays[0].tolist() == fortran.tolist()
        decoded = decode_binary_payload(
            encode_binary_payload(KIND_REQUEST, "distances", 0, [big_endian.reshape(2, 2)])
        )
        assert decoded.arrays[0].tolist() == [[0, 1], [2, 3]]

    def test_unsupported_inputs_rejected(self):
        with pytest.raises(ValueError, match="int64/float64"):
            encode_binary_payload(KIND_REQUEST, "distances", 0, [np.zeros(2, dtype=np.float32)])
        with pytest.raises(ValueError, match="no binary form"):
            encode_binary_payload(KIND_REQUEST, "stats", 0, [])
        with pytest.raises(ValueError, match="kind"):
            encode_binary_payload(7, "distances", 0, [])
        with pytest.raises(ValueError, match="request id"):
            encode_binary_payload(KIND_REQUEST, "distances", True, [])
        with pytest.raises(ValueError, match="dims"):
            encode_binary_payload(
                KIND_REQUEST, "distances", 0, [np.zeros((1,) * 9, dtype=np.int64)]
            )
        with pytest.raises(ValueError, match="u32"):
            # zero total bytes, so the size cap passes - the dim itself
            # must be refused before struct.pack overflows
            encode_binary_payload(
                KIND_REQUEST, "distances", 0, [np.zeros((2**32, 0), dtype=np.int64)]
            )


class TestBinaryFuzz:
    """Systematic corruption: nothing decodes to garbage, ever."""

    @pytest.fixture(scope="class")
    def valid_payload(self):
        return encode_binary_payload(
            KIND_RESPONSE,
            "many_to_many",
            3,
            [np.arange(6, dtype=np.float64).reshape(2, 3)],
        )

    def test_every_truncation_raises(self, valid_payload):
        for cut in range(len(valid_payload)):
            with pytest.raises(ValueError):
                decode_binary_payload(valid_payload[:cut])

    def test_trailing_bytes_raise(self, valid_payload):
        with pytest.raises(ValueError, match="trailing"):
            decode_binary_payload(valid_payload + b"\x00")

    def test_bad_magic_version_kind_op(self, valid_payload):
        corrupt = bytearray(valid_payload)
        corrupt[0] = 0x7C  # not JSON, not binary, not pickle
        with pytest.raises(ValueError, match="magic"):
            decode_binary_payload(bytes(corrupt))
        corrupt = bytearray(valid_payload)
        corrupt[1] = 99
        with pytest.raises(ValueError, match="version"):
            decode_binary_payload(bytes(corrupt))
        corrupt = bytearray(valid_payload)
        corrupt[2] = 7
        with pytest.raises(ValueError, match="kind"):
            decode_binary_payload(bytes(corrupt))
        corrupt = bytearray(valid_payload)
        corrupt[3] = 200
        with pytest.raises(ValueError, match="op code"):
            decode_binary_payload(bytes(corrupt))

    def test_unknown_dtype_code_raises(self, valid_payload):
        corrupt = bytearray(valid_payload)
        corrupt[13] = 77  # first array's dtype code byte
        with pytest.raises(ValueError, match="dtype code"):
            decode_binary_payload(bytes(corrupt))

    def test_oversized_declared_shape_raises(self, valid_payload):
        """A shape claiming more data than the frame holds must raise, not
        read out of bounds or zero-fill."""
        corrupt = bytearray(valid_payload)
        # first shape u32 sits after head (13) + array head (2)
        struct.pack_into(">I", corrupt, 15, 2**31)
        with pytest.raises(ValueError, match="remain in the frame"):
            decode_binary_payload(bytes(corrupt))

    def test_excessive_ndim_raises(self, valid_payload):
        corrupt = bytearray(valid_payload)
        corrupt[14] = 9  # ndim byte
        with pytest.raises(ValueError):
            decode_binary_payload(bytes(corrupt))

    def test_random_garbage_never_decodes_silently(self):
        rng = np.random.default_rng(5)
        for _ in range(200):
            blob = rng.integers(0, 256, size=int(rng.integers(0, 64)), dtype=np.uint8).tobytes()
            blob = bytes([BINARY_MAGIC]) + blob  # force the binary path
            try:
                decoded = decode_binary_payload(blob)
            except ValueError:
                continue
            # the rare random blob that parses must be internally consistent
            assert isinstance(decoded, BinaryMessage)
            for array in decoded.arrays:
                assert array.dtype.itemsize == 8


class TestFrameLengthCap:
    def test_rejects_non_numbers_and_non_finite(self):
        for bad in (True, "x", None, [4], math.inf, -math.inf, math.nan):
            with pytest.raises(ValueError):
                check_frame_length(bad)
        with pytest.raises(ValueError, match=">= 0"):
            check_frame_length(-1)
        with pytest.raises(ValueError, match="byte limit"):
            check_frame_length(MAX_FRAME_BYTES + 1)
        assert check_frame_length(0) == 0
        assert check_frame_length(MAX_FRAME_BYTES) == MAX_FRAME_BYTES

    def test_json_cap_checked_after_encoding(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        encode_frame({"id": 1})  # small frames still pass
        with pytest.raises(ValueError, match="byte limit"):
            encode_frame({"id": 1, "value": list(range(100))})

    def test_binary_cap_checked_before_assembly(self, monkeypatch):
        """The binary encoder computes the total size from the array
        shapes and refuses *before* concatenating any buffers."""
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 256)
        big = np.zeros(1024, dtype=np.float64)
        with pytest.raises(ValueError, match="byte limit"):
            encode_binary_payload(KIND_RESPONSE, "distances", 0, [big])
        small = np.zeros(4, dtype=np.float64)
        encode_binary_payload(KIND_RESPONSE, "distances", 0, [small])


class TestStreamDispatch:
    def test_json_and_binary_frames_on_one_stream(self):
        json_frame = encode_frame({"id": 1, "op": "ping"})
        binary_frame = encode_binary_frame(
            KIND_REQUEST, "distances", 2, [np.array([[0, 1]], dtype=np.int64)]
        )

        async def decode_both():
            reader = asyncio.StreamReader()
            reader.feed_data(json_frame + binary_frame)
            reader.feed_eof()
            return await read_frame(reader), await read_frame(reader), await read_frame(reader)

        first, second, third = asyncio.run(decode_both())
        assert first == {"id": 1, "op": "ping"}
        assert isinstance(second, BinaryMessage)
        assert second.op == "distances"
        assert third is None  # clean EOF between frames

    def test_mid_frame_eof_in_binary_payload_is_connection_error(self):
        frame = encode_binary_frame(
            KIND_RESPONSE, "distances", 1, [np.arange(8, dtype=np.float64)]
        )
        with pytest.raises(ConnectionError, match="mid-frame"):
            _read_one(frame[:-3])
        with pytest.raises(ConnectionError, match="length prefix"):
            _read_one(frame[:2])

    def test_truncated_binary_payload_with_intact_prefix_raises_value_error(self):
        """A frame whose *length* is intact but whose binary payload is
        internally truncated (attacker-controlled) raises ValueError."""
        payload = encode_binary_payload(
            KIND_RESPONSE, "distances", 1, [np.arange(8, dtype=np.float64)]
        )[:-8]
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ValueError):
            _read_one(frame)

    def test_non_object_json_frame_raises(self):
        frame = struct.pack(">I", 2) + b"[]"
        with pytest.raises(ValueError, match="JSON object"):
            _read_one(frame)


class TestPipeCodec:
    def test_distances_request_and_reply_travel_binary(self):
        pairs = np.array([[1, 2], [3, 4]], dtype=np.int64)
        data = encode_pipe_message({"op": "distances", "pairs": pairs})
        assert data[0] == BINARY_MAGIC
        decoded = decode_pipe_message(data)
        assert decoded["op"] == "distances"
        assert decoded["pairs"].tolist() == pairs.tolist()

        values = np.array([0.5, math.inf])
        data = encode_pipe_message({"ok": True, "value": values})
        assert data[0] == BINARY_MAGIC
        decoded = decode_pipe_message(data)
        assert decoded["ok"] is True
        assert decoded["value"].tobytes() == values.tobytes()

    def test_control_and_error_messages_fall_back_to_pickle(self):
        for message in (
            {"op": "ping"},
            {"ok": False, "error": ValueError("bad")},
            {"ok": True, "value": [1.0, 2.0]},  # non-ndarray value
            {"op": "hub_count", "s": 1, "t": 2},
        ):
            data = encode_pipe_message(message)
            assert data[0] == pickle.dumps({})[0]  # pickle magic, not 0xB1
            decoded = decode_pipe_message(data)
            if "error" in message:
                assert isinstance(decoded["error"], ValueError)
            else:
                assert decoded == message

    def test_multi_array_pipe_frame_rejected(self):
        data = encode_binary_payload(
            KIND_REQUEST,
            "many_to_many",
            0,
            [np.array([1], dtype=np.int64), np.array([2], dtype=np.int64)],
        )
        with pytest.raises(ValueError, match="exactly one array"):
            decode_pipe_message(data)
