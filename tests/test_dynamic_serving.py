"""Versioned generations, hot-swap serving, and the dynamic-path bug squash.

Covers the zero-downtime update pipeline end to end:

* manifest ``generation`` round trip, auto-bump on resave, back-compat
  with generation-less manifests, corrupt-manifest counter restart;
* :meth:`ShardRouter.reload_generation` - answers flip atomically,
  concurrent queries never error mid-swap, a lazy shard load against a
  newer on-disk generation refuses loudly instead of mixing generations;
* the shared pair cache epoch - advancing it hides every cached entry
  from every attachment at once, republish works;
* a live two-worker fleet generation flip under concurrent callers with
  zero dropped or errored requests and bit-identical post-swap answers;
* the dynamic-path bug squash: non-finite weights rejected,
  ``flush``'s lost-update window closed, ``Graph.reweighted`` raising on
  keys that match no edge;
* differential fuzz for the scoped relabel: scoped vs full vs fresh
  build with exact equality (integer weights keep path sums float-exact,
  so bit-identity holds whatever cuts the fresh build picks), including
  contracted pendant edges and disconnected graphs.
"""

from __future__ import annotations

import json
import math
import random
import threading
import zlib
from typing import List, Tuple

import numpy as np
import pytest

from repro.cli import main
from repro.core.dynamic import DynamicHC2LIndex, relabel
from repro.core.index import HC2LIndex
from repro.core.persistence import MANIFEST_FILENAME, load_manifest, shard_directory
from repro.experiments.dynamic import clustered_edge_changes, integerised
from repro.graph.builders import caterpillar_graph, graph_from_edges
from repro.graph.generators import RoadNetworkSpec, synthetic_road_network
from repro.graph.graph import Graph
from repro.serving.fleet import FleetOracle
from repro.serving.shards import ShardRouter
from repro.serving.shm_cache import SharedPairCache


@pytest.fixture(scope="module")
def dyn_graph():
    network = synthetic_road_network(
        RoadNetworkSpec("dynamic-serving", num_vertices=150, seed=23)
    )
    # integer weights: every path sum is float-exact, so the cross-index
    # comparisons below can assert true bit-identity (see module docstring)
    return integerised(network.distance_graph)


@pytest.fixture(scope="module")
def dyn_index(dyn_graph):
    return HC2LIndex.build(dyn_graph)


def _reweight(graph: Graph, factor: float, count: int = 8, seed: int = 3) -> Graph:
    rng = random.Random(seed)
    edges = list(graph.edges())
    rows = rng.sample(range(len(edges)), count)
    return graph.reweighted(
        {(u, v): w * factor for u, v, w in (edges[r] for r in rows)}
    )


def _probe_pairs(graph: Graph, count: int = 150, seed: int = 5) -> List[Tuple[int, int]]:
    rng = random.Random(seed)
    n = graph.num_vertices
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


# --------------------------------------------------------------------- #
# manifest generation field
# --------------------------------------------------------------------- #
class TestGenerationPersistence:
    def test_fresh_layout_is_generation_zero(self, dyn_index, tmp_path):
        layout = dyn_index.save_sharded(tmp_path / "idx.npz", num_shards=2)
        _, manifest = load_manifest(layout)
        assert manifest["generation"] == 0

    def test_resave_auto_bumps_generation(self, dyn_index, tmp_path):
        path = tmp_path / "idx.npz"
        dyn_index.save_sharded(path, num_shards=2)
        dyn_index.save_sharded(path, num_shards=2)
        layout = dyn_index.save_sharded(path, num_shards=2)
        _, manifest = load_manifest(layout)
        assert manifest["generation"] == 2

    def test_explicit_generation_round_trips(self, dyn_index, tmp_path):
        layout = dyn_index.save_sharded(tmp_path / "idx.npz", num_shards=2, generation=7)
        _, manifest = load_manifest(layout)
        assert manifest["generation"] == 7
        # the auto-bump continues from the explicit value
        layout = dyn_index.save_sharded(tmp_path / "idx.npz", num_shards=2)
        _, manifest = load_manifest(layout)
        assert manifest["generation"] == 8

    def test_negative_generation_rejected(self, dyn_index, tmp_path):
        with pytest.raises(ValueError, match="generation"):
            dyn_index.save_sharded(tmp_path / "idx.npz", num_shards=2, generation=-1)

    def test_legacy_manifest_loads_as_generation_zero(self, dyn_index, tmp_path):
        layout = dyn_index.save_sharded(tmp_path / "idx.npz", num_shards=2)
        manifest_path = layout / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        del manifest["generation"]
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        _, loaded = load_manifest(layout)
        assert loaded["generation"] == 0
        router = ShardRouter(tmp_path / "idx.npz")
        try:
            assert router.generation == 0
        finally:
            router.close()

    def test_invalid_generation_value_rejected_on_load(self, dyn_index, tmp_path):
        layout = dyn_index.save_sharded(tmp_path / "idx.npz", num_shards=2)
        manifest_path = layout / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["generation"] = "newest"
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ValueError, match="generation"):
            load_manifest(layout)

    def test_corrupt_manifest_restarts_counter(self, dyn_index, tmp_path):
        path = tmp_path / "idx.npz"
        layout = dyn_index.save_sharded(path, num_shards=2)
        (layout / MANIFEST_FILENAME).write_text("{not json", encoding="utf-8")
        layout = dyn_index.save_sharded(path, num_shards=2)
        _, manifest = load_manifest(layout)
        assert manifest["generation"] == 0


# --------------------------------------------------------------------- #
# router hot-swap
# --------------------------------------------------------------------- #
class TestRouterReload:
    def test_reload_swaps_answers_bit_identically(self, dyn_graph, dyn_index, tmp_path):
        path = tmp_path / "idx.npz"
        dyn_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
        pairs = _probe_pairs(dyn_graph)
        router = ShardRouter(path)
        try:
            before = router.distances(pairs)
            new_graph = _reweight(dyn_graph, 3.0)
            new_index = relabel(dyn_index, new_graph)
            new_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
            assert router.generation == 0
            assert router.reload_generation() == 1
            assert router.generation == 1
            assert router.stats.reloads == 1
            after = router.distances(pairs)
            assert after.tolist() == new_index.distances(pairs).tolist()
            assert after.tolist() != before.tolist()
        finally:
            router.close()

    def test_reload_to_older_generation_is_a_noop(self, dyn_graph, dyn_index, tmp_path):
        path = tmp_path / "idx.npz"
        dyn_index.save_sharded(path, num_shards=2, generation=5)
        router = ShardRouter(path)
        try:
            assert router.generation == 5
            dyn_index.save_sharded(path, num_shards=2, generation=3)
            assert router.reload_generation() == 5  # raced: disk is older
            assert router.stats.reloads == 0
        finally:
            router.close()

    def test_lazy_shard_load_refuses_newer_disk_generation(
        self, dyn_graph, dyn_index, tmp_path
    ):
        path = tmp_path / "idx.npz"
        dyn_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
        router = ShardRouter(path)
        try:
            router._shard(0)  # loaded under generation 0
            dyn_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
            with pytest.raises(RuntimeError, match="reload_generation"):
                router._shard(3)  # would silently mix generations
            router.reload_generation()
            router._shard(3)  # healthy again after the swap
        finally:
            router.close()

    def test_concurrent_queries_never_error_across_swaps(
        self, dyn_graph, dyn_index, tmp_path
    ):
        path = tmp_path / "idx.npz"
        dyn_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
        pairs = _probe_pairs(dyn_graph, count=40, seed=11)
        new_graph = _reweight(dyn_graph, 2.0)
        new_index = relabel(dyn_index, new_graph)
        allowed = {
            tuple(dyn_index.distances(pairs).tolist()),
            tuple(new_index.distances(pairs).tolist()),
        }
        router = ShardRouter(path)
        errors: List[BaseException] = []
        stop = threading.Event()

        def hammer() -> None:
            while not stop.is_set():
                try:
                    got = tuple(router.distances(pairs).tolist())
                    assert got in allowed, "answers mixed two generations"
                except BaseException as error:  # noqa: BLE001 - collected for the assert
                    errors.append(error)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        try:
            for thread in threads:
                thread.start()
            new_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
            assert router.reload_generation() == 1
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
            router.close()
        assert not errors
        assert router.stats.reloads == 1

    def test_closed_router_refuses_reload(self, dyn_index, tmp_path):
        path = tmp_path / "idx.npz"
        dyn_index.save_sharded(path, num_shards=2)
        router = ShardRouter(path)
        router.close()
        with pytest.raises(RuntimeError):
            router.reload_generation()


# --------------------------------------------------------------------- #
# shared pair cache epoch
# --------------------------------------------------------------------- #
class TestSharedCacheEpoch:
    def test_advance_epoch_hides_every_entry(self):
        with SharedPairCache.create(64) as cache:
            cache.put(3, 9, 12.0)
            cache.put(5, 7, 4.5)
            assert cache.epoch == 0
            assert cache.advance_epoch() == 1
            assert cache.get(3, 9) is None
            assert cache.get(5, 7) is None

    def test_epoch_bump_propagates_to_attachments(self):
        with SharedPairCache.create(64) as cache:
            cache.put(1, 2, 8.0)
            attached = SharedPairCache.attach(cache.name)
            try:
                assert attached.get(1, 2) == 8.0
                cache.advance_epoch()
                assert attached.epoch == 1
                assert attached.get(1, 2) is None
            finally:
                attached.close()

    def test_republish_after_epoch_advance(self):
        with SharedPairCache.create(64) as cache:
            cache.put(3, 9, 12.0)
            cache.advance_epoch()
            cache.put(3, 9, 99.0)  # the new generation's value
            assert cache.get(3, 9) == 99.0
            cache.put(11, 13, math.inf)
            assert cache.get(11, 13) == math.inf

    def test_stale_epoch_slot_is_reclaimed_by_eviction_path(self):
        with SharedPairCache.create(8) as cache:
            for k in range(1, 8):
                cache.put(k, k + 50, float(k))
            cache.advance_epoch()
            # every slot holds a stale-epoch entry; new publishes must land
            for k in range(1, 8):
                cache.put(k, k + 80, float(k * 10))
            hits = sum(cache.get(k, k + 80) == k * 10 for k in range(1, 8))
            assert hits > 0  # capacity is probabilistic, total loss is not


# --------------------------------------------------------------------- #
# live fleet hot-swap
# --------------------------------------------------------------------- #
class TestFleetHotSwap:
    def test_generation_flip_under_concurrent_callers(
        self, dyn_graph, dyn_index, tmp_path
    ):
        path = tmp_path / "idx.npz"
        dyn_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
        pairs = _probe_pairs(dyn_graph, count=60, seed=17)
        new_graph = _reweight(dyn_graph, 4.0)
        new_index = relabel(dyn_index, new_graph)
        allowed = {
            tuple(dyn_index.distances(pairs).tolist()),
            tuple(new_index.distances(pairs).tolist()),
        }
        errors: List[BaseException] = []
        stop = threading.Event()
        with FleetOracle(path, num_workers=2, shared_cache_slots=256) as fleet:
            fleet.distances(pairs)  # warm the generation-0 shared cache

            def hammer() -> None:
                while not stop.is_set():
                    try:
                        got = tuple(fleet.distances(pairs).tolist())
                        assert got in allowed, "answers mixed two generations"
                    except BaseException as error:  # noqa: BLE001
                        errors.append(error)
                        return

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            try:
                for thread in threads:
                    thread.start()
                new_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
                reply = fleet.reload()
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)
            assert not errors
            assert reply["generation"] == 1
            assert [w["generation"] for w in reply["workers"]] == [1, 1]
            assert fleet.generation == 1
            # post-swap: bit-identical to the new index (integer weights
            # make this equality hierarchy-independent), not the old one
            after = fleet.distances(pairs)
            assert after.tolist() == new_index.distances(pairs).tolist()
            assert after.tolist() != dyn_index.distances(pairs).tolist()
            stats = fleet.stats()
            assert stats["generation"] == 1
            assert stats["reloads"] == 1

    def test_reload_without_new_generation_is_stable(self, dyn_index, tmp_path):
        path = tmp_path / "idx.npz"
        dyn_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
        with FleetOracle(path, num_workers=2) as fleet:
            before = fleet.distance(0, 5)
            reply = fleet.reload()
            assert reply["generation"] == 0
            assert fleet.distance(0, 5) == before


# --------------------------------------------------------------------- #
# CLI reload
# --------------------------------------------------------------------- #
class TestCliReload:
    def test_reload_against_live_fleet(self, dyn_graph, dyn_index, tmp_path, capsys):
        path = tmp_path / "idx.npz"
        dyn_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
        with FleetOracle(path, num_workers=2) as fleet:
            host, port = fleet.start_tcp()
            new_index = relabel(dyn_index, _reweight(dyn_graph, 2.0))
            new_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
            assert main(["reload", "--host", host, "--port", str(port)]) == 0
            reply = json.loads(capsys.readouterr().out)
            assert reply["generation"] == 1
            assert fleet.generation == 1

    def test_reload_unreachable_fleet_fails_loudly(self, capsys):
        assert main(["reload", "--port", "1", "--timeout", "2"]) == 1
        assert "reload failed" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# dynamic-path bug squash (satellites)
# --------------------------------------------------------------------- #
def _square_with_tail() -> Graph:
    graph = Graph(6)
    graph.add_edge(0, 1, 2.0)
    graph.add_edge(1, 2, 2.0)
    graph.add_edge(2, 3, 2.0)
    graph.add_edge(3, 0, 2.0)
    graph.add_edge(3, 4, 1.0)  # pendant chain: 3 - 4 - 5
    graph.add_edge(4, 5, 1.0)
    return graph


class TestDynamicBugSquash:
    @pytest.mark.parametrize("weight", [float("nan"), float("inf"), -float("inf")])
    def test_update_edge_weight_rejects_non_finite(self, weight):
        dynamic = DynamicHC2LIndex(_square_with_tail())
        with pytest.raises(ValueError, match="finite"):
            dynamic.update_edge_weight(0, 1, weight)
        assert dynamic.pending_updates() == 0
        assert dynamic.distance(0, 2) == 4.0  # index not poisoned

    def test_update_landing_mid_flush_survives_to_next_flush(self, monkeypatch):
        dynamic = DynamicHC2LIndex(_square_with_tail())
        dynamic.update_edge_weight(0, 1, 10.0)

        import repro.core.dynamic as dynamic_module

        real_relabel = dynamic_module.relabel
        fired = []

        def racing_relabel(index, new_graph, changed_edges=None):
            if not fired:
                fired.append(True)
                # a writer thread lands an update while the relabel runs;
                # the old code cleared the whole pending map afterwards
                dynamic.update_edge_weight(1, 2, 20.0)
            return real_relabel(index, new_graph, changed_edges=changed_edges)

        monkeypatch.setattr(dynamic_module, "relabel", racing_relabel)
        dynamic.flush()
        assert dynamic.pending_updates() == 1  # the mid-flush update survived
        # next query applies it: with (0,1)=10 and (1,2)=20 the best
        # 1-to-2 route is the detour 1-0-3-2 at 10 + 2 + 2
        assert dynamic.distance(1, 2) == 14.0
        assert dynamic._graph.edge_weight(1, 2) == 20.0
        assert dynamic.pending_updates() == 0

    def test_concurrent_queries_flush_once(self):
        dynamic = DynamicHC2LIndex(_square_with_tail())
        dynamic.update_edge_weight(0, 1, 10.0)
        barrier = threading.Barrier(4)
        results: List[float] = []
        lock = threading.Lock()

        def query() -> None:
            barrier.wait()
            value = dynamic.distance(0, 1)
            with lock:
                results.append(value)

        threads = [threading.Thread(target=query) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        # with (0, 1) at weight 10 the detour 0-3-2-1 wins at 6
        assert results == [6.0] * 4
        assert dynamic.relabel_count == 1  # racing queries flushed once

    def test_reweighted_rejects_unknown_and_unnormalised_keys(self):
        graph = _square_with_tail()
        with pytest.raises(ValueError, match="no edge"):
            graph.reweighted({(0, 5): 3.0})  # no such edge
        with pytest.raises(ValueError, match="no edge"):
            graph.reweighted({(1, 0): 3.0})  # un-normalised orientation
        updated = graph.reweighted({(0, 1): 3.0})
        assert updated.edge_weight(0, 1) == 3.0


# --------------------------------------------------------------------- #
# scoped relabel differential fuzz
# --------------------------------------------------------------------- #
def _random_tree_edges(rng: random.Random, n: int) -> List[Tuple[int, int, float]]:
    return [(rng.randrange(v), v, float(rng.randrange(1, 16))) for v in range(1, n)]


def _scoped_fuzz_graph(case: str, seed: int) -> Graph:
    rng = random.Random(zlib.crc32(case.encode()) * 7919 + seed)
    if case == "pendant_chains":
        # caterpillar + chords: big attachment trees, changed pendant
        # edges exercise the contraction-rebuild fallback
        spine = rng.randrange(8, 16)
        graph = caterpillar_graph(spine, 2, weight=float(rng.randrange(1, 9)))
        graph.add_edge(0, spine - 1, float(rng.randrange(1, 16)))
        return graph
    if case == "sparse_core":
        n = rng.randrange(30, 80)
        edges = _random_tree_edges(rng, n)
        for _ in range(n):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v, float(rng.randrange(1, 16))))
        return graph_from_edges(edges, num_vertices=n)
    if case == "disconnected":
        rng_a, rng_b = random.Random(seed * 5 + 1), random.Random(seed * 5 + 2)
        n_a, n_b = rng_a.randrange(12, 30), rng_b.randrange(12, 30)
        edges = _random_tree_edges(rng_a, n_a)
        for _ in range(n_a):
            u, v = rng_a.randrange(n_a), rng_a.randrange(n_a)
            if u != v:
                edges.append((u, v, float(rng_a.randrange(1, 16))))
        edges += [(u + n_a, v + n_a, w) for u, v, w in _random_tree_edges(rng_b, n_b)]
        return graph_from_edges(edges, num_vertices=n_a + n_b + 1)
    raise AssertionError(f"unknown case {case!r}")


@pytest.mark.parametrize("case", ["pendant_chains", "sparse_core", "disconnected"])
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestScopedRelabelFuzz:
    def _changed_subset(self, graph: Graph, seed: int, count: int):
        rng = random.Random(seed * 31 + 7)
        edges = list(graph.edges())
        rows = rng.sample(range(len(edges)), min(count, len(edges)))
        return {
            (u, v): w * float(rng.randrange(2, 6))
            for u, v, w in (edges[r] for r in rows)
        }

    def test_scoped_equals_full_equals_fresh(self, case, seed):
        graph = _scoped_fuzz_graph(case, seed)
        index = HC2LIndex.build(graph, leaf_size=4)
        for count in (1, 3, len(list(graph.edges())) // 2):
            changed = self._changed_subset(graph, seed + count, count)
            new_graph = graph.reweighted(changed)
            scoped = relabel(index, new_graph, changed_edges=changed)
            full = relabel(index, new_graph)
            # scoped and full share the hierarchy: the labels themselves
            # must be bit-identical, not just the answers
            assert scoped.flat_labelling() == full.flat_labelling()
            fresh = HC2LIndex.build(new_graph, leaf_size=4)
            pairs = _probe_pairs(new_graph, count=200, seed=seed)
            assert scoped.distances(pairs).tolist() == fresh.distances(pairs).tolist()

    def test_declared_superset_is_allowed(self, case, seed):
        graph = _scoped_fuzz_graph(case, seed)
        index = HC2LIndex.build(graph, leaf_size=4)
        changed = self._changed_subset(graph, seed, 2)
        declared = dict(changed)
        for u, v, w in graph.edges():
            if (u, v) not in declared:
                declared[(u, v)] = w  # declared but unchanged
                break
        new_graph = graph.reweighted(changed)
        scoped = relabel(index, new_graph, changed_edges=declared)
        full = relabel(index, new_graph)
        assert scoped.flat_labelling() == full.flat_labelling()

    def test_undeclared_change_raises(self, case, seed):
        graph = _scoped_fuzz_graph(case, seed)
        index = HC2LIndex.build(graph, leaf_size=4)
        changed = self._changed_subset(graph, seed, 2)
        if len(changed) < 2:
            pytest.skip("graph too small for a two-edge change")
        new_graph = graph.reweighted(changed)
        declared = dict(changed)
        declared.pop(next(iter(declared)))
        with pytest.raises(ValueError, match="omits"):
            relabel(index, new_graph, changed_edges=declared)


class TestCrossingShortcutRegression:
    """Pin the cut-crossing shortcut bug the differential fuzz uncovered.

    Raising the weight of one core edge makes the parent-level shortcut
    computation add a new shortcut edge that connects the two inherited
    children of a deeper node directly - the inherited cut no longer
    separates the node's working graph, and before the fix the
    single-depth query missed every shortest path running over that edge
    (returning 18.0 instead of 14.0 for the worst pair below).
    """

    def test_relabel_matches_dijkstra_all_pairs(self):
        from repro.graph.search import dijkstra

        graph = _scoped_fuzz_graph("sparse_core", 0)
        index = HC2LIndex.build(graph, leaf_size=4)
        changed = {(0, 1): 40.0}
        new_graph = graph.reweighted(changed)
        full = relabel(index, new_graph)
        scoped = relabel(index, new_graph, changed_edges=changed)
        assert scoped.flat_labelling() == full.flat_labelling()
        for s in range(new_graph.num_vertices):
            truth = dijkstra(new_graph, s)
            for t in range(new_graph.num_vertices):
                assert full.distance(s, t) == truth[t], (s, t)


# --------------------------------------------------------------------- #
# clustered change workload helpers
# --------------------------------------------------------------------- #
class TestClusteredChanges:
    def test_changes_are_clustered_and_scaled(self, dyn_graph):
        changed = clustered_edge_changes(dyn_graph, 10, 2.5, seed=4)
        assert len(changed) == 10
        for (u, v), w in changed.items():
            assert u < v
            assert w == dyn_graph.edge_weight(u, v) * 2.5

    def test_rejects_bad_parameters(self, dyn_graph):
        with pytest.raises(ValueError):
            clustered_edge_changes(dyn_graph, 0, 2.0)
        with pytest.raises(ValueError):
            clustered_edge_changes(dyn_graph, 5, 0.0)

    def test_integerised_weights_are_positive_integers(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 0.2)
        graph.add_edge(1, 2, 7.6)
        rounded = integerised(graph)
        assert rounded.edge_weight(0, 1) == 1.0  # floors at 1, never 0
        assert rounded.edge_weight(1, 2) == 8.0
