"""Unit tests for the HC2L builder internals (recursion control, stats)."""

from __future__ import annotations

import pytest

from repro.core.construction import ConstructionStats, HC2LBuilder
from repro.graph.builders import complete_graph, graph_from_edges, grid_graph, star_graph
from repro.graph.graph import Graph


class TestBuilderRecursionControl:
    def test_leaf_size_larger_than_graph_gives_single_node(self, uniform_grid):
        builder = HC2LBuilder(leaf_size=uniform_grid.num_vertices)
        hierarchy, labelling, stats = builder.build(uniform_grid)
        assert len(hierarchy.nodes) == 1
        assert hierarchy.nodes[0].is_leaf
        assert stats.num_leaves == 1
        # a single leaf stores a full distance array per vertex (up to pruning)
        assert labelling.average_label_entries() > 1

    def test_smaller_leaf_size_gives_deeper_tree(self, uniform_grid):
        shallow = HC2LBuilder(leaf_size=50).build(uniform_grid)[0]
        deep = HC2LBuilder(leaf_size=4).build(uniform_grid)[0]
        assert deep.height() >= shallow.height()
        assert len(deep.nodes) > len(shallow.nodes)

    def test_max_depth_forces_leaves(self, uniform_grid):
        builder = HC2LBuilder(leaf_size=2, max_depth=2)
        hierarchy, _, stats = builder.build(uniform_grid)
        assert hierarchy.height() <= 3
        assert stats.max_depth <= 2

    def test_empty_graph(self):
        hierarchy, labelling, stats = HC2LBuilder().build(Graph(0))
        assert hierarchy.nodes == []
        assert labelling.total_entries() == 0
        assert stats.num_nodes == 0

    def test_single_vertex_graph(self):
        hierarchy, labelling, stats = HC2LBuilder().build(Graph(1))
        assert len(hierarchy.nodes) == 1
        assert hierarchy.nodes[0].cut == [0]
        assert labelling.labels[0] == [[0.0]]

    def test_complete_graph_terminates(self):
        # dense graphs have no small cuts; the builder must still terminate
        graph = complete_graph(12)
        hierarchy, labelling, _ = HC2LBuilder(leaf_size=4).build(graph)
        assert hierarchy.check_vertex_assignment()

    def test_star_graph_structure(self):
        hierarchy, _, _ = HC2LBuilder(leaf_size=3).build(star_graph(15))
        assert hierarchy.check_vertex_assignment()
        assert hierarchy.height() >= 1


class TestBuilderStats:
    def test_node_counts_are_consistent(self, medium_graph):
        builder = HC2LBuilder(leaf_size=10)
        hierarchy, _, stats = builder.build(medium_graph)
        assert stats.num_nodes == len(hierarchy.nodes)
        assert stats.num_leaves == sum(1 for node in hierarchy.nodes if node.is_leaf)
        assert stats.max_depth == hierarchy.height() - 1

    def test_timer_phases_recorded(self, small_graph):
        _, _, stats = HC2LBuilder().build(small_graph)
        phases = stats.timer.durations
        assert {"hierarchy", "labelling", "shortcuts"} <= set(phases)
        assert all(value >= 0 for value in phases.values())
        flattened = stats.as_dict()
        assert flattened["total_seconds"] == pytest.approx(stats.timer.total())

    def test_empty_cut_counted_for_disconnected_subgraphs(self):
        # two equally sized grids, not connected to each other: the root cut
        # is empty and the builder records it
        grid_a, _ = grid_graph(5, 5, seed=1)
        edges = list(grid_a.edges())
        offset = grid_a.num_vertices
        both = graph_from_edges(
            edges + [(u + offset, v + offset, w) for u, v, w in edges],
            num_vertices=2 * offset,
        )
        _, _, stats = HC2LBuilder(leaf_size=6).build(both)
        assert stats.num_empty_cuts >= 1

    def test_shortcut_counter_positive_on_grids(self, jittered_grid):
        _, _, stats = HC2LBuilder(leaf_size=8).build(jittered_grid)
        assert stats.num_shortcuts >= 0

    def test_construction_stats_default_factory(self):
        stats = ConstructionStats()
        assert stats.num_nodes == 0
        assert stats.timer.total() == 0.0
