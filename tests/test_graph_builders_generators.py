"""Unit tests for the elementary builders and the road-network generator."""

from __future__ import annotations

import math

import pytest

from repro.graph.builders import (
    complete_graph,
    cycle_graph,
    graph_from_edges,
    grid_graph,
    path_graph,
    random_geometric_graph,
    star_graph,
)
from repro.graph.components import is_connected
from repro.graph.generators import (
    RoadNetworkSpec,
    generate_dataset,
    paper_dataset_specs,
    synthetic_road_network,
)


class TestBuilders:
    def test_graph_from_edges_infers_size(self):
        graph = graph_from_edges([(0, 1, 1.0), (4, 2, 2.0)])
        assert graph.num_vertices == 5
        assert graph.num_edges == 2

    def test_graph_from_edges_explicit_size(self):
        graph = graph_from_edges([(0, 1, 1.0)], num_vertices=10)
        assert graph.num_vertices == 10

    def test_path_graph(self):
        graph = path_graph(5, weight=2.0)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2
        assert graph.edge_weight(1, 2) == 2.0

    def test_cycle_graph(self):
        graph = cycle_graph(5)
        assert graph.num_edges == 5
        assert all(graph.degree(v) == 2 for v in graph.vertices())

    def test_star_graph(self):
        graph = star_graph(6)
        assert graph.degree(0) == 5
        assert all(graph.degree(v) == 1 for v in range(1, 6))

    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.num_edges == 10

    def test_grid_graph_shape(self):
        graph, coords = grid_graph(4, 6)
        assert graph.num_vertices == 24
        assert graph.num_edges == 4 * 5 + 3 * 6  # horizontal + vertical
        assert len(coords) == 24

    def test_grid_graph_jitter_determinism(self):
        g1, _ = grid_graph(5, 5, seed=9, weight_jitter=0.2)
        g2, _ = grid_graph(5, 5, seed=9, weight_jitter=0.2)
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_grid_graph_jitter_changes_weights(self):
        flat, _ = grid_graph(5, 5, seed=9, weight_jitter=0.0)
        jittered, _ = grid_graph(5, 5, seed=9, weight_jitter=0.4)
        assert sorted(w for _, _, w in flat.edges()) != sorted(
            w for _, _, w in jittered.edges()
        )

    def test_random_geometric_graph_connected(self):
        graph, coords = random_geometric_graph(150, seed=4)
        assert graph.num_vertices == 150
        assert is_connected(graph)
        assert len(coords) == 150

    def test_random_geometric_graph_weights_match_geometry(self):
        graph, coords = random_geometric_graph(80, seed=2)
        for u, v, w in graph.edges():
            assert w == pytest.approx(max(math.dist(coords[u], coords[v]), 1e-9))

    def test_random_geometric_graph_deterministic(self):
        g1, _ = random_geometric_graph(60, seed=8)
        g2, _ = random_geometric_graph(60, seed=8)
        assert sorted(g1.edges()) == sorted(g2.edges())


class TestRoadNetworkGenerator:
    def test_generator_produces_both_weightings(self):
        network = synthetic_road_network(RoadNetworkSpec("t", num_vertices=120, seed=1))
        assert network.distance_graph.num_vertices == network.travel_time_graph.num_vertices
        assert network.distance_graph.num_edges == network.travel_time_graph.num_edges

    def test_graph_accessor(self):
        network = synthetic_road_network(RoadNetworkSpec("t", num_vertices=100, seed=2))
        assert network.graph("distance") is network.distance_graph
        assert network.graph("travel_time") is network.travel_time_graph
        assert network.graph("time") is network.travel_time_graph
        with pytest.raises(ValueError):
            network.graph("bogus")

    def test_travel_times_differ_from_distances(self):
        network = synthetic_road_network(RoadNetworkSpec("t", num_vertices=150, seed=3))
        distance_weights = sorted(w for _, _, w in network.distance_graph.edges())
        travel_weights = sorted(w for _, _, w in network.travel_time_graph.edges())
        assert distance_weights != travel_weights

    def test_deadends_create_degree_one_vertices(self):
        network = synthetic_road_network(
            RoadNetworkSpec("t", num_vertices=150, seed=4, deadend_fraction=0.2)
        )
        graph = network.distance_graph
        degree_one = sum(1 for v in graph.vertices() if graph.degree(v) == 1)
        assert degree_one >= 0.1 * graph.num_vertices

    def test_generator_is_deterministic(self):
        spec = RoadNetworkSpec("t", num_vertices=100, seed=11)
        a = synthetic_road_network(spec)
        b = synthetic_road_network(spec)
        assert sorted(a.distance_graph.edges()) == sorted(b.distance_graph.edges())

    def test_network_is_connected_apart_from_nothing(self):
        network = synthetic_road_network(RoadNetworkSpec("t", num_vertices=200, seed=5))
        assert is_connected(network.distance_graph)

    def test_paper_dataset_specs_ordering(self):
        specs = paper_dataset_specs()
        assert list(specs) == ["NY", "BAY", "COL", "FLA", "CAL", "E", "W", "CTR", "USA", "EUR"]
        assert specs["NY"].num_vertices < specs["USA"].num_vertices

    def test_paper_dataset_specs_scaling(self):
        base = paper_dataset_specs(1.0)["NY"].num_vertices
        doubled = paper_dataset_specs(2.0)["NY"].num_vertices
        assert doubled == pytest.approx(2 * base, rel=0.1)

    def test_generate_dataset_unknown_name(self):
        with pytest.raises(KeyError):
            generate_dataset("NOPE")

    def test_generate_dataset_known_name(self):
        network = generate_dataset("NY", scale=0.5)
        assert network.spec.name == "NY"
        assert network.distance_graph.num_vertices > 100
