"""Shard-fleet serving: placement, failure paths, lifecycle, wire protocol.

The conformance half of the fleet story lives in
``test_oracle_protocol.py`` (bit-identical answers at 2 and 3 workers);
this module covers everything that can go *wrong*: worker crashes
mid-batch (restart + retry, then a loud error once the budget is gone),
front-door shutdown with requests in flight (drain completes), oracle
exceptions propagating to awaiting clients instead of hanging futures,
deterministic mmap release through the new ``close()`` seams, and the
framing rules of the TCP protocol.
"""

from __future__ import annotations

import asyncio
import math

import numpy as np
import pytest

from repro.core.index import HC2LIndex
from repro.graph.generators import RoadNetworkSpec, synthetic_road_network
from repro.serving.fleet import FleetClient, FleetOracle, WorkerCrashError
from repro.serving.fleet.placement import BatchPlacer, owner_shard_by_original
from repro.serving.fleet.pool import assign_shards
from repro.serving.fleet.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    error_to_wire,
    wire_to_error,
)
from repro.serving.mmap import load_index_mmap
from repro.serving.shards import ShardRouter


@pytest.fixture(scope="module")
def fleet_graph():
    network = synthetic_road_network(
        RoadNetworkSpec("fleet-tests", num_vertices=150, seed=11)
    )
    return network.distance_graph


@pytest.fixture(scope="module")
def fleet_index(fleet_graph):
    return HC2LIndex.build(fleet_graph)


@pytest.fixture(scope="module")
def fleet_layout(fleet_index, tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet-tests") / "index.npz"
    fleet_index.save_sharded(path, num_shards=4, boundaries="hierarchy")
    return path


@pytest.fixture(scope="module")
def fleet(fleet_layout):
    oracle = FleetOracle(fleet_layout, num_workers=2)
    yield oracle
    oracle.close()


@pytest.fixture(scope="module")
def workload(fleet_graph):
    rng = np.random.default_rng(3)
    return rng.integers(0, fleet_graph.num_vertices, size=(120, 2))


# --------------------------------------------------------------------- #
# shard assignment and placement
# --------------------------------------------------------------------- #
class TestAssignment:
    def test_contiguous_and_complete(self):
        runs = assign_shards(5, 2)
        assert runs == [[0, 1, 2], [3, 4]]
        assert assign_shards(4, 4) == [[0], [1], [2], [3]]

    def test_more_workers_than_shards_rejected(self):
        with pytest.raises(ValueError, match="exceeds num_shards"):
            assign_shards(2, 3)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            assign_shards(2, 0)


class TestPlacement:
    def test_owner_shard_covers_every_original_vertex(self, fleet_index, fleet):
        manifest = fleet.server.manifest
        owner = owner_shard_by_original(
            fleet_index.contraction,
            fleet_index.hierarchy,
            manifest["boundaries"],
            manifest.get("vertex_order", "identity"),
        )
        num_shards = len(manifest["boundaries"]) - 1
        assert owner.shape == (fleet_index.contraction.num_original,)
        assert owner.min() >= 0
        assert owner.max() < num_shards

    def test_contracted_vertex_follows_its_root(self, fleet_index, fleet):
        """A degree-one vertex is owned by the shard of its attachment root."""
        contraction = fleet_index.contraction
        manifest = fleet.server.manifest
        owner = owner_shard_by_original(
            contraction,
            fleet_index.hierarchy,
            manifest["boundaries"],
            manifest.get("vertex_order", "identity"),
        )
        contracted = np.nonzero(np.asarray(contraction.original_to_core) < 0)[0]
        for v in contracted[:10]:
            assert owner[v] == owner[contraction.root[v]]

    def test_unanimous_batch_routes_whole(self):
        owner_shard = np.asarray([0, 0, 1, 1])
        placer = BatchPlacer(owner_shard, np.asarray([0, 1]))
        plan = placer.plan(np.asarray([(0, 3), (1, 2), (0, 1)]))
        assert plan.whole == 0
        assert plan.parts == []
        assert plan.majority_fraction == 1.0

    def test_mixed_batch_splits_by_owner(self):
        owner_shard = np.asarray([0, 0, 1, 1])
        placer = BatchPlacer(owner_shard, np.asarray([0, 1]))
        plan = placer.plan(np.asarray([(0, 1), (2, 3), (3, 0), (1, 2)]))
        assert plan.whole is None
        assert [worker for worker, _ in plan.parts] == [0, 1]
        rows = np.concatenate([rows for _, rows in plan.parts])
        assert sorted(rows.tolist()) == [0, 1, 2, 3]

    def test_majority_threshold_keeps_skewed_batch_whole(self):
        owner_shard = np.asarray([0, 0, 1, 1])
        placer = BatchPlacer(owner_shard, np.asarray([0, 1]), majority_threshold=0.75)
        plan = placer.plan(np.asarray([(0, 1), (1, 0), (0, 2), (2, 0)]))
        assert plan.whole == 0
        assert plan.majority_fraction == 0.75

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError, match="majority_threshold"):
            BatchPlacer(np.asarray([0]), np.asarray([0]), majority_threshold=0.0)
        with pytest.raises(ValueError, match="majority_threshold"):
            BatchPlacer(np.asarray([0]), np.asarray([0]), majority_threshold=1.5)


# --------------------------------------------------------------------- #
# failure paths
# --------------------------------------------------------------------- #
class TestFailurePaths:
    def test_worker_crash_mid_batch_restarts_and_retries(
        self, fleet, fleet_index, workload
    ):
        """Killing a worker process mid-stream must be invisible to callers:
        the dispatcher restarts it and the retried answers stay
        bit-identical."""
        baseline = fleet_index.distances(workload)
        before = fleet.stats()
        fleet.kill_worker(0)
        assert fleet.distances(workload).tolist() == baseline.tolist()
        after = fleet.stats()
        assert after["restarts"] >= before["restarts"] + 1
        assert after["retries"] >= before["retries"] + 1

    def test_exhausted_retries_fail_loudly(self, fleet_layout):
        """A request that keeps crashing its worker resolves with
        WorkerCrashError - never a hang, never a silent drop."""
        with FleetOracle(fleet_layout, num_workers=2, max_retries=0) as fleet:
            worker = fleet.server.pool.workers[0]

            async def crash_request():
                return await fleet.server.pool.submit(0, {"op": "__crash__"})

            with pytest.raises(WorkerCrashError, match="retries are exhausted"):
                fleet._run(crash_request())
            assert worker.stats.restarts == 1
            # the restarted worker keeps serving afterwards
            assert fleet.distance(0, 10) >= 0.0

    def test_queued_requests_survive_a_crashing_neighbor(self, fleet_layout, fleet_index):
        """A __crash__ op queued ahead of a real batch must not take the
        batch down with it: the worker restarts and the batch answers."""
        pairs = [(0, 10), (3, 40), (7, 99)]
        baseline = fleet_index.distances(pairs)
        with FleetOracle(fleet_layout, num_workers=2, max_retries=1) as fleet:
            pool = fleet.server.pool

            async def crash_then_query():
                crash = pool.submit(0, {"op": "__crash__"})
                batch = pool.submit(0, {"op": "distances", "pairs": np.asarray(pairs)})
                crash_result, batch_result = await asyncio.gather(
                    crash, batch, return_exceptions=True
                )
                return crash_result, batch_result

            crash_result, batch_result = fleet._run(crash_then_query())
            # the crash op crashed its retry worker too and failed loudly
            assert isinstance(crash_result, WorkerCrashError)
            assert not isinstance(batch_result, BaseException)
            assert list(batch_result) == baseline.tolist()

    def test_oracle_exception_resolves_the_future(self, fleet):
        """A worker-side error must propagate to the awaiting client with
        its original type, not hang the future."""
        with pytest.raises(ValueError, match="outside the vertex range"):
            fleet.distances([(0, 10**9)])
        with pytest.raises(ValueError):
            fleet.distance(0, 10**9)

    def test_shared_fate_does_not_poison_valid_scalars(self, fleet, fleet_index):
        """Scalars are validated eagerly, so an invalid request fails alone
        while concurrently coalesced valid scalars still answer."""

        async def mixed():
            good = fleet.server.distance(1, 20)
            with pytest.raises(ValueError):
                await fleet.server.distance(1, 10**9)
            return await good

        assert fleet._run(mixed()) == fleet_index.distance(1, 20)

    def test_shutdown_drains_in_flight_requests(self, fleet_layout, fleet_index, workload):
        """aclose() with requests in flight completes them before the
        workers exit - the drain-completes rule."""
        baseline = fleet_index.distances(workload)
        fleet = FleetOracle(fleet_layout, num_workers=2)
        try:

            async def inflight_then_close():
                server = fleet.server
                futures = [
                    asyncio.ensure_future(server.distances(workload)) for _ in range(4)
                ]
                scalar = asyncio.ensure_future(server.distance(5, 60))
                await asyncio.sleep(0)  # let every request enter the pipeline
                await server.aclose()
                answers = await asyncio.gather(*futures)
                return answers, await scalar

            answers, scalar = fleet._run(inflight_then_close())
            for batch in answers:
                assert batch.tolist() == baseline.tolist()
            assert scalar == fleet_index.distance(5, 60)
            with pytest.raises(RuntimeError, match="closed"):
                fleet.distance(0, 1)
        finally:
            fleet.close()


# --------------------------------------------------------------------- #
# TCP plane
# --------------------------------------------------------------------- #
def _tcp_endpoint(fleet):
    if fleet.server._tcp_server is None:
        return fleet.start_tcp()
    return fleet.server._tcp_server.sockets[0].getsockname()


class TestTcpPlane:
    def test_round_trip_and_error_propagation(self, fleet, fleet_index, workload):
        host, port = _tcp_endpoint(fleet)
        baseline = fleet_index.distances(workload)

        async def drive():
            async with await FleetClient.connect(host, port) as client:
                assert (await client.distances(workload)).tolist() == baseline.tolist()
                assert await client.distance(3, 77) == fleet_index.distance(3, 77)
                row = await client.one_to_many(2, [5, 6, 7])
                assert row.tolist() == fleet_index.one_to_many(2, [5, 6, 7]).tolist()
                matrix = await client.many_to_many([0, 1], [2, 3])
                assert matrix.tolist() == fleet_index.many_to_many([0, 1], [2, 3]).tolist()
                value, hubs = await client.distance_with_hub_count(3, 77)
                assert (value, hubs) == fleet_index.distance_with_hub_count(3, 77)
                # remote errors re-raise as their original builtin type
                with pytest.raises(ValueError, match="outside the vertex range"):
                    await client.distance(0, 10**9)
                stats = await client.stats()
                assert stats["num_workers"] == 2
                assert (await client.ping())["num_workers"] == 2

        fleet._run(drive())

    def test_concurrent_clients_coalesce(self, fleet, fleet_index):
        host, port = _tcp_endpoint(fleet)
        pairs = [(i, i + 30) for i in range(20)]
        expected = [fleet_index.distance(s, t) for s, t in pairs]

        async def drive():
            clients = [await FleetClient.connect(host, port) for _ in range(4)]
            try:
                before = fleet.stats()["coalesce_flushes"]
                values = await asyncio.gather(
                    *(
                        clients[i % len(clients)].distance(s, t)
                        for i, (s, t) in enumerate(pairs)
                    )
                )
                flushes = fleet.stats()["coalesce_flushes"] - before
                return values, flushes
            finally:
                for client in clients:
                    await client.aclose()

        values, flushes = fleet._run(drive())
        assert values == expected
        # 20 concurrent scalars must not take 20 separate batches
        assert flushes < len(pairs)


# --------------------------------------------------------------------- #
# wire protocol units
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_frame_round_trip(self):
        message = {"id": 7, "op": "distance", "s": 1, "t": 2, "x": math.inf}
        frame = encode_frame(message)

        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            from repro.serving.fleet.protocol import read_frame

            return await read_frame(reader)

        decoded = asyncio.run(decode())
        assert decoded == message
        assert decoded["x"] == math.inf  # Python's JSON dialect carries Infinity

    def test_mid_frame_eof_is_a_connection_error(self):
        frame = encode_frame({"id": 1})

        async def decode_truncated():
            reader = asyncio.StreamReader()
            reader.feed_data(frame[:-2])
            reader.feed_eof()
            from repro.serving.fleet.protocol import read_frame

            return await read_frame(reader)

        with pytest.raises(ConnectionError, match="mid-frame"):
            asyncio.run(decode_truncated())

    def test_oversized_frame_refused(self):
        import struct

        async def decode_huge():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", MAX_FRAME_BYTES + 1))
            from repro.serving.fleet.protocol import read_frame

            return await read_frame(reader)

        with pytest.raises(ValueError, match="byte limit"):
            asyncio.run(decode_huge())

    def test_builtin_errors_round_trip(self):
        error = wire_to_error(error_to_wire(ValueError("bad vertex")))
        assert type(error) is ValueError
        assert str(error) == "bad vertex"
        degraded = wire_to_error({"type": "SomeCustomError", "message": "x"})
        assert type(degraded) is RuntimeError
        assert "SomeCustomError" in str(degraded)


# --------------------------------------------------------------------- #
# front-door validation
# --------------------------------------------------------------------- #
class TestFrontDoorValidation:
    def test_invalid_parameters_rejected(self, fleet_layout):
        from repro.serving.fleet import FleetServer

        with pytest.raises(ValueError, match="window_seconds"):
            FleetServer(fleet_layout, window_seconds=-1.0)
        with pytest.raises(ValueError, match="window_seconds"):
            FleetServer(fleet_layout, window_seconds=math.inf)
        with pytest.raises(ValueError, match="max_batch"):
            FleetServer(fleet_layout, max_batch=0)
        with pytest.raises(ValueError, match="max_retries"):
            FleetServer(fleet_layout, max_retries=-1)
        with pytest.raises(ValueError, match="num_workers"):
            FleetServer(fleet_layout, num_workers=True)
        with pytest.raises(ValueError, match="exceeds num_shards"):
            FleetServer(fleet_layout, num_workers=9)
        with pytest.raises(ValueError, match="wire"):
            FleetServer(fleet_layout, wire="msgpack")
        with pytest.raises(ValueError, match="wire"):
            FleetServer(fleet_layout, wire=1)
        with pytest.raises(ValueError, match="shared_cache_slots"):
            FleetServer(fleet_layout, shared_cache_slots=-1)
        with pytest.raises(ValueError, match="shared_cache_slots"):
            FleetServer(fleet_layout, shared_cache_slots=True)
        with pytest.raises(ValueError, match="shared_cache_slots"):
            FleetServer(fleet_layout, shared_cache_slots="big")

    def test_client_wire_validated(self):
        with pytest.raises(ValueError, match="wire"):
            FleetClient(None, None, wire="carrier-pigeon")

    def test_not_started_refused(self, fleet_layout):
        from repro.serving.fleet import FleetServer

        server = FleetServer(fleet_layout)

        async def query_unstarted():
            await server.distance(0, 1)

        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(query_unstarted())


# --------------------------------------------------------------------- #
# deterministic mmap release (close() satellites)
# --------------------------------------------------------------------- #
class TestDeterministicRelease:
    def test_shard_router_close_releases_and_guards(self, fleet_layout, fleet_index):
        with ShardRouter(fleet_layout, preload=True) as router:
            shards = [s for s in router._shards if s is not None]
            assert len(shards) == router.num_shards
            values_maps = [s.values._mmap for s in shards if hasattr(s.values, "_mmap")]
            assert values_maps, "preloaded shards should be mmap-backed"
            assert router.distance(0, 10) == fleet_index.distance(0, 10)
        for mapping in values_maps:
            assert mapping.closed
        with pytest.raises(RuntimeError, match="closed"):
            router.distance(0, 10)
        with pytest.raises(RuntimeError, match="closed"):
            router.distances([(0, 10)])
        router.close()  # idempotent

    def test_mmap_index_close_releases_and_guards(self, fleet_index, tmp_path):
        path = tmp_path / "mono.npz"
        fleet_index.save(path)
        index = load_index_mmap(path)
        flat = index.flat_labelling()
        mapping = flat.values._mmap
        assert index.distance(0, 10) == fleet_index.distance(0, 10)
        with index:
            pass
        assert mapping.closed
        with pytest.raises(RuntimeError, match="closed"):
            index.distance(0, 10)
        with pytest.raises(RuntimeError, match="closed"):
            index.distance_with_hub_count(0, 10)
        index.close()  # idempotent

    def test_worker_recycle_reopens_cleanly(self, fleet, fleet_index, workload):
        """Restarted workers (which close their router on shutdown) keep
        serving the same layout bit-identically."""
        baseline = fleet_index.distances(workload)
        fleet.kill_worker(1)
        assert fleet.distances(workload).tolist() == baseline.tolist()


# --------------------------------------------------------------------- #
# wire negotiation and the shared cross-worker cache
# --------------------------------------------------------------------- #
class TestWireAndSharedCache:
    def test_json_wire_server_answers_binary_clients_in_json(
        self, fleet_layout, fleet_index, workload
    ):
        """The negotiated fallback: a ``wire="json"`` server answers a
        binary request with a JSON frame, and the binary client resolves
        it to the same float64 arrays - callers cannot tell."""
        baseline = fleet_index.distances(workload)
        with FleetOracle(fleet_layout, num_workers=2, wire="json") as fleet:
            assert fleet.wire == "json"
            host, port = fleet.start_tcp()

            async def drive():
                async with await FleetClient.connect(host, port, wire="binary") as client:
                    batch = await client.distances(workload)
                    assert batch.dtype == np.float64
                    assert batch.tolist() == baseline.tolist()
                    matrix = await client.many_to_many([0, 5], [9, 11, 13])
                    assert (
                        matrix.tolist()
                        == fleet_index.many_to_many([0, 5], [9, 11, 13]).tolist()
                    )

            fleet._run(drive())

    def test_stats_report_wire_and_shared_cache(self, fleet_layout, workload):
        with FleetOracle(
            fleet_layout, num_workers=2, shared_cache_slots=256
        ) as fleet:
            fleet.distances(workload)
            fleet.distances(workload)  # the repeat hits the shared cache
            stats = fleet.stats()
            assert stats["wire"] == "binary"
            cache = stats["shared_cache"]
            assert cache["enabled"] is True
            assert cache["slots"] == 256
            assert cache["hits"] > 0
            assert cache["fills"] > 0
            assert 0.0 < cache["hit_rate"] <= 1.0
            # per-worker rows carry their own cache section
            per_worker = [row["shared_cache"] for row in stats["workers"]]
            assert sum(row["hits"] for row in per_worker) == cache["hits"]
            fleet.reset_stats()
            assert fleet.stats()["shared_cache"]["hits"] == 0

    def test_stats_without_cache_say_disabled(self, fleet):
        stats = fleet.stats()
        assert stats["shared_cache"] == {"enabled": False}
        assert "shared_cache" not in stats["workers"][0]

    def test_cache_hits_stay_bit_identical(self, fleet_layout, fleet_index, workload):
        """Cold pass fills, warm pass hits - both must equal the engine
        exactly, including INF handling through the shared segment."""
        with FleetOracle(
            fleet_layout, num_workers=2, shared_cache_slots=4096
        ) as fleet:
            baseline = fleet_index.distances(workload)
            assert fleet.distances(workload).tolist() == baseline.tolist()
            assert fleet.distances(workload).tolist() == baseline.tolist()
            assert fleet.stats()["shared_cache"]["hits"] >= len(workload)

    def test_worker_crash_with_cache_enabled_stays_identical(
        self, fleet_layout, fleet_index, workload
    ):
        """A worker killed while the shared cache is live must not wedge
        the segment: the restarted worker re-attaches and answers stay
        bit-identical (a mid-write death at worst costs a slot)."""
        baseline = fleet_index.distances(workload)
        with FleetOracle(
            fleet_layout, num_workers=2, shared_cache_slots=1024
        ) as fleet:
            assert fleet.distances(workload).tolist() == baseline.tolist()
            fleet.kill_worker(0)
            assert fleet.distances(workload).tolist() == baseline.tolist()
            fleet.kill_worker(1)
            assert fleet.distances(workload).tolist() == baseline.tolist()
            assert fleet.stats()["restarts"] >= 2

    def test_cache_segment_unlinked_on_close(self, fleet_layout):
        fleet = FleetOracle(fleet_layout, num_workers=2, shared_cache_slots=64)
        name = fleet.server.shared_cache.name
        fleet.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# --------------------------------------------------------------------- #
# codec failure paths (pipe + TCP reply encoding)
# --------------------------------------------------------------------- #
class TestCodecFailurePaths:
    """A codec error must fail exactly one request - never a hung future,
    a dead dispatcher thread, or a spurious worker restart."""

    def test_dispatcher_survives_pipe_encode_error(
        self, fleet, fleet_index, workload, monkeypatch
    ):
        """A request over the pipe frame cap resolves with ValueError and
        the dispatcher keeps serving on the same worker (no restart)."""
        from repro.serving.fleet import protocol as protocol_module

        baseline = fleet_index.distances(workload)
        restarts_before = fleet.stats()["restarts"]
        monkeypatch.setattr(protocol_module, "MAX_FRAME_BYTES", 256)
        big = np.zeros((1024, 2), dtype=np.int64)  # encodes to 16KB > 256

        async def submit_big():
            return await fleet.server.pool.submit(
                0, {"op": "distances", "pairs": big}
            )

        with pytest.raises(ValueError, match="byte limit"):
            fleet._run(submit_big())
        monkeypatch.undo()
        # the same dispatcher thread still answers, and nothing restarted
        assert fleet.distances(workload).tolist() == baseline.tolist()
        assert fleet.stats()["restarts"] == restarts_before

    def test_worker_reply_encode_error_answers_not_dies(
        self, fleet_layout, monkeypatch
    ):
        """A worker whose *reply* breaks the codec ships the error back
        instead of dying (runs worker_main in-process on a fake pipe)."""
        from repro.serving.fleet import protocol as protocol_module
        from repro.serving.fleet.worker import worker_main

        pairs = np.zeros((64, 2), dtype=np.int64)
        request = protocol_module.encode_pipe_message(
            {"op": "distances", "pairs": pairs}
        )

        class FakeConn:
            def __init__(self, requests):
                self.requests = list(requests)
                self.sent = []

            def recv_bytes(self):
                if self.requests:
                    return self.requests.pop(0)
                raise EOFError

            def send_bytes(self, data):
                self.sent.append(data)

            def close(self):
                pass

        conn = FakeConn([request, protocol_module.encode_pipe_message({"op": "ping"})])
        # the request above was encoded under the real cap; the 512-byte
        # ndarray reply now exceeds the shrunken one
        monkeypatch.setattr(protocol_module, "MAX_FRAME_BYTES", 128)
        worker_main(str(fleet_layout), 0, conn, owned_shards=[0])
        monkeypatch.undo()
        assert len(conn.sent) == 2
        reply = protocol_module.decode_pipe_message(conn.sent[0])
        assert reply["ok"] is False
        assert isinstance(reply["error"], ValueError)
        assert "byte limit" in str(reply["error"])
        # the worker survived the failed reply and served the next request
        follow_up = protocol_module.decode_pipe_message(conn.sent[1])
        assert follow_up["ok"] is True

    def test_large_batches_chunk_under_the_pipe_cap(
        self, fleet, fleet_index, workload, monkeypatch
    ):
        """Batches above the per-message pair budget split into pipe-sized
        chunks and reassemble bit-identically (so a many_to_many grid over
        the frame cap degrades to extra round trips, not an error)."""
        from repro.serving.fleet import frontdoor as frontdoor_module

        monkeypatch.setattr(frontdoor_module, "_PIPE_PAIR_CHUNK", 7)
        baseline = fleet_index.distances(workload)
        assert fleet.distances(workload).tolist() == baseline.tolist()
        matrix = fleet.many_to_many(range(9), range(11))
        assert matrix.tolist() == fleet_index.many_to_many(
            range(9), range(11)
        ).tolist()

    def test_binary_reply_encode_failure_answers_json_error(
        self, fleet, fleet_index, monkeypatch
    ):
        """When the binary ok-reply cannot be encoded (e.g. over the frame
        cap) the client gets a JSON error frame, not a hung future, and
        the connection keeps serving."""
        from repro.serving.fleet import frontdoor as frontdoor_module

        host, port = _tcp_endpoint(fleet)

        def refuse_encode(*args, **kwargs):
            raise ValueError("synthetic: reply over the frame byte limit")

        async def drive():
            async with await FleetClient.connect(host, port, wire="binary") as client:
                monkeypatch.setattr(
                    frontdoor_module, "encode_binary_frame", refuse_encode
                )
                try:
                    with pytest.raises(ValueError, match="byte limit"):
                        await client.distances([(0, 10)])
                finally:
                    monkeypatch.undo()
                # same connection, reply encoding healthy again
                value = await client.distances([(0, 10)])
                assert value.tolist() == [fleet_index.distance(0, 10)]

        fleet._run(drive())

    def test_json_reply_encode_failure_answers_json_error(
        self, fleet, fleet_index, monkeypatch
    ):
        """Same contract on the JSON path: an ok-reply that fails to
        encode becomes an error frame for that request id."""
        from repro.serving.fleet import frontdoor as frontdoor_module

        host, port = _tcp_endpoint(fleet)
        real_encode = frontdoor_module.encode_frame

        def refuse_ok_replies(message):
            if message.get("ok") is True:
                raise ValueError("synthetic: reply over the frame byte limit")
            return real_encode(message)

        async def drive():
            async with await FleetClient.connect(host, port, wire="json") as client:
                monkeypatch.setattr(
                    frontdoor_module, "encode_frame", refuse_ok_replies
                )
                try:
                    with pytest.raises(ValueError, match="byte limit"):
                        await client.distances([(0, 10)])
                finally:
                    monkeypatch.undo()
                value = await client.distances([(0, 10)])
                assert value.tolist() == [fleet_index.distance(0, 10)]

        fleet._run(drive())
