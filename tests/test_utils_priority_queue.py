"""Unit tests for the priority queue utilities."""

from __future__ import annotations

import pytest

from repro.utils.priority_queue import AddressablePriorityQueue, BucketQueue


class TestAddressablePriorityQueue:
    def test_empty_queue_is_falsy(self):
        queue = AddressablePriorityQueue()
        assert not queue
        assert len(queue) == 0

    def test_pop_returns_minimum(self):
        queue = AddressablePriorityQueue()
        queue.push("a", 3.0)
        queue.push("b", 1.0)
        queue.push("c", 2.0)
        assert queue.pop() == ("b", 1.0)
        assert queue.pop() == ("c", 2.0)
        assert queue.pop() == ("a", 3.0)

    def test_push_updates_priority(self):
        queue = AddressablePriorityQueue()
        queue.push("a", 5.0)
        queue.push("a", 1.0)
        assert len(queue) == 1
        assert queue.pop() == ("a", 1.0)
        assert not queue

    def test_priority_can_increase(self):
        queue = AddressablePriorityQueue()
        queue.push("a", 1.0)
        queue.push("b", 2.0)
        queue.push("a", 3.0)
        assert queue.pop() == ("b", 2.0)
        assert queue.pop() == ("a", 3.0)

    def test_peek_does_not_remove(self):
        queue = AddressablePriorityQueue()
        queue.push("x", 4.0)
        assert queue.peek() == ("x", 4.0)
        assert len(queue) == 1

    def test_contains_and_priority_lookup(self):
        queue = AddressablePriorityQueue()
        queue.push(7, 0.5)
        assert 7 in queue
        assert 8 not in queue
        assert queue.priority(7) == 0.5

    def test_remove(self):
        queue = AddressablePriorityQueue()
        queue.push("a", 1.0)
        queue.push("b", 2.0)
        queue.remove("a")
        assert "a" not in queue
        assert queue.pop() == ("b", 2.0)

    def test_pop_empty_raises(self):
        queue = AddressablePriorityQueue()
        with pytest.raises(KeyError):
            queue.pop()

    def test_peek_empty_raises(self):
        queue = AddressablePriorityQueue()
        with pytest.raises(KeyError):
            queue.peek()

    def test_ties_broken_by_insertion_order(self):
        queue = AddressablePriorityQueue()
        queue.push("first", 1.0)
        queue.push("second", 1.0)
        assert queue.pop()[0] == "first"
        assert queue.pop()[0] == "second"

    def test_items_iteration(self):
        queue = AddressablePriorityQueue()
        queue.push("a", 1.0)
        queue.push("b", 2.0)
        assert dict(queue.items()) == {"a": 1.0, "b": 2.0}


class TestBucketQueue:
    def test_pop_minimum_bucket(self):
        queue = BucketQueue()
        queue.push("a", 3)
        queue.push("b", 1)
        assert queue.pop() == ("b", 1)
        assert queue.pop() == ("a", 3)

    def test_update_priority(self):
        queue = BucketQueue()
        queue.push("a", 5)
        queue.push("a", 2)
        assert len(queue) == 1
        assert queue.pop() == ("a", 2)

    def test_pop_empty_raises(self):
        queue = BucketQueue()
        with pytest.raises(KeyError):
            queue.pop()

    def test_monotone_pops_after_min_bucket_drains(self):
        queue = BucketQueue()
        for item, priority in [("a", 0), ("b", 0), ("c", 4), ("d", 2)]:
            queue.push(item, priority)
        popped = [queue.pop() for _ in range(4)]
        assert [p for _, p in popped] == [0, 0, 2, 4]
