"""Differential fuzzing: every serving path against a Dijkstra reference.

Seeded random graphs - including caterpillar and tree-heavy topologies
whose degree-one contraction forces the same-attachment-tree resolve path
that the conformance suites never exercise - are checked oracle-vs-
Dijkstra across

* the monolithic :class:`HC2LIndex` (scalar and batch),
* a two-shard :class:`~repro.serving.shards.ShardRouter` over the sharded
  on-disk layout, and
* an index reloaded with memory-mapped label buffers.

All weights are small integers, so every path sum is exactly
representable in float64 and the comparisons can assert ``==`` (true
bit-identity), not ``approx`` - a silently wrong answer on a tree-heavy
batch cannot hide behind a tolerance.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Tuple

import numpy as np
import pytest

from repro.core.index import HC2LIndex
from repro.graph.builders import caterpillar_graph, graph_from_edges
from repro.graph.graph import Graph
from repro.graph.search import dijkstra
from repro.serving import ShardRouter

INF = float("inf")


# --------------------------------------------------------------------- #
# seeded graph generators (integer weights => exact float64 arithmetic)
# --------------------------------------------------------------------- #
def _random_tree(rng: random.Random, n: int) -> List[Tuple[int, int, float]]:
    return [(rng.randrange(v), v, float(rng.randrange(1, 16))) for v in range(1, n)]


def _fuzz_graph(case: str, seed: int) -> Graph:
    """One deterministic fuzz graph per (case, seed)."""
    # zlib.crc32 is stable across processes (str.hash is salted)
    rng = random.Random(zlib.crc32(case.encode()) * 10_007 + seed)
    if case == "caterpillar":
        # a pure tree: the whole component contracts into one attachment
        # tree, so EVERY off-diagonal pair takes the same-root path
        spine = rng.randrange(6, 14)
        legs = rng.randrange(1, 4)
        return caterpillar_graph(spine, legs, weight=float(rng.randrange(1, 9)))
    if case == "caterpillar_with_core":
        # caterpillar + a chord closing a cycle: part of the spine
        # survives as core, the fringe hangs off it in attachment trees
        spine = rng.randrange(8, 16)
        legs = rng.randrange(1, 4)
        graph = caterpillar_graph(spine, legs, weight=float(rng.randrange(1, 9)))
        graph.add_edge(0, spine - 1, float(rng.randrange(1, 16)))
        graph.add_edge(0, spine // 2, float(rng.randrange(1, 16)))
        return graph
    if case == "random_tree":
        n = rng.randrange(20, 70)
        return graph_from_edges(_random_tree(rng, n), num_vertices=n)
    if case == "tree_heavy":
        # spanning tree plus very few extra edges: a small core with
        # large attachment trees hanging off it
        n = rng.randrange(30, 90)
        edges = _random_tree(rng, n)
        for _ in range(rng.randrange(1, 4)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v, float(rng.randrange(1, 16))))
        return graph_from_edges(edges, num_vertices=n)
    if case == "sparse":
        n = rng.randrange(25, 80)
        edges = _random_tree(rng, n)
        for _ in range(n):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v, float(rng.randrange(1, 16))))
        return graph_from_edges(edges, num_vertices=n)
    if case == "disconnected":
        # two tree-heavy components + an isolated vertex; cross pairs are inf
        rng_a, rng_b = random.Random(seed * 3 + 1), random.Random(seed * 3 + 2)
        n_a, n_b = rng_a.randrange(10, 30), rng_b.randrange(10, 30)
        edges = _random_tree(rng_a, n_a)
        edges += [(u + n_a, v + n_a, w) for u, v, w in _random_tree(rng_b, n_b)]
        return graph_from_edges(edges, num_vertices=n_a + n_b + 1)
    raise AssertionError(f"unknown fuzz case {case!r}")


def _query_pairs(graph: Graph, index: HC2LIndex, seed: int) -> List[Tuple[int, int]]:
    """Random pairs plus every same-attachment-tree pair (the hot path under test)."""
    rng = random.Random(seed)
    n = graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(120)]
    pairs += [(v, v) for v in range(0, n, max(1, n // 7))]
    root = index.contraction.root
    same_root = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if root[u] == root[v]
    ]
    rng.shuffle(same_root)
    return pairs + same_root[:400]


def _reference(graph: Graph, pairs: List[Tuple[int, int]]) -> List[float]:
    rows = {}
    out = []
    for s, t in pairs:
        if s not in rows:
            rows[s] = dijkstra(graph, s)
        out.append(rows[s][t])
    return out


FUZZ_CASES = [
    "caterpillar",
    "caterpillar_with_core",
    "random_tree",
    "tree_heavy",
    "sparse",
    "disconnected",
]


@pytest.mark.parametrize("case", FUZZ_CASES)
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestDifferentialFuzz:
    def test_engine_scalar_batch_and_dijkstra_agree(self, case, seed):
        graph = _fuzz_graph(case, seed)
        index = HC2LIndex.build(graph, leaf_size=4)
        pairs = _query_pairs(graph, index, seed)
        reference = _reference(graph, pairs)

        batch = index.distances(pairs)
        # scalar vs batch: bit-identical, no tolerance
        for (s, t), value in zip(pairs, batch.tolist()):
            assert index.distance(s, t) == value
        # oracle vs Dijkstra: integer weights make path sums exact
        assert batch.tolist() == reference

    def test_shard_router_matches_engine(self, case, seed, tmp_path):
        graph = _fuzz_graph(case, seed)
        index = HC2LIndex.build(graph, leaf_size=4)
        pairs = _query_pairs(graph, index, seed)
        expected = index.distances(pairs)

        path = tmp_path / "fuzz.npz"
        index.save_sharded(path, num_shards=2)
        router = ShardRouter(path)
        got = router.distances(pairs)
        assert got.tolist() == expected.tolist()
        # the router's scalar path goes through the same contraction
        # resolution; spot-check it stays bit-identical too
        for s, t in pairs[:40]:
            assert router.distance(s, t) == index.distance(s, t)

    def test_mmap_loaded_index_matches_engine(self, case, seed, tmp_path):
        graph = _fuzz_graph(case, seed)
        index = HC2LIndex.build(graph, leaf_size=4)
        pairs = _query_pairs(graph, index, seed)
        expected = index.distances(pairs)

        path = tmp_path / "fuzz-mono.npz"
        index.save(path)
        loaded = HC2LIndex.load(path, mmap_labels=True)
        got = loaded.distances(pairs)
        assert got.tolist() == expected.tolist()
        assert isinstance(got, np.ndarray) and got.dtype == np.float64


@pytest.mark.parametrize("case", FUZZ_CASES)
class TestFlowMethodFuzz:
    """Every max-flow solver builds bit-identical labels, end to end.

    The canonical minimum cuts are unique across all maximum flows, so
    swapping the solver behind the balanced cuts must never change a
    single label - across caterpillar, tree-heavy, sparse and
    disconnected topologies, not just the conformance graphs.
    """

    def test_flow_methods_build_identical_labels(self, case):
        from repro.core.construction import HC2LBuilder
        from repro.core.flat import FlatLabelling
        from repro.flow.vertex_cut import FLOW_METHODS

        graph = _fuzz_graph(case, seed=1)
        reference = None
        for method in FLOW_METHODS:
            _, labelling, _ = HC2LBuilder(leaf_size=4, flow_method=method).build(graph)
            flat = FlatLabelling.from_labelling(labelling)
            if reference is None:
                reference = flat
            else:
                assert flat == reference, f"flow_method={method!r} changed the labels"


@pytest.mark.parametrize("case", FUZZ_CASES)
@pytest.mark.parametrize("seed", [0, 2])
class TestDialBackendFuzz:
    """Dial bucket-queue construction against the heap reference.

    All fuzz weights are small integers, so every snapshot is
    Dial-eligible and the comparisons assert ``==`` - the bucket queue
    must reproduce the heap Dijkstra bit for bit, at the label level and
    at the query level.
    """

    def test_dial_build_and_queries_match_heap(self, case, seed):
        graph = _fuzz_graph(case, seed)
        reference = HC2LIndex.build(graph, leaf_size=4, backend="heap")
        dial = HC2LIndex.build(graph, leaf_size=4, backend="dial")
        pairs = _query_pairs(graph, reference, seed)
        assert dial.distances(pairs).tolist() == reference.distances(pairs).tolist()
        # exact oracle equality too: integer weights make path sums exact
        assert dial.distances(pairs).tolist() == _reference(graph, pairs)


@pytest.mark.parametrize("case", FUZZ_CASES)
class TestProcessParallelFuzz:
    """Process-mode construction is bit-identical across graph families."""

    def test_process_build_matches_serial(self, case):
        from repro.core.construction import HC2LBuilder
        from repro.core.flat import FlatLabelling
        from repro.core.parallel import ParallelHC2LBuilder

        graph = _fuzz_graph(case, seed=0)
        _, reference, _ = HC2LBuilder(leaf_size=4).build(graph)
        reference_flat = FlatLabelling.from_labelling(reference)

        builder = ParallelHC2LBuilder(
            leaf_size=4, parallel_mode="process", num_workers=2, parallel_threshold=8
        )
        _, labelling, _ = builder.build(graph)
        if not isinstance(labelling, FlatLabelling):
            labelling = FlatLabelling.from_labelling(labelling)
        assert labelling == reference_flat
