"""Smoke tests: the examples run end-to-end on tiny generated graphs."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import ``examples/<name>.py`` as a throwaway module."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


@pytest.fixture()
def tiny_datasets(monkeypatch):
    """Shrink the synthetic dataset registry for the duration of a test."""
    from repro.experiments.datasets import clear_dataset_cache

    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.2")
    clear_dataset_cache()
    yield
    clear_dataset_cache()


def test_quickstart_runs(capsys):
    quickstart = load_example("quickstart")
    quickstart.main(num_vertices=120, num_queries=400)
    output = capsys.readouterr().out
    assert "Batch throughput" in output
    assert "one_to_many" in output


def test_compare_methods_runs(tiny_datasets, capsys):
    compare_methods = load_example("compare_methods")
    compare_methods.main("NY", num_pairs=40, methods=["HC2L", "BiDijkstra"])
    output = capsys.readouterr().out
    assert "Fastest query method" in output
    assert "Fastest batch method: HC2L" in output
