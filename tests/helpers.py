"""Shared helper functions for the test suite.

These used to live in ``tests/conftest.py`` and were imported with
``from conftest import ...``, which breaks as soon as pytest collects more
than one directory containing a ``conftest.py`` (the ``benchmarks/``
conftest shadows this one on ``sys.path``).  Plain helpers therefore live
in this explicitly importable module; only fixtures stay in the conftest.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.graph.graph import Graph
from repro.graph.search import dijkstra

INF = float("inf")


class ExactOracle:
    """Caches full Dijkstra distance arrays for exact comparisons."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self._cache: dict[int, list[float]] = {}

    def distance(self, s: int, t: int) -> float:
        if s not in self._cache:
            self._cache[s] = dijkstra(self.graph, s)
        return self._cache[s][t]


def assert_distance_equal(expected: float, actual: float, rel: float = 1e-6) -> None:
    """Distances match up to floating-point path-recombination noise."""
    if expected == INF or actual == INF:
        assert expected == actual, f"expected {expected}, got {actual}"
        return
    assert abs(expected - actual) <= rel * max(1.0, abs(expected)), (
        f"expected {expected}, got {actual}"
    )


def random_query_pairs(graph: Graph, count: int, seed: int = 0) -> List[Tuple[int, int]]:
    """Deterministic random query pairs (self-pairs allowed)."""
    rng = random.Random(seed)
    n = graph.num_vertices
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]
