"""DistanceOracle conformance: every method, scalar vs batch, bit-identical.

One shared fixture graph, eight oracles (HC2L plus the seven baselines),
and the same assertions for each: the batch methods must return exactly
(``==``, not ``approx``) what a caller-side scalar loop returns, typed as
``float64`` numpy arrays, with the protocol metadata present.  The
:class:`ShardRouter` gets the same treatment at 1, 2 and 3 shards,
asserted bit-identical to the monolithic engine.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.ch import ContractionHierarchy
from repro.baselines.dijkstra import BidirectionalDijkstra, DijkstraOracle
from repro.baselines.h2h import H2HIndex
from repro.baselines.hub_labelling import HubLabelling
from repro.baselines.phl import PrunedHighwayLabelling
from repro.baselines.pll import PrunedLandmarkLabelling
from repro.core.index import HC2LIndex
from repro.core.oracle import DistanceOracle
from repro.graph.generators import RoadNetworkSpec, synthetic_road_network
from repro.serving.shards import ShardRouter

from helpers import random_query_pairs

ORACLE_BUILDERS = {
    "HC2L": lambda graph: HC2LIndex.build(graph),
    "Dijkstra": lambda graph: DijkstraOracle.build(graph),
    "BiDijkstra": lambda graph: BidirectionalDijkstra.build(graph),
    "CH": lambda graph: ContractionHierarchy.build(graph),
    "PLL": lambda graph: PrunedLandmarkLabelling.build(graph),
    "HL": lambda graph: HubLabelling.build(graph),
    "PHL": lambda graph: PrunedHighwayLabelling.build(graph),
    "H2H": lambda graph: H2HIndex.build(graph),
}

ORACLE_NAMES = sorted(ORACLE_BUILDERS)


@pytest.fixture(scope="module")
def fixture_graph():
    """The shared conformance graph (small, so all eight builds stay fast)."""
    network = synthetic_road_network(
        RoadNetworkSpec("oracle-conformance", num_vertices=120, seed=23)
    )
    return network.distance_graph


@pytest.fixture(scope="module")
def oracles(fixture_graph):
    """All eight oracles built once on the shared fixture graph."""
    return {name: builder(fixture_graph) for name, builder in ORACLE_BUILDERS.items()}


@pytest.fixture(scope="module")
def conformance_pairs(fixture_graph):
    pairs = random_query_pairs(fixture_graph, 40, seed=77)
    # include self-pairs and repeated sources (the batch paths special-case both)
    pairs += [(0, 0), (5, 5), (3, 11), (3, 29), (3, 64)]
    return pairs


@pytest.mark.parametrize("name", ORACLE_NAMES)
class TestConformance:
    def test_satisfies_protocol(self, name, oracles):
        oracle = oracles[name]
        assert isinstance(oracle, DistanceOracle)
        assert isinstance(oracle.supports_batch, bool)
        assert oracle.index_size_bytes > 0
        assert oracle.construction_seconds >= 0.0

    def test_distances_bit_identical_to_scalar_loop(self, name, oracles, conformance_pairs):
        oracle = oracles[name]
        batch = oracle.distances(conformance_pairs)
        assert isinstance(batch, np.ndarray)
        assert batch.dtype == np.float64
        assert batch.shape == (len(conformance_pairs),)
        expected = [oracle.distance(s, t) for s, t in conformance_pairs]
        assert batch.tolist() == expected

    def test_one_to_many_bit_identical(self, name, oracles, fixture_graph):
        oracle = oracles[name]
        targets = list(range(0, fixture_graph.num_vertices, 7))
        row = oracle.one_to_many(4, targets)
        assert isinstance(row, np.ndarray)
        assert row.dtype == np.float64
        assert row.tolist() == [oracle.distance(4, t) for t in targets]

    def test_many_to_many_bit_identical(self, name, oracles):
        oracle = oracles[name]
        sources = [0, 9, 17]
        targets = [2, 9, 33, 71]
        matrix = oracle.many_to_many(sources, targets)
        assert matrix.shape == (len(sources), len(targets))
        for i, s in enumerate(sources):
            for j, t in enumerate(targets):
                assert matrix[i, j] == oracle.distance(s, t)

    def test_numpy_integer_inputs_accepted(self, name, oracles):
        oracle = oracles[name]
        pairs = np.asarray([(1, 8), (8, 1), (2, 2)], dtype=np.int64)
        assert oracle.distances(pairs).tolist() == [
            oracle.distance(1, 8),
            oracle.distance(8, 1),
            0.0,
        ]

    def test_empty_batch(self, name, oracles):
        oracle = oracles[name]
        result = oracle.distances([])
        assert isinstance(result, np.ndarray)
        assert result.shape == (0,)

    def test_float_vertex_ids_rejected(self, name, oracles):
        oracle = oracles[name]
        with pytest.raises(ValueError):
            oracle.distances([(0.5, 1.5)])

    def test_float_source_rejected_by_one_to_many(self, name, oracles):
        """int(2.7) must not silently answer from vertex 2."""
        oracle = oracles[name]
        with pytest.raises(ValueError):
            oracle.one_to_many(2.7, [0, 1, 3])

    def test_out_of_range_rejected(self, name, oracles, fixture_graph):
        oracle = oracles[name]
        n = fixture_graph.num_vertices
        with pytest.raises(ValueError):
            oracle.distances([(0, n)])
        with pytest.raises(ValueError):
            oracle.distance(0, n)

    def test_hub_count_distance_matches(self, name, oracles, conformance_pairs):
        oracle = oracles[name]
        for s, t in conformance_pairs[:10]:
            value, hubs = oracle.distance_with_hub_count(s, t)
            assert value == oracle.distance(s, t)
            assert hubs >= 0


@pytest.mark.parametrize("name", ORACLE_NAMES)
def test_disconnected_pairs_are_inf_in_batch(name, disconnected_graph):
    """Batch answers preserve inf for disconnected pairs on every oracle."""
    if name == "HC2L":
        oracle = HC2LIndex.build(disconnected_graph, leaf_size=2)
    else:
        oracle = ORACLE_BUILDERS[name](disconnected_graph)
    batch = oracle.distances([(0, 5), (4, 2), (0, 2)])
    assert math.isinf(batch[0])
    assert math.isinf(batch[1])
    assert batch[2] == oracle.distance(0, 2)


def test_batch_mixin_flags_loop_based_oracles(fixture_graph):
    """supports_batch distinguishes vectorised oracles from mixin loops."""
    assert HC2LIndex.build(fixture_graph).supports_batch
    assert DijkstraOracle.build(fixture_graph).supports_batch
    assert ContractionHierarchy.build(fixture_graph).supports_batch
    assert not BidirectionalDijkstra.build(fixture_graph).supports_batch
    assert not PrunedLandmarkLabelling.build(fixture_graph).supports_batch


def test_batch_mixin_rejects_malformed_pairs(fixture_graph):
    oracle = BidirectionalDijkstra.build(fixture_graph)
    with pytest.raises(ValueError):
        oracle.distances([(0, 1, 2)])


def test_index_size_matches_label_size(fixture_graph):
    """The protocol metadata mirrors the Table 2/4 size accounting."""
    for name in ORACLE_NAMES:
        oracle = ORACLE_BUILDERS[name](fixture_graph)
        assert oracle.index_size_bytes == oracle.label_size_bytes()


# --------------------------------------------------------------------- #
# ShardRouter conformance: bit-identical to the monolithic engine
# --------------------------------------------------------------------- #
SHARD_COUNTS = (1, 2, 3)


@pytest.fixture(scope="module")
def shard_routers(oracles, tmp_path_factory):
    """Routers over sharded layouts of the conformance index, per count."""
    index = oracles["HC2L"]
    routers = {}
    for count in SHARD_COUNTS:
        path = tmp_path_factory.mktemp(f"shards{count}") / "index.npz"
        index.save_sharded(path, num_shards=count)
        routers[count] = ShardRouter(path)
    return routers


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
class TestShardRouterConformance:
    def test_satisfies_protocol(self, num_shards, shard_routers):
        router = shard_routers[num_shards]
        assert isinstance(router, DistanceOracle)
        assert router.num_shards == num_shards
        assert router.supports_batch is True

    def test_metadata_matches_monolithic_index(self, num_shards, shard_routers, oracles):
        router = shard_routers[num_shards]
        index = oracles["HC2L"]
        assert router.index_size_bytes == index.index_size_bytes
        assert router.construction_seconds == index.construction_seconds

    def test_scalar_bit_identical_to_engine(self, num_shards, shard_routers, oracles, conformance_pairs):
        router = shard_routers[num_shards]
        index = oracles["HC2L"]
        for s, t in conformance_pairs:
            assert router.distance(s, t) == index.distance(s, t)

    def test_batch_bit_identical_to_engine(self, num_shards, shard_routers, oracles, conformance_pairs):
        router = shard_routers[num_shards]
        index = oracles["HC2L"]
        batch = router.distances(conformance_pairs)
        assert isinstance(batch, np.ndarray)
        assert batch.dtype == np.float64
        assert batch.tolist() == index.distances(conformance_pairs).tolist()
        if num_shards > 1:
            # the random workload must actually exercise the fan-out
            assert router.stats.cross_shard_pairs > 0

    def test_explicit_cross_shard_pairs(self, num_shards, shard_routers, oracles):
        """Pairs whose endpoints live in different shards, by construction."""
        router = shard_routers[num_shards]
        index = oracles["HC2L"]
        core_to_original = index.contraction.core_to_original
        edges = router.manifest["boundaries"]
        # one core vertex from each shard's range, mapped back to original ids
        picks = [core_to_original[lo] for lo in edges[:-1]]
        pairs = [(s, t) for s in picks for t in picks]
        assert router.distances(pairs).tolist() == index.distances(pairs).tolist()
        for s, t in pairs:
            assert router.distance(s, t) == index.distance(s, t)

    def test_one_to_many_bit_identical(self, num_shards, shard_routers, oracles, fixture_graph):
        router = shard_routers[num_shards]
        index = oracles["HC2L"]
        targets = list(range(0, fixture_graph.num_vertices, 3))
        assert router.one_to_many(4, targets).tolist() == index.one_to_many(4, targets).tolist()

    def test_many_to_many_bit_identical(self, num_shards, shard_routers, oracles):
        router = shard_routers[num_shards]
        index = oracles["HC2L"]
        sources = [0, 9, 17, 101]
        targets = [2, 9, 33, 71, 118]
        assert (
            router.many_to_many(sources, targets).tolist()
            == index.many_to_many(sources, targets).tolist()
        )

    def test_hub_counts_match(self, num_shards, shard_routers, oracles, conformance_pairs):
        router = shard_routers[num_shards]
        index = oracles["HC2L"]
        for s, t in conformance_pairs[:15]:
            assert router.distance_with_hub_count(s, t) == index.distance_with_hub_count(s, t)

    def test_rejects_bad_inputs_like_engine(self, num_shards, shard_routers, fixture_graph):
        router = shard_routers[num_shards]
        n = fixture_graph.num_vertices
        with pytest.raises(ValueError):
            router.distances([(0, n)])
        with pytest.raises(ValueError):
            router.distance(0, n)
        with pytest.raises(ValueError):
            router.distances([(0.5, 1.5)])
        assert router.distances([]).shape == (0,)


# --------------------------------------------------------------------- #
# Fleet conformance: a 2- and 3-worker fleet, bit-identical to the engine
# --------------------------------------------------------------------- #
FLEET_WORKER_COUNTS = (2, 3)


@pytest.fixture(scope="module")
def fleet_layout(oracles, tmp_path_factory):
    """One 4-shard hierarchy-aligned layout shared by every fleet size."""
    index = oracles["HC2L"]
    path = tmp_path_factory.mktemp("fleet") / "index.npz"
    index.save_sharded(path, num_shards=4, boundaries="hierarchy")
    return path


@pytest.fixture(scope="module", params=FLEET_WORKER_COUNTS)
def fleet(request, fleet_layout):
    """A started fleet per worker count (2 workers own 2 shards each;
    3 workers force an uneven 2+1+1 assignment).  The shared cross-worker
    cache is on, so every conformance assertion below also exercises the
    cached read path (hits must stay bit-identical to the engine)."""
    from repro.serving.fleet import FleetOracle

    oracle = FleetOracle(
        fleet_layout, num_workers=request.param, shared_cache_slots=512
    )
    yield oracle
    oracle.close()


class TestFleetConformance:
    def test_satisfies_protocol(self, fleet):
        assert isinstance(fleet, DistanceOracle)
        assert fleet.supports_batch is True

    def test_metadata_matches_monolithic_index(self, fleet, oracles):
        index = oracles["HC2L"]
        assert fleet.index_size_bytes == index.index_size_bytes
        assert fleet.construction_seconds == index.construction_seconds

    def test_scalar_bit_identical_to_engine(self, fleet, oracles, conformance_pairs):
        index = oracles["HC2L"]
        for s, t in conformance_pairs:
            assert fleet.distance(s, t) == index.distance(s, t)

    def test_batch_bit_identical_to_engine(self, fleet, oracles, conformance_pairs):
        index = oracles["HC2L"]
        batch = fleet.distances(conformance_pairs)
        assert isinstance(batch, np.ndarray)
        assert batch.dtype == np.float64
        assert batch.tolist() == index.distances(conformance_pairs).tolist()

    def test_explicit_cross_worker_batch(self, fleet, oracles):
        """A batch spread evenly across every worker's shards must take the
        split-and-gather path and still be bit-identical."""
        index = oracles["HC2L"]
        core_to_original = index.contraction.core_to_original
        # one original vertex per shard range; under the hierarchy layout
        # the boundary positions map through the DFS order
        order = index.hierarchy.subtree_ranges()
        position_to_core = {int(p): core for core, p in enumerate(order)}
        picks = [
            core_to_original[position_to_core[int(lo)]]
            for lo in fleet.server.manifest["boundaries"][:-1]
        ]
        pairs = [(s, t) for s in picks for t in picks]
        before = fleet.stats()["split_batches"]
        assert fleet.distances(pairs).tolist() == index.distances(pairs).tolist()
        assert fleet.stats()["split_batches"] == before + 1

    def test_one_to_many_bit_identical(self, fleet, oracles, fixture_graph):
        index = oracles["HC2L"]
        targets = list(range(0, fixture_graph.num_vertices, 3))
        assert fleet.one_to_many(4, targets).tolist() == index.one_to_many(4, targets).tolist()

    def test_many_to_many_bit_identical(self, fleet, oracles):
        index = oracles["HC2L"]
        sources = [0, 9, 17, 101]
        targets = [2, 9, 33, 71, 118]
        assert (
            fleet.many_to_many(sources, targets).tolist()
            == index.many_to_many(sources, targets).tolist()
        )

    def test_hub_counts_match(self, fleet, oracles, conformance_pairs):
        index = oracles["HC2L"]
        for s, t in conformance_pairs[:10]:
            assert fleet.distance_with_hub_count(s, t) == index.distance_with_hub_count(s, t)

    def test_rejects_bad_inputs_like_engine(self, fleet, fixture_graph):
        n = fixture_graph.num_vertices
        with pytest.raises(ValueError):
            fleet.distances([(0, n)])
        with pytest.raises(ValueError):
            fleet.distance(0, n)
        with pytest.raises(ValueError):
            fleet.distances([(0.5, 1.5)])
        assert fleet.distances([]).shape == (0,)

    def test_every_worker_answers(self, fleet):
        health = fleet.health()
        assert health["unhealthy"] == []
        assert sorted(health["healthy"]) == list(range(fleet.server.pool.num_workers))


class TestFleetWireConformance:
    """The TCP plane at both wire modes, bit-identical to the engine.

    The fleet fixture serves with ``wire="binary"`` (the default), so a
    binary client gets raw ndarray frames back while a JSON client keeps
    getting JSON - both against the same shared-cache-enabled fleet, and
    both must reproduce the engine exactly."""

    @pytest.mark.parametrize("wire", ["json", "binary"])
    def test_tcp_client_bit_identical(
        self, fleet, oracles, conformance_pairs, wire
    ):
        from repro.serving.fleet import FleetClient

        index = oracles["HC2L"]
        if fleet.server._tcp_server is None:
            host, port = fleet.start_tcp()
        else:
            host, port = fleet.server._tcp_server.sockets[0].getsockname()

        async def drive():
            async with await FleetClient.connect(host, port, wire=wire) as client:
                batch = await client.distances(conformance_pairs)
                assert batch.dtype == np.float64
                assert batch.tolist() == index.distances(conformance_pairs).tolist()
                row = await client.one_to_many(4, [0, 9, 33, 71])
                assert row.tolist() == index.one_to_many(4, [0, 9, 33, 71]).tolist()
                matrix = await client.many_to_many([0, 9, 17], [2, 9, 33, 71])
                assert matrix.shape == (3, 4)
                assert (
                    matrix.tolist()
                    == index.many_to_many([0, 9, 17], [2, 9, 33, 71]).tolist()
                )
                # errors stay JSON and re-raise properly in either mode
                with pytest.raises(ValueError, match="outside the vertex range"):
                    await client.distances([(0, 10**9)])

        fleet._run(drive())


def test_fleet_disconnected_pairs_are_inf(disconnected_graph, tmp_path):
    """INF answers survive the worker pipe and batch re-assembly."""
    from repro.serving.fleet import FleetOracle

    index = HC2LIndex.build(disconnected_graph, leaf_size=2)
    path = tmp_path / "disconnected.npz"
    index.save_sharded(path, num_shards=2)
    with FleetOracle(path, num_workers=2) as fleet:
        batch = fleet.distances([(0, 5), (4, 2), (0, 2)])
        assert math.isinf(batch[0])
        assert math.isinf(batch[1])
        assert batch[2] == index.distance(0, 2)
        assert math.isinf(fleet.distance(0, 5))


def test_dynamic_index_speaks_the_protocol(fixture_graph):
    """DynamicHC2LIndex flushes pending updates through the batch calls."""
    from repro.core.dynamic import DynamicHC2LIndex

    dynamic = DynamicHC2LIndex(fixture_graph)
    assert isinstance(dynamic, DistanceOracle)
    pairs = [(0, 10), (3, 40)]
    before = dynamic.distances(pairs).tolist()
    assert before == [dynamic.distance(s, t) for s, t in pairs]
