"""Every registered experiment method must build a working, exact index."""

from __future__ import annotations

import math

import pytest

from repro.experiments.methods import METHOD_BUILDERS
from repro.graph.search import dijkstra

from helpers import random_query_pairs


@pytest.mark.parametrize("method_name", sorted(METHOD_BUILDERS))
def test_every_registered_method_is_exact(method_name, small_graph, small_oracle):
    """Each harness method builds on the small network and answers exactly."""
    spec = METHOD_BUILDERS[method_name]
    index = spec.builder(small_graph)
    assert getattr(index, "construction_seconds", 0.0) >= 0.0
    assert index.label_size_bytes() > 0
    for s, t in random_query_pairs(small_graph, 25, seed=hash(method_name) % 1000):
        expected = small_oracle.distance(s, t)
        got = index.distance(s, t)
        if math.isinf(expected):
            assert math.isinf(got)
        else:
            assert got == pytest.approx(expected, rel=1e-6)


@pytest.mark.parametrize("method_name", ["HC2L", "H2H", "PHL", "HL"])
def test_table_methods_report_hub_counts(method_name, small_graph):
    """The Table 3 metric (hubs scanned) is available for every table method."""
    index = METHOD_BUILDERS[method_name].builder(small_graph)
    distance, hubs = index.distance_with_hub_count(0, small_graph.num_vertices - 1)
    assert hubs >= 0
    assert distance >= 0.0


def test_hc2l_spec_marks_lca_storage(small_graph):
    spec = METHOD_BUILDERS["HC2L"]
    assert spec.has_lca_storage
    index = spec.builder(small_graph)
    assert index.lca_storage_bytes() > 0


def test_bidijkstra_spec_has_no_lca_storage():
    assert not METHOD_BUILDERS["BiDijkstra"].has_lca_storage
