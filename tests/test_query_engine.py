"""QueryEngine: batched distances vs the per-pair path and a Dijkstra oracle."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.engine import QueryEngine, _bit_length
from repro.core.index import HC2LIndex
from repro.graph.builders import graph_from_edges, path_graph
from repro.graph.search import dijkstra

from helpers import assert_distance_equal, random_query_pairs


@pytest.fixture(scope="module")
def small_index(request):
    small_graph = request.getfixturevalue("small_graph")
    return HC2LIndex.build(small_graph)


class TestBatchVsScalar:
    def test_bit_identical_to_per_pair(self, small_graph, small_index, query_pairs_small):
        batch = small_index.distances(query_pairs_small)
        for (s, t), value in zip(query_pairs_small, batch.tolist()):
            assert small_index.distance(s, t) == value

    def test_matches_dijkstra_oracle(self, small_graph, small_index, small_oracle):
        pairs = random_query_pairs(small_graph, 120, seed=21)
        batch = small_index.distances(pairs)
        for (s, t), value in zip(pairs, batch.tolist()):
            assert_distance_equal(small_oracle.distance(s, t), value)

    def test_medium_network(self, medium_graph, medium_oracle, query_pairs_medium):
        index = HC2LIndex.build(medium_graph)
        batch = index.distances(query_pairs_medium)
        for (s, t), value in zip(query_pairs_medium, batch.tolist()):
            assert_distance_equal(medium_oracle.distance(s, t), value)

    def test_random_graphs_property(self):
        """Random graphs: batch answers equal per-pair Dijkstra answers."""
        rng = random.Random(77)
        for trial in range(4):
            n = rng.randrange(12, 50)
            edges = [(rng.randrange(v), v, rng.uniform(1.0, 9.0)) for v in range(1, n)]
            for _ in range(n):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    edges.append((u, v, rng.uniform(1.0, 9.0)))
            graph = graph_from_edges(edges, num_vertices=n)
            index = HC2LIndex.build(graph, leaf_size=4)
            pairs = random_query_pairs(graph, 40, seed=trial)
            batch = index.distances(pairs)
            for (s, t), value in zip(pairs, batch.tolist()):
                assert_distance_equal(dijkstra(graph, s)[t], value)


class TestSpecialCases:
    def test_self_pairs_are_zero(self, small_index):
        pairs = [(v, v) for v in range(0, small_index.graph.num_vertices, 7)]
        assert small_index.distances(pairs).tolist() == [0.0] * len(pairs)

    def test_disconnected_pairs_are_inf(self, disconnected_graph):
        index = HC2LIndex.build(disconnected_graph, leaf_size=2)
        batch = index.distances([(0, 5), (7, 0), (0, 2), (4, 6)])
        assert math.isinf(batch[0]) and math.isinf(batch[1])
        assert batch[2] == 3.0
        assert batch[3] == pytest.approx(1.0)

    def test_contracted_tree_pairs(self):
        # a path contracts heavily, exercising the same-attachment-root branch
        graph = path_graph(20, weight=1.5)
        index = HC2LIndex.build(graph, leaf_size=3)
        pairs = [(0, 19), (3, 3), (2, 9), (18, 1)]
        batch = index.distances(pairs)
        for (s, t), value in zip(pairs, batch.tolist()):
            assert index.distance(s, t) == value
            assert value == pytest.approx(abs(s - t) * 1.5)

    def test_empty_batch(self, small_index):
        assert small_index.distances([]).shape == (0,)

    def test_numpy_input(self, small_index, query_pairs_small):
        pairs = np.asarray(query_pairs_small, dtype=np.int64)
        assert small_index.distances(pairs).tolist() == small_index.distances(
            query_pairs_small
        ).tolist()

    def test_out_of_range_rejected(self, small_index):
        n = small_index.graph.num_vertices
        with pytest.raises(ValueError):
            small_index.distances([(0, n)])
        with pytest.raises(ValueError):
            small_index.distances([(-1, 0)])
        with pytest.raises(ValueError):
            small_index.distances([(0, 1, 2)])

    def test_non_integer_ids_rejected(self, small_index):
        # floats would silently truncate if cast; they must be refused like
        # the scalar path refuses them
        with pytest.raises(ValueError, match="integer"):
            small_index.distances([(0.7, 2)])
        with pytest.raises(ValueError, match="integer"):
            small_index.one_to_many(0, [1.5, 2])
        with pytest.raises(ValueError, match="integer"):
            small_index.many_to_many([0.5], [1])

    def test_batching_helpers_accept_numpy_inputs(self, small_index):
        from repro.applications.batching import batch_distances, one_to_many_distances

        pairs = np.asarray([(0, 5), (3, 9)], dtype=np.int64)
        assert batch_distances(small_index, pairs) == [
            small_index.distance(0, 5),
            small_index.distance(3, 9),
        ]
        targets = np.asarray([2, 4], dtype=np.int64)
        assert one_to_many_distances(small_index, 1, targets) == [
            small_index.distance(1, 2),
            small_index.distance(1, 4),
        ]

    def test_single_vertex_graph(self):
        from repro.graph.graph import Graph

        index = HC2LIndex.build(Graph(1))
        assert index.distances([(0, 0)]).tolist() == [0.0]


class TestOneToManyAndMatrix:
    def test_one_to_many_matches_distance(self, small_index):
        targets = list(range(0, small_index.graph.num_vertices, 3))
        result = small_index.one_to_many(5, targets)
        for t, value in zip(targets, result.tolist()):
            assert small_index.distance(5, t) == value

    def test_many_to_many_shape_and_values(self, small_index):
        sources = [0, 3, 11]
        targets = [2, 5, 8, 13]
        matrix = small_index.many_to_many(sources, targets)
        assert matrix.shape == (3, 4)
        for i, s in enumerate(sources):
            for j, t in enumerate(targets):
                assert matrix[i, j] == small_index.distance(s, t)
        assert np.array_equal(matrix, small_index.engine.many_to_many(sources, targets))


class TestEngineInternals:
    def test_bit_length_matches_python(self):
        values = [0, 1, 2, 3, 7, 8, 255, 256, 2**40, 2**62 - 1]
        expected = [v.bit_length() for v in values]
        assert _bit_length(np.asarray(values, dtype=np.int64)).tolist() == expected

    def test_lca_depths_match_hierarchy(self, medium_graph):
        index = HC2LIndex.build(medium_graph, contract=False)
        engine = index.engine
        rng = random.Random(5)
        n = medium_graph.num_vertices
        cs = np.asarray([rng.randrange(n) for _ in range(200)], dtype=np.int64)
        ct = np.asarray([rng.randrange(n) for _ in range(200)], dtype=np.int64)
        expected = [index.hierarchy.lca_depth(int(a), int(b)) for a, b in zip(cs, ct)]
        assert engine.resolver.lca_depths(cs, ct).tolist() == expected

    def test_engine_is_cached(self, small_index):
        assert small_index.engine is small_index.engine

    def test_from_index_builds_standalone_engine(self, small_graph, small_index):
        engine = QueryEngine.from_index(small_index)
        pairs = random_query_pairs(small_graph, 30, seed=2)
        assert engine.distances(pairs).tolist() == small_index.distances(pairs).tolist()
        assert engine.num_vertices == small_graph.num_vertices


def test_batch_is_faster_than_per_pair(medium_graph):
    """The acceptance bar: >= 3x on a 10k-pair workload, identical results."""
    import time

    index = HC2LIndex.build(medium_graph)
    pairs = random_query_pairs(medium_graph, 10_000, seed=99)

    # warm up (builds the cached engine outside the timed region)
    index.distances(pairs[:16])
    single = [index.distance(s, t) for s, t in pairs]
    assert single == index.distances(pairs).tolist()

    # best-of-3 per path to shrug off scheduler noise on loaded machines
    single_seconds = min(
        _timed(lambda: [index.distance(s, t) for s, t in pairs]) for _ in range(3)
    )
    batch_seconds = min(_timed(lambda: index.distances(pairs)) for _ in range(3))

    assert single_seconds >= 3.0 * batch_seconds, (
        f"batch path only {single_seconds / batch_seconds:.1f}x faster"
    )


def _timed(fn) -> float:
    import time

    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
