"""Tests for the parallel builder (HC2L_p) and dynamic weight updates."""

from __future__ import annotations

import random

import pytest

from repro.core.construction import HC2LBuilder
from repro.core.dynamic import DynamicHC2LIndex, relabel
from repro.core.index import HC2LIndex
from repro.core.parallel import ParallelHC2LBuilder
from repro.graph.search import dijkstra

from helpers import assert_distance_equal, random_query_pairs


class TestParallelBuilder:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ParallelHC2LBuilder(num_workers=0)

    def test_parallel_build_is_exact(self, medium_graph, medium_oracle, query_pairs_medium):
        index = HC2LIndex.build(medium_graph, num_workers=4)
        for s, t in query_pairs_medium:
            assert_distance_equal(medium_oracle.distance(s, t), index.distance(s, t))

    def test_parallel_matches_sequential_metrics(self, medium_graph):
        sequential = HC2LIndex.build(medium_graph)
        parallel = HC2LIndex.build(medium_graph, num_workers=4)
        # the two builders process the same cuts, so structural metrics match
        assert parallel.tree_height() == sequential.tree_height()
        assert parallel.max_cut_size() == sequential.max_cut_size()
        assert parallel.labelling.total_entries() == sequential.labelling.total_entries()

    def test_parallel_matches_sequential_answers(self, medium_graph):
        sequential = HC2LIndex.build(medium_graph)
        parallel = HC2LIndex.build(medium_graph, num_workers=3)
        for s, t in random_query_pairs(medium_graph, 60, seed=21):
            assert parallel.distance(s, t) == pytest.approx(sequential.distance(s, t))

    def test_two_workers_small_threshold(self, small_graph, small_oracle):
        builder = ParallelHC2LBuilder(num_workers=2, parallel_threshold=8)
        hierarchy, labelling, stats = builder.build(small_graph)
        assert hierarchy.check_vertex_assignment()
        assert stats.num_nodes == len(hierarchy.nodes)

    def test_empty_graph(self):
        from repro.graph.graph import Graph

        hierarchy, labelling, stats = ParallelHC2LBuilder(num_workers=2).build(Graph(0))
        assert stats.num_nodes == 0


class TestRelabel:
    def _reweighted(self, graph, factor: float, seed: int = 5):
        rng = random.Random(seed)
        updates = {}
        for u, v, w in graph.edges():
            if rng.random() < 0.3:
                updates[(u, v)] = w * factor * rng.uniform(0.5, 1.5)
        return graph.reweighted(updates)

    def test_relabel_matches_fresh_build(self, small_graph):
        index = HC2LIndex.build(small_graph)
        new_graph = self._reweighted(small_graph, 2.0)
        updated = relabel(index, new_graph)
        for s, t in random_query_pairs(small_graph, 60, seed=31):
            expected = dijkstra(new_graph, s)[t]
            assert_distance_equal(expected, updated.distance(s, t))

    def test_relabel_preserves_hierarchy_shape(self, small_graph):
        index = HC2LIndex.build(small_graph)
        new_graph = self._reweighted(small_graph, 0.5)
        updated = relabel(index, new_graph)
        assert updated.tree_height() == index.tree_height()
        assert len(updated.hierarchy.nodes) == len(index.hierarchy.nodes)
        # node membership (which vertices live in which node) is preserved
        assert [sorted(n.cut) for n in updated.hierarchy.nodes] == [
            sorted(n.cut) for n in index.hierarchy.nodes
        ]

    def test_relabel_rejects_topology_changes(self, small_graph):
        index = HC2LIndex.build(small_graph)
        changed = small_graph.copy()
        changed.add_vertex()
        with pytest.raises(ValueError):
            relabel(index, changed)

    def test_relabel_rejects_missing_edge(self, small_graph):
        index = HC2LIndex.build(small_graph)
        from repro.graph.graph import Graph

        other = Graph(small_graph.num_vertices)
        edges = list(small_graph.edges())
        for u, v, w in edges[:-1]:
            other.add_edge(u, v, w)
        other.add_edge(edges[-1][0], (edges[-1][1] + 1) % small_graph.num_vertices, 1.0)
        with pytest.raises(ValueError):
            relabel(index, other)


class TestDynamicIndex:
    def test_updates_are_lazy_and_correct(self, small_graph):
        dynamic = DynamicHC2LIndex(small_graph)
        u, v, w = next(iter(small_graph.edges()))
        baseline = dynamic.distance(u, v)
        assert baseline <= w + 1e-9

        dynamic.update_edge_weight(u, v, w * 10)
        assert dynamic.pending_updates() == 1
        updated_graph = small_graph.reweighted({(u, v): w * 10})
        expected = dijkstra(updated_graph, u)[v]
        assert dynamic.distance(u, v) == pytest.approx(expected, rel=1e-6)
        assert dynamic.pending_updates() == 0
        assert dynamic.relabel_count == 1

    def test_batched_updates_flush_once(self, small_graph):
        dynamic = DynamicHC2LIndex(small_graph)
        edges = list(small_graph.edges())[:5]
        for u, v, w in edges:
            dynamic.update_edge_weight(u, v, w * 3)
        assert dynamic.pending_updates() == 5
        dynamic.flush()
        assert dynamic.relabel_count == 1
        new_graph = small_graph.reweighted({(u, v): w * 3 for u, v, w in edges})
        for s, t in random_query_pairs(small_graph, 40, seed=13):
            assert_distance_equal(dijkstra(new_graph, s)[t], dynamic.distance(s, t))

    def test_update_unknown_edge_rejected(self, small_graph):
        dynamic = DynamicHC2LIndex(small_graph)
        with pytest.raises(KeyError):
            dynamic.update_edge_weight(0, 0, 1.0)

    def test_non_positive_weight_rejected(self, small_graph):
        dynamic = DynamicHC2LIndex(small_graph)
        u, v, _ = next(iter(small_graph.edges()))
        with pytest.raises(ValueError):
            dynamic.update_edge_weight(u, v, 0.0)

    def test_label_size_accessible(self, small_graph):
        dynamic = DynamicHC2LIndex(small_graph)
        assert dynamic.label_size_bytes() > 0
        assert dynamic.index.tree_height() >= 1


class TestDynamicBatchProtocol:
    """DynamicHC2LIndex under the batch DistanceOracle protocol.

    The relabelling pass swaps the whole underlying index; these tests pin
    that the *batch* entry points observe the refreshed labels (a stale
    engine would silently serve pre-update distances) and that the loud
    topology-change rejection survives the batch path.
    """

    def _updated(self, graph, factor: float = 4.0, count: int = 6):
        dynamic = DynamicHC2LIndex(graph)
        updates = {}
        for u, v, w in list(graph.edges())[:count]:
            dynamic.update_edge_weight(u, v, w * factor)
            updates[(u, v)] = w * factor
        return dynamic, graph.reweighted(updates)

    def test_relabel_then_distances_matches_fresh_build(self, small_graph):
        dynamic, new_graph = self._updated(small_graph)
        fresh = HC2LIndex.build(new_graph)
        pairs = random_query_pairs(small_graph, 80, seed=23)
        got = dynamic.distances(pairs)
        assert dynamic.pending_updates() == 0, "distances() must flush first"
        expected = fresh.distances(pairs)
        for (s, t), a, b in zip(pairs, got.tolist(), expected.tolist()):
            assert_distance_equal(b, a)
        # batch answers stay bit-identical to the dynamic index's own scalars
        for (s, t), value in zip(pairs, got.tolist()):
            assert dynamic.distance(s, t) == value

    def test_relabel_then_one_to_many_matches_fresh_build(self, small_graph):
        dynamic, new_graph = self._updated(small_graph, factor=0.25)
        fresh = HC2LIndex.build(new_graph)
        targets = list(range(0, small_graph.num_vertices, 3))
        got = dynamic.one_to_many(5, targets)
        expected = fresh.one_to_many(5, targets)
        for a, b in zip(got.tolist(), expected.tolist()):
            assert_distance_equal(b, a)
        matrix = dynamic.many_to_many([1, 5, 9], targets)
        expected_matrix = fresh.many_to_many([1, 5, 9], targets)
        assert matrix.shape == expected_matrix.shape
        for a, b in zip(matrix.ravel().tolist(), expected_matrix.ravel().tolist()):
            assert_distance_equal(b, a)

    def test_topology_rejection_stays_loud_under_batch_use(self, small_graph):
        dynamic = DynamicHC2LIndex(small_graph)
        pairs = random_query_pairs(small_graph, 10, seed=3)
        dynamic.distances(pairs)  # warm the engine through the batch path
        with pytest.raises(KeyError, match="topology changes require a rebuild"):
            dynamic.update_edge_weight(0, 0, 1.0)
        missing = next(
            (u, v)
            for u in range(small_graph.num_vertices)
            for v in range(u + 1, small_graph.num_vertices)
            if not small_graph.has_edge(u, v)
        )
        with pytest.raises(KeyError, match="topology changes require a rebuild"):
            dynamic.update_edge_weight(*missing, 2.0)
        # a buffered legal update still flushes on the next batch call
        u, v, w = next(iter(small_graph.edges()))
        dynamic.update_edge_weight(u, v, w * 2)
        assert dynamic.pending_updates() == 1
        dynamic.distances(pairs)
        assert dynamic.pending_updates() == 0
