"""Integration tests for HC2L construction and querying (the core deliverable)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.construction import HC2LBuilder
from repro.core.index import HC2LIndex, HC2LParameters
from repro.core.query import hub_vertices_for_query, min_plus_prefix
from repro.graph.builders import graph_from_edges, grid_graph, path_graph, star_graph
from repro.graph.graph import Graph

from helpers import assert_distance_equal, random_query_pairs

INF = float("inf")


class TestParameters:
    def test_defaults(self):
        params = HC2LParameters()
        assert params.beta == 0.2
        assert params.tail_pruning and params.contract

    @pytest.mark.parametrize("kwargs", [{"beta": 0.0}, {"beta": 0.9}, {"leaf_size": 0}, {"num_workers": -1}])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HC2LParameters(**kwargs)

    def test_build_rejects_mixed_parameter_styles(self, small_graph):
        with pytest.raises(ValueError):
            HC2LIndex.build(small_graph, HC2LParameters(), beta=0.3)

    def test_builder_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            HC2LBuilder(leaf_size=0)


class TestCorrectness:
    def test_exact_on_small_network(self, small_graph, small_oracle, query_pairs_small):
        index = HC2LIndex.build(small_graph)
        for s, t in query_pairs_small:
            assert_distance_equal(small_oracle.distance(s, t), index.distance(s, t))

    def test_exact_on_medium_network(self, medium_graph, medium_oracle, query_pairs_medium):
        index = HC2LIndex.build(medium_graph)
        for s, t in query_pairs_medium:
            assert_distance_equal(medium_oracle.distance(s, t), index.distance(s, t))

    def test_exact_on_uniform_grid(self, uniform_grid):
        from repro.graph.search import dijkstra

        index = HC2LIndex.build(uniform_grid)
        rng = random.Random(2)
        for _ in range(60):
            s = rng.randrange(uniform_grid.num_vertices)
            t = rng.randrange(uniform_grid.num_vertices)
            assert_distance_equal(dijkstra(uniform_grid, s)[t], index.distance(s, t))

    def test_exact_on_travel_time_weights(self, small_road_network):
        from repro.graph.search import dijkstra

        graph = small_road_network.travel_time_graph
        index = HC2LIndex.build(graph)
        rng = random.Random(4)
        for _ in range(60):
            s = rng.randrange(graph.num_vertices)
            t = rng.randrange(graph.num_vertices)
            assert_distance_equal(dijkstra(graph, s)[t], index.distance(s, t))

    def test_disconnected_pairs_are_infinite(self, disconnected_graph):
        index = HC2LIndex.build(disconnected_graph, leaf_size=2)
        assert math.isinf(index.distance(0, 5))
        assert math.isinf(index.distance(7, 0))
        assert index.distance(0, 2) == 3.0
        assert index.distance(4, 6) == pytest.approx(1.0)

    def test_self_queries_are_zero(self, small_graph):
        index = HC2LIndex.build(small_graph)
        for v in range(0, small_graph.num_vertices, 13):
            assert index.distance(v, v) == 0.0

    def test_symmetry(self, small_graph):
        index = HC2LIndex.build(small_graph)
        rng = random.Random(9)
        for _ in range(40):
            s = rng.randrange(small_graph.num_vertices)
            t = rng.randrange(small_graph.num_vertices)
            assert index.distance(s, t) == pytest.approx(index.distance(t, s))

    def test_out_of_range_vertices_rejected(self, small_graph):
        index = HC2LIndex.build(small_graph)
        with pytest.raises(ValueError):
            index.distance(-1, 0)
        with pytest.raises(ValueError):
            index.distance(0, small_graph.num_vertices)

    @pytest.mark.parametrize("beta", [0.15, 0.25, 0.35, 0.5])
    def test_exact_under_other_balance_parameters(self, small_graph, small_oracle, beta):
        index = HC2LIndex.build(small_graph, beta=beta)
        for s, t in random_query_pairs(small_graph, 50, seed=int(beta * 100)):
            assert_distance_equal(small_oracle.distance(s, t), index.distance(s, t))

    def test_exact_without_contraction(self, small_graph, small_oracle, query_pairs_small):
        index = HC2LIndex.build(small_graph, contract=False)
        for s, t in query_pairs_small:
            assert_distance_equal(small_oracle.distance(s, t), index.distance(s, t))

    def test_exact_without_tail_pruning(self, small_graph, small_oracle, query_pairs_small):
        index = HC2LIndex.build(small_graph, tail_pruning=False)
        for s, t in query_pairs_small:
            assert_distance_equal(small_oracle.distance(s, t), index.distance(s, t))

    def test_path_graph(self):
        graph = path_graph(40, weight=3.0)
        index = HC2LIndex.build(graph, leaf_size=4)
        assert index.distance(0, 39) == pytest.approx(39 * 3.0)
        assert index.distance(10, 20) == pytest.approx(30.0)

    def test_star_graph(self):
        index = HC2LIndex.build(star_graph(20), leaf_size=4)
        assert index.distance(3, 11) == 2.0
        assert index.distance(0, 5) == 1.0

    def test_single_vertex_and_empty_graphs(self):
        single = HC2LIndex.build(Graph(1))
        assert single.distance(0, 0) == 0.0
        empty = HC2LIndex.build(Graph(0))
        assert empty.tree_height() == 0

    def test_two_vertex_graph(self):
        graph = graph_from_edges([(0, 1, 4.2)])
        index = HC2LIndex.build(graph, leaf_size=1)
        assert index.distance(0, 1) == pytest.approx(4.2)


class TestTailPruningEffect:
    def test_tail_pruning_reduces_label_size(self, medium_graph):
        pruned = HC2LIndex.build(medium_graph, tail_pruning=True)
        naive = HC2LIndex.build(medium_graph, tail_pruning=False)
        assert pruned.labelling.total_entries() < naive.labelling.total_entries()

    def test_tail_pruning_keeps_answers(self, medium_graph, query_pairs_medium):
        pruned = HC2LIndex.build(medium_graph, tail_pruning=True)
        naive = HC2LIndex.build(medium_graph, tail_pruning=False)
        for s, t in query_pairs_medium:
            assert pruned.distance(s, t) == pytest.approx(naive.distance(s, t))


class TestContractionEffect:
    def test_contraction_reduces_core_size(self, small_graph):
        contracted = HC2LIndex.build(small_graph, contract=True)
        plain = HC2LIndex.build(small_graph, contract=False)
        assert contracted.contraction.core.num_vertices < plain.contraction.core.num_vertices
        assert plain.contraction_ratio() == 0.0
        assert contracted.contraction_ratio() > 0.0


class TestMetricsAndPersistence:
    def test_describe_contains_paper_metrics(self, small_graph):
        index = HC2LIndex.build(small_graph)
        summary = index.describe()
        for key in (
            "label_size_bytes",
            "lca_storage_bytes",
            "tree_height",
            "max_cut_size",
            "avg_cut_size",
            "construction_seconds",
            "contraction_ratio",
        ):
            assert key in summary

    def test_label_size_positive_and_consistent(self, small_graph):
        index = HC2LIndex.build(small_graph)
        assert index.label_size_bytes() > 0
        assert index.label_size_bytes() >= index.labelling.size_bytes()
        assert index.lca_storage_bytes() == 8 * index.contraction.core.num_vertices

    def test_distance_with_hub_count(self, small_graph, small_oracle):
        index = HC2LIndex.build(small_graph)
        rng = random.Random(1)
        total_hubs = 0
        for _ in range(30):
            s = rng.randrange(small_graph.num_vertices)
            t = rng.randrange(small_graph.num_vertices)
            distance, hubs = index.distance_with_hub_count(s, t)
            assert_distance_equal(small_oracle.distance(s, t), distance)
            assert hubs <= index.max_cut_size() + 1
            total_hubs += hubs
        assert total_hubs > 0

    def test_save_and_load_round_trip(self, small_graph, tmp_path):
        index = HC2LIndex.build(small_graph)
        path = tmp_path / "index.pickle"
        index.save(path)
        loaded = HC2LIndex.load(path)
        for s, t in random_query_pairs(small_graph, 25, seed=3):
            assert loaded.distance(s, t) == pytest.approx(index.distance(s, t))

    def test_load_rejects_wrong_payload(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pickle"
        with open(path, "wb") as handle:
            pickle.dump({"not": "an index"}, handle)
        # not an .npz archive: refused outright unless pickle is opted into
        with pytest.raises(ValueError):
            HC2LIndex.load(path)
        # with the explicit opt-in the pickle is read but fails the type check
        with pytest.raises(TypeError):
            HC2LIndex.load(path, allow_pickle=True)

    def test_construction_stats_populated(self, small_graph):
        index = HC2LIndex.build(small_graph)
        stats = index.stats.as_dict()
        assert stats["num_nodes"] >= 1
        assert stats["num_leaves"] >= 1
        assert stats["total_seconds"] >= 0.0


class TestQueryHelpers:
    def test_min_plus_prefix(self):
        assert min_plus_prefix([1.0, 5.0], [2.0, 1.0]) == (3.0, 2)
        assert min_plus_prefix([1.0, 5.0, 9.0], [2.0]) == (3.0, 1)
        assert min_plus_prefix([], [1.0]) == (INF, 0)

    def test_hub_vertices_for_query_belong_to_lca_cut(self, medium_graph):
        index = HC2LIndex.build(medium_graph, contract=False)
        hierarchy = index.hierarchy
        rng = random.Random(8)
        for _ in range(20):
            s = rng.randrange(medium_graph.num_vertices)
            t = rng.randrange(medium_graph.num_vertices)
            if s == t:
                continue
            hubs = hub_vertices_for_query(hierarchy, s, t)
            assert hubs == hierarchy.lca_node(s, t).cut


class TestGridStructure:
    def test_grid_cut_sizes_stay_small(self):
        graph, _ = grid_graph(16, 16, seed=6, weight_jitter=0.25)
        index = HC2LIndex.build(graph)
        # a 16x16 grid has vertex separators of at most ~17; the recursive
        # bisection should never need dramatically more
        assert index.max_cut_size() <= 24
        assert index.tree_height() <= 14
