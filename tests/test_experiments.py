"""Tests for the experiment harness (datasets, workloads, tables, figures)."""

from __future__ import annotations

import math

import pytest

from repro.experiments import report
from repro.experiments.datasets import (
    DATASET_NAMES,
    bench_dataset_names,
    clear_dataset_cache,
    dataset_summary,
    load_dataset,
)
from repro.experiments.evaluation import run_evaluation
from repro.experiments.figures import figure6, figure7
from repro.experiments.harness import measure_queries, run_cell
from repro.experiments.methods import METHOD_BUILDERS, available_methods
from repro.experiments.tables import table1, table2, table3, table5
from repro.experiments.workloads import distance_stratified_query_sets, random_pairs
from repro.graph.search import dijkstra

TINY = ["NY"]  # the smallest synthetic dataset keeps these tests quick


class TestDatasets:
    def test_all_names_resolve(self):
        assert len(DATASET_NAMES) == 10
        network = load_dataset("NY")
        assert network.distance_graph.num_vertices > 100

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("MARS")

    def test_datasets_are_cached(self):
        clear_dataset_cache()
        first = load_dataset("NY")
        second = load_dataset("NY")
        assert first is second

    def test_sizes_follow_paper_ordering(self):
        small = load_dataset("NY").distance_graph.num_vertices
        large = load_dataset("CAL").distance_graph.num_vertices
        assert small < large

    def test_env_subset_controls_bench_datasets(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "NY, BAY")
        assert bench_dataset_names() == ["NY", "BAY"]
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "NY, NOPE")
        with pytest.raises(ValueError):
            bench_dataset_names()

    def test_dataset_summary_rows(self):
        rows = dataset_summary(["NY", "BAY"])
        assert [row["dataset"] for row in rows] == ["NY", "BAY"]
        for row in rows:
            assert row["num_edges"] > row["num_vertices"] * 0.8
            assert row["diameter_estimate"] > 0
            assert row["memory_bytes"] > 0

    def test_dimacs_override(self, tmp_path, monkeypatch):
        from repro.graph.io import write_dimacs
        from repro.graph.builders import path_graph

        write_dimacs(path_graph(7), tmp_path / "NY.gr")
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        clear_dataset_cache()
        network = load_dataset("NY")
        assert network.distance_graph.num_vertices == 7
        monkeypatch.delenv("REPRO_DATA_DIR")
        clear_dataset_cache()


class TestWorkloads:
    def test_random_pairs_bounds_and_determinism(self, small_graph):
        pairs = random_pairs(small_graph, 50, seed=3)
        assert len(pairs) == 50
        assert all(0 <= s < small_graph.num_vertices and s != t for s, t in pairs)
        assert pairs == random_pairs(small_graph, 50, seed=3)

    def test_random_pairs_tiny_graph(self):
        from repro.graph.graph import Graph

        assert random_pairs(Graph(1), 5) == []

    def test_stratified_sets_respect_buckets(self, small_graph):
        workload = distance_stratified_query_sets(
            small_graph, num_sets=6, pairs_per_set=20, seed=5
        )
        assert len(workload.query_sets) == 6
        for index, pairs in enumerate(workload.query_sets):
            lower, upper = workload.bucket_bounds(index)
            for s, t in pairs:
                d = dijkstra(small_graph, s)[t]
                assert lower < d <= upper * (1 + 1e-9)

    def test_stratified_sets_nonempty_in_middle(self, medium_graph):
        workload = distance_stratified_query_sets(
            medium_graph, num_sets=10, pairs_per_set=15, seed=7
        )
        filled = sum(1 for pairs in workload.query_sets if pairs)
        assert filled >= 6  # extreme buckets may stay short on small graphs

    def test_stratified_sets_empty_graph(self):
        from repro.graph.graph import Graph

        workload = distance_stratified_query_sets(Graph(3), num_sets=4, pairs_per_set=5)
        assert all(not pairs for pairs in workload.query_sets)


class TestHarness:
    def test_available_methods_validation(self):
        specs = available_methods(["HC2L", "HL"])
        assert [s.name for s in specs] == ["HC2L", "HL"]
        with pytest.raises(KeyError):
            available_methods(["HC2L", "NOPE"])
        assert set(METHOD_BUILDERS) >= {"HC2L", "HC2L_p", "H2H", "PHL", "HL", "PLL", "BiDijkstra"}

    def test_run_cell_records_metrics(self, small_graph):
        spec = METHOD_BUILDERS["HC2L"]
        pairs = random_pairs(small_graph, 100, seed=1)
        cell = run_cell(spec, small_graph, pairs, dataset_name="unit")
        assert cell.method == "HC2L"
        assert cell.dataset == "unit"
        assert cell.construction_seconds > 0
        assert cell.label_size_bytes > 0
        assert cell.query_microseconds > 0
        assert cell.average_hubs > 0
        assert cell.lca_storage_bytes is not None
        row = cell.as_dict()
        assert "query_microseconds" in row and "tree_height" in row

    def test_measure_queries_empty(self, small_graph):
        from repro.core.index import HC2LIndex

        index = HC2LIndex.build(small_graph)
        assert measure_queries(index, []) == (0.0, 0.0)

    def test_run_evaluation_shapes(self):
        evaluation = run_evaluation(
            datasets=TINY, methods=["HC2L", "HL"], num_queries=150, keep_indexes=True
        )
        assert set(evaluation.cells) == {("NY", "HC2L"), ("NY", "HL")}
        assert ("NY", "HC2L") in evaluation.indexes
        assert evaluation.rows()


class TestTablesAndFigures:
    def test_table1_contains_requested_datasets(self):
        rows = table1(["NY", "BAY"])
        assert [row["dataset"] for row in rows] == ["NY", "BAY"]

    def test_table2_and_table3_shapes(self):
        evaluation = run_evaluation(
            datasets=TINY,
            methods=["HC2L", "HC2L_p", "H2H", "PHL", "HL"],
            num_queries=150,
        )
        rows2 = table2(evaluation=evaluation)
        assert len(rows2) == 1
        row = rows2[0]
        for method in ("HC2L", "H2H", "PHL", "HL"):
            assert f"query_us_{method}" in row
            assert f"label_bytes_{method}" in row
        assert "construction_s_HC2L_p" in row

        rows3 = table3(datasets=TINY, num_queries=100)
        assert "ahs_HC2L" in rows3[0] and "lca_bytes_H2H" in rows3[0]

    def test_table5_shape_and_ordering(self):
        rows = table5(datasets=TINY)
        row = rows[0]
        assert row["height_HC2L"] < row["height_H2H"]
        assert row["max_cut_HC2L"] > 0 and row["width_H2H"] > 0

    def test_figure6_series_lengths(self):
        result = figure6(datasets=TINY, methods=["HC2L", "HL"], pairs_per_set=20, num_sets=5)
        assert result.datasets == TINY
        series = result.series["NY"]
        assert set(series) == {"HC2L", "HL"}
        assert all(len(values) == 5 for values in series.values())
        assert all(v >= 0 for values in series.values() for v in values)

    def test_figure7_beta_sweep(self):
        result = figure7(datasets=TINY, betas=[0.2, 0.3], num_queries=100)
        assert result.betas == [0.2, 0.3]
        assert len(result.query_time_us["NY"]) == 2
        assert len(result.avg_cut_size["NY"]) == 2
        assert all(v > 0 for v in result.query_time_us["NY"])


class TestReport:
    def test_format_bytes(self):
        assert report.format_bytes(512) == "512 B"
        assert report.format_bytes(2048) == "2.0 KB"
        assert report.format_bytes(3 * 1024 ** 3) == "3.0 GB"

    def test_render_table_alignment(self):
        rows = [{"dataset": "NY", "label_size_bytes": 1024}, {"dataset": "BAY", "label_size_bytes": 2048}]
        text = report.render_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "dataset" in lines[1]
        assert "1.0 KB" in text

    def test_render_empty_table(self):
        assert "(no rows)" in report.render_table([], title="empty")

    def test_render_figures(self):
        fig6 = figure6(datasets=TINY, methods=["HC2L"], pairs_per_set=10, num_sets=3)
        text6 = report.render_figure6(fig6)
        assert "Q1_us" in text6 and "HC2L" in text6
        fig7 = figure7(datasets=TINY, betas=[0.2], num_queries=50)
        text7 = report.render_figure7(fig7)
        assert "beta" in text7 and "avg_cut" in text7

    def test_render_all(self):
        rows = table1(["NY"])
        text = report.render_all({"table1": rows})
        assert "TABLE1" in text
        assert not math.isnan(len(text))
