"""Tests for the application layer (kNN, many-to-many, route planning)."""

from __future__ import annotations

import math

import pytest

from repro.applications.knn import KNearestNeighbours
from repro.applications.matrix import distance_matrix, nearest_assignment
from repro.applications.routing import RoutePlanner
from repro.baselines.dijkstra import DijkstraOracle
from repro.core.index import HC2LIndex


@pytest.fixture(scope="module")
def hc2l_index(small_graph):
    return HC2LIndex.build(small_graph)


@pytest.fixture(scope="module")
def oracle(small_graph):
    return DijkstraOracle.build(small_graph, cache_size=512)


class TestKNearestNeighbours:
    def test_requires_pois(self, hc2l_index):
        with pytest.raises(ValueError):
            KNearestNeighbours(hc2l_index, [])

    def test_k_must_be_positive(self, hc2l_index):
        knn = KNearestNeighbours(hc2l_index, [1, 2, 3])
        with pytest.raises(ValueError):
            knn.query(0, k=0)

    def test_nearest_poi_matches_oracle(self, hc2l_index, oracle, small_graph):
        pois = list(range(0, small_graph.num_vertices, 9))
        knn = KNearestNeighbours(hc2l_index, pois)
        for vertex in range(0, small_graph.num_vertices, 23):
            (poi, distance), = knn.query(vertex, k=1)
            best = min(oracle.distance(vertex, p) for p in pois)
            assert distance == pytest.approx(best, rel=1e-6)

    def test_results_sorted_and_bounded(self, hc2l_index, small_graph):
        pois = list(range(0, small_graph.num_vertices, 5))
        knn = KNearestNeighbours(hc2l_index, pois)
        results = knn.query(3, k=4)
        assert len(results) == 4
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_duplicate_pois_deduplicated(self, hc2l_index):
        knn = KNearestNeighbours(hc2l_index, [1, 1, 2, 2, 3])
        assert knn.pois == [1, 2, 3]

    def test_unreachable_pois_excluded(self, disconnected_graph):
        index = HC2LIndex.build(disconnected_graph, leaf_size=2)
        knn = KNearestNeighbours(index, [5, 6])
        assert knn.query(0, k=2) == []

    def test_within_radius(self, hc2l_index, oracle, small_graph):
        pois = list(range(0, small_graph.num_vertices, 7))
        knn = KNearestNeighbours(hc2l_index, pois)
        radius = 5000.0
        hits = knn.within_radius(2, radius)
        for poi, distance in hits:
            assert distance <= radius
            assert distance == pytest.approx(oracle.distance(2, poi), rel=1e-6)
        expected = {p for p in pois if oracle.distance(2, p) <= radius}
        assert {poi for poi, _ in hits} == expected

    def test_batch_query_shape(self, hc2l_index):
        knn = KNearestNeighbours(hc2l_index, [0, 5, 9])
        batch = knn.batch_query([1, 2, 3], k=2)
        assert len(batch) == 3
        assert all(len(item) <= 2 for item in batch)


class TestDistanceMatrix:
    def test_matches_oracle(self, hc2l_index, oracle):
        sources = [0, 3, 7]
        targets = [2, 11, 19, 30]
        matrix = distance_matrix(hc2l_index, sources, targets)
        assert matrix.shape == (3, 4)
        for i, s in enumerate(sources):
            for j, t in enumerate(targets):
                assert matrix[i, j] == pytest.approx(oracle.distance(s, t), rel=1e-6)

    def test_empty_inputs(self, hc2l_index):
        assert distance_matrix(hc2l_index, [], []).shape == (0, 0)

    def test_nearest_assignment_each_car_used_once(self, hc2l_index, small_graph):
        cars = list(range(0, 40, 10))
        customers = list(range(1, 60, 7))
        assignments = nearest_assignment(hc2l_index, cars, customers)
        used_cars = [car for _, car, _ in assignments]
        assert len(used_cars) == len(set(used_cars))
        assert len(assignments) == min(len(cars), len(customers))

    def test_nearest_assignment_prefers_short_pickups(self, hc2l_index, oracle):
        cars = [0, 50]
        customers = [1, 51]
        assignments = nearest_assignment(hc2l_index, cars, customers)
        total = sum(d for _, _, d in assignments)
        # swapping the two assignments must not improve the total
        swapped = oracle.distance(1, 50) + oracle.distance(51, 0)
        assert total <= swapped + 1e-6

    def test_nearest_assignment_empty_cars(self, hc2l_index):
        assert nearest_assignment(hc2l_index, [], [1, 2]) == []

    def test_unreachable_customers_skipped(self, disconnected_graph):
        index = HC2LIndex.build(disconnected_graph, leaf_size=2)
        assignments = nearest_assignment(index, cars=[0], customers=[5])
        assert assignments == []


class TestRoutePlanner:
    def test_route_visits_every_stop(self, hc2l_index):
        planner = RoutePlanner(hc2l_index)
        stops = [5, 11, 23, 42]
        route, length = planner.route(0, stops)
        assert route[0] == 0 and route[-1] == 0
        assert set(stops) <= set(route)
        assert length > 0

    def test_route_without_return(self, hc2l_index):
        planner = RoutePlanner(hc2l_index)
        route, _ = planner.route(0, [7, 9], return_to_depot=False)
        assert route[0] == 0
        assert route[-1] in (7, 9)

    def test_route_length_consistency(self, hc2l_index, oracle):
        planner = RoutePlanner(hc2l_index)
        route, length = planner.route(2, [8, 17, 31])
        expected = sum(oracle.distance(a, b) for a, b in zip(route, route[1:]))
        assert length == pytest.approx(expected, rel=1e-6)

    def test_no_stops(self, hc2l_index):
        planner = RoutePlanner(hc2l_index)
        route, length = planner.route(4, [])
        assert route == [4, 4]
        assert length == 0.0

    def test_duplicate_and_depot_stops_ignored(self, hc2l_index):
        planner = RoutePlanner(hc2l_index)
        route, _ = planner.route(4, [4, 9, 9])
        assert route.count(9) == 1

    def test_two_opt_never_hurts(self, hc2l_index):
        planner = RoutePlanner(hc2l_index)
        stops = [3, 19, 33, 47, 61]
        _, greedy_length = planner.route(0, stops, two_opt_rounds=0)
        _, improved_length = planner.route(0, stops, two_opt_rounds=3)
        assert improved_length <= greedy_length + 1e-9

    def test_unreachable_stop_raises(self, disconnected_graph):
        index = HC2LIndex.build(disconnected_graph, leaf_size=2)
        planner = RoutePlanner(index)
        with pytest.raises(ValueError):
            planner.route(0, [5])

    def test_route_length_rejects_unreachable_leg(self, disconnected_graph):
        index = HC2LIndex.build(disconnected_graph, leaf_size=2)
        planner = RoutePlanner(index)
        with pytest.raises(ValueError):
            planner.route_length([0, 5])

    def test_works_with_baseline_indexes_too(self, small_graph, oracle):
        planner = RoutePlanner(oracle)
        route, length = planner.route(1, [20, 40])
        assert route[0] == 1
        assert math.isfinite(length)
