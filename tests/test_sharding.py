"""ShardRouter behaviour: lazy mmap loading, routing stats, composition
with the serving layers, the CLI surface, and the overhead harness.

Bit-identity with the monolithic engine is asserted exhaustively in the
conformance suite (``test_oracle_protocol.py``); this module covers the
router's *operational* contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import HC2LIndex
from repro.experiments.sharding import router_overhead_rows
from repro.experiments.workloads import random_pairs
from repro.serving import CachingOracle, CoalescingServer, ShardRouter

from repro import cli


@pytest.fixture(scope="module")
def index(small_graph):
    return HC2LIndex.build(small_graph)


@pytest.fixture(scope="module")
def layout_path(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("router") / "index.npz"
    index.save(path)
    index.save_sharded(path, num_shards=3)
    return path


class TestRouterOperations:
    def test_shards_load_lazily(self, layout_path, index):
        router = ShardRouter(layout_path)
        assert router.loaded_shard_ids == []
        # a query touching one shard's vertices maps only what it needs
        core_to_original = index.contraction.core_to_original
        lo_vertex = core_to_original[0]
        router.distance(lo_vertex, lo_vertex)  # same-vertex: no shard needed
        assert router.loaded_shard_ids == []
        router.distances([(lo_vertex, core_to_original[1])])
        assert 0 < len(router.loaded_shard_ids) < router.num_shards
        assert router.stats.shard_loads == len(router.loaded_shard_ids)

    def test_preload_maps_everything(self, layout_path):
        router = ShardRouter(layout_path, preload=True)
        assert router.loaded_shard_ids == list(range(router.num_shards))

    def test_shard_buffers_are_read_only_memmaps(self, layout_path, small_graph):
        router = ShardRouter(layout_path, preload=True)
        for shard_id in router.loaded_shard_ids:
            shard = router._shard(shard_id)
            assert isinstance(shard.values, np.memmap)
            assert not shard.values.flags.writeable

    def test_in_memory_mode(self, layout_path, index, small_graph):
        router = ShardRouter(layout_path, mmap=False, preload=True)
        shard = router._shard(0)
        assert not isinstance(shard.values, np.memmap)
        pairs = random_pairs(small_graph, 100, seed=2)
        assert router.distances(pairs).tolist() == index.distances(pairs).tolist()

    def test_routing_stats_accounting(self, layout_path, small_graph):
        router = ShardRouter(layout_path)
        pairs = random_pairs(small_graph, 300, seed=8)
        router.distances(pairs)
        stats = router.stats
        assert stats.batches == 1
        assert stats.core_pairs > 0
        assert stats.cross_shard_pairs > 0  # random traffic crosses 3 shards
        assert stats.fanout_calls >= len(router.loaded_shard_ids)
        assert sum(stats.pairs_per_shard.values()) <= stats.core_pairs
        as_dict = stats.as_dict()
        assert as_dict["batches"] == 1

    def test_repr_mentions_shards(self, layout_path):
        router = ShardRouter(layout_path)
        assert "num_shards=3" in repr(router)

    def test_live_reshard_fails_loudly_not_silently(self, index, tmp_path):
        """A router must not mix boundaries from two layout generations."""
        path = tmp_path / "live.npz"
        index.save_sharded(path, num_shards=3)
        router = ShardRouter(path)  # pins the 3-shard boundaries, loads lazily
        index.save_sharded(path, num_shards=2)  # concurrent re-shard
        with pytest.raises(RuntimeError, match="re-open"):
            router.distances([(0, 5)])


class TestComposition:
    """CachingOracle and CoalescingServer need zero changes over the router."""

    def test_cached_router_identical(self, layout_path, index, small_graph):
        cached = CachingOracle(ShardRouter(layout_path))
        pairs = random_pairs(small_graph, 200, seed=4)
        direct = index.distances(pairs).tolist()
        assert cached.distances(pairs).tolist() == direct
        assert cached.distances(pairs).tolist() == direct  # second pass: hits
        assert cached.stats.pair_hits > 0
        assert cached.index_size_bytes == index.index_size_bytes

    def test_coalescing_router_identical(self, layout_path, index, small_graph):
        server = CoalescingServer(ShardRouter(layout_path), window_seconds=0.0)
        pairs = random_pairs(small_graph, 50, seed=6)
        requests = [server.submit(s, t) for s, t in pairs]
        server.flush()
        assert [r.result() for r in requests] == index.distances(pairs).tolist()

    def test_full_stack_over_shards(self, layout_path, index, small_graph):
        stack = CoalescingServer(CachingOracle(ShardRouter(layout_path)), window_seconds=0.0)
        pairs = random_pairs(small_graph, 80, seed=7)
        assert stack.distances(pairs).tolist() == index.distances(pairs).tolist()


class TestCLI:
    def test_shard_then_query(self, index, tmp_path, capsys):
        path = tmp_path / "cli-index.npz"
        index.save(path)
        assert cli.main(["shard", str(path), "--shards", "2"]) == 0
        output = capsys.readouterr().out
        assert "shard-0000.npz" in output and "shard-0001.npz" in output
        assert (tmp_path / "cli-index.npz.shards" / "manifest.json").exists()

        assert cli.main(["query", "--shards", str(path), "0,5", "3,9"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        s, t, value = lines[0].split("\t")
        assert (int(s), int(t)) == (0, 5)
        assert float(value) == index.distance(0, 5)

    def test_query_without_layout_fails_clearly(self, index, tmp_path, capsys):
        path = tmp_path / "never-sharded.npz"
        index.save(path)
        with pytest.raises(ValueError, match="manifest"):
            cli.main(["query", "--shards", str(path), "0,5"])


class TestOverheadHarness:
    def test_rows_per_shard_count(self, index, small_graph, tmp_path):
        pairs = random_pairs(small_graph, 400, seed=19)
        rows = router_overhead_rows(index, pairs, tmp_path, shard_counts=(1, 2, 4))
        assert [row["num_shards"] for row in rows] == [1, 2, 4]
        for row in rows:
            assert row["oracle"] == f"HC2L+router(shards={row['num_shards']})"
            assert row["num_queries"] == len(pairs)
            assert row["batch_queries_per_second"] > 0
            assert row["router_overhead_ratio"] > 0
            assert row["batches"] == 1  # stats cover one steady-state batch
        # shards=1 has no cross-shard traffic; more shards do
        assert rows[0]["cross_shard_pairs"] == 0
        assert rows[2]["cross_shard_pairs"] > 0

    def test_invalid_repetitions(self, index, small_graph, tmp_path):
        with pytest.raises(ValueError):
            router_overhead_rows(index, [(0, 1)], tmp_path, repetitions=0)
