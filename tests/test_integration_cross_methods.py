"""Cross-method integration tests.

Every index implemented in this repository must return the same exact
distances on the same network; these tests build them all once on a shared
mid-size road network (distance and travel-time weights) and cross-check
their answers, their reported metrics and the shapes the paper's evaluation
expects (HC2L smaller/faster hierarchy than H2H, etc.).
"""

from __future__ import annotations

import math

import pytest

from repro.baselines.ch import ContractionHierarchy
from repro.baselines.dijkstra import BidirectionalDijkstra
from repro.baselines.h2h import H2HIndex
from repro.baselines.hub_labelling import HubLabelling
from repro.baselines.phl import PrunedHighwayLabelling
from repro.baselines.pll import PrunedLandmarkLabelling
from repro.core.index import HC2LIndex

from helpers import assert_distance_equal, random_query_pairs


@pytest.fixture(scope="module")
def all_indexes(medium_graph):
    return {
        "HC2L": HC2LIndex.build(medium_graph),
        "HC2L_p": HC2LIndex.build(medium_graph, num_workers=3),
        "H2H": H2HIndex.build(medium_graph),
        "PHL": PrunedHighwayLabelling.build(medium_graph),
        "HL": HubLabelling.build(medium_graph),
        "PLL": PrunedLandmarkLabelling.build(medium_graph),
        "CH": ContractionHierarchy.build(medium_graph),
        "BiDijkstra": BidirectionalDijkstra.build(medium_graph),
    }


class TestAllMethodsAgree:
    def test_against_oracle(self, all_indexes, medium_graph, medium_oracle):
        pairs = random_query_pairs(medium_graph, 120, seed=101)
        for s, t in pairs:
            expected = medium_oracle.distance(s, t)
            for name, index in all_indexes.items():
                assert_distance_equal(expected, index.distance(s, t)), name

    def test_pairwise_agreement(self, all_indexes, medium_graph):
        pairs = random_query_pairs(medium_graph, 60, seed=202)
        for s, t in pairs:
            answers = {name: index.distance(s, t) for name, index in all_indexes.items()}
            reference = answers["HC2L"]
            for name, value in answers.items():
                if math.isinf(reference):
                    assert math.isinf(value), name
                else:
                    assert value == pytest.approx(reference, rel=1e-6), name

    def test_travel_time_agreement(self, medium_road_network):
        graph = medium_road_network.travel_time_graph
        indexes = {
            "HC2L": HC2LIndex.build(graph),
            "H2H": H2HIndex.build(graph),
            "HL": HubLabelling.build(graph),
        }
        pairs = random_query_pairs(graph, 80, seed=303)
        for s, t in pairs:
            reference = indexes["HC2L"].distance(s, t)
            for name, index in indexes.items():
                assert index.distance(s, t) == pytest.approx(reference, rel=1e-6), name


class TestPaperShapeExpectations:
    """The qualitative comparisons the paper's evaluation highlights."""

    def test_hc2l_hierarchy_is_shallower_than_h2h(self, all_indexes):
        assert all_indexes["HC2L"].tree_height() < all_indexes["H2H"].tree_height()

    def test_hc2l_lca_storage_is_smaller_than_h2h(self, all_indexes):
        assert all_indexes["HC2L"].lca_storage_bytes() < all_indexes["H2H"].lca_storage_bytes()

    def test_hc2l_scans_fewer_hubs_than_h2h_and_hl(self, all_indexes, medium_graph):
        pairs = random_query_pairs(medium_graph, 150, seed=404)

        def average_hubs(index):
            total = 0
            for s, t in pairs:
                total += index.distance_with_hub_count(s, t)[1]
            return total / len(pairs)

        hc2l = average_hubs(all_indexes["HC2L"])
        h2h = average_hubs(all_indexes["H2H"])
        hl = average_hubs(all_indexes["HL"])
        assert hc2l < h2h
        assert hc2l < hl

    def test_hc2l_labelling_smaller_than_h2h(self, all_indexes):
        assert all_indexes["HC2L"].label_size_bytes() < all_indexes["H2H"].label_size_bytes()

    def test_label_sizes_positive_for_all_methods(self, all_indexes):
        for name, index in all_indexes.items():
            assert index.label_size_bytes() > 0, name

    def test_parallel_and_sequential_builds_identical_labels(self, all_indexes):
        sequential = all_indexes["HC2L"]
        parallel = all_indexes["HC2L_p"]
        assert sequential.labelling.total_entries() == parallel.labelling.total_entries()
        assert sequential.tree_height() == parallel.tree_height()
