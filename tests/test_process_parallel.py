"""Tests for the process-parallel construction path.

The process mode ships self-contained CSR work units to worker processes
and streams the returned label blocks into the flat layout, so the key
property is *bit-identity*: for every ``parallel_mode`` x ``backend`` x
``num_workers`` combination the labels (and the hierarchy) must equal the
serial heap build exactly - not approximately.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.construction import HC2LBuilder, PARALLEL_MODES, check_parallel_mode
from repro.core.flat import FlatLabelling
from repro.core.index import HC2LIndex, HC2LParameters
from repro.core.labelling import HC2LLabelling
from repro.core.parallel import ParallelHC2LBuilder

from helpers import assert_distance_equal


def _flat_of(labelling) -> FlatLabelling:
    if isinstance(labelling, FlatLabelling):
        return labelling
    return FlatLabelling.from_labelling(labelling)


def _hierarchy_signature(hierarchy):
    return [
        (n.depth, n.bits, n.cut, n.parent, n.left, n.right, n.subtree_size, n.is_leaf)
        for n in hierarchy.nodes
    ]


class TestBitIdentityMatrix:
    """{thread, process} x {heap, csr} x {1, 2, 4} workers == serial heap."""

    @pytest.mark.parametrize("mode", ["thread", "process"])
    @pytest.mark.parametrize("backend", ["heap", "csr"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_labels_match_serial_heap(self, medium_graph, mode, backend, workers):
        serial = HC2LBuilder(leaf_size=8, backend="heap")
        _, reference, _ = serial.build(medium_graph)
        reference_flat = _flat_of(reference)

        builder = ParallelHC2LBuilder(
            leaf_size=8,
            backend=backend,
            num_workers=workers,
            parallel_mode=mode,
            parallel_threshold=16,
        )
        _, labelling, _ = builder.build(medium_graph)
        assert _flat_of(labelling) == reference_flat

    def test_process_hierarchy_matches_serial(self, medium_graph):
        serial_h, _, _ = HC2LBuilder(leaf_size=8, backend="csr").build(medium_graph)
        builder = ParallelHC2LBuilder(
            leaf_size=8,
            backend="csr",
            num_workers=2,
            parallel_mode="process",
            parallel_threshold=16,
        )
        process_h, _, _ = builder.build(medium_graph)
        # the coordinator replays its expansion events in preorder, so the
        # node indices - not just the node set - match the serial recursion
        assert _hierarchy_signature(process_h) == _hierarchy_signature(serial_h)

    def test_disconnected_graph(self, disconnected_graph):
        _, reference, _ = HC2LBuilder(leaf_size=2, backend="heap").build(disconnected_graph)
        builder = ParallelHC2LBuilder(
            leaf_size=2,
            backend="csr",
            num_workers=2,
            parallel_mode="process",
            parallel_threshold=4,
        )
        _, labelling, _ = builder.build(disconnected_graph)
        assert _flat_of(labelling) == _flat_of(reference)

    def test_process_distances_exact(self, small_graph, small_oracle, query_pairs_small):
        index = HC2LIndex.build(
            small_graph, num_workers=2, parallel_mode="process", backend="csr"
        )
        for s, t in query_pairs_small:
            assert_distance_equal(small_oracle.distance(s, t), index.distance(s, t))


class TestProcessFallback:
    def test_small_graph_builds_serially(self, small_graph):
        # below the parallel threshold the coordinator runs the plain
        # sequential builder: no tasks, nested labels
        builder = ParallelHC2LBuilder(
            num_workers=2, parallel_mode="process", parallel_threshold=256
        )
        hierarchy, labelling, stats = builder.build(small_graph)
        assert stats.num_tasks == 0
        assert isinstance(labelling, HC2LLabelling)
        _, reference, _ = HC2LBuilder().build(small_graph)
        assert _flat_of(labelling) == _flat_of(reference)

    def test_default_threshold_keeps_tiny_graphs_serial(self):
        from repro.graph.builders import path_graph

        graph = path_graph(40, weight=1.5)
        builder = ParallelHC2LBuilder(num_workers=2, parallel_mode="process")
        _, labelling, stats = builder.build(graph)
        assert stats.num_tasks == 0
        assert isinstance(labelling, HC2LLabelling)

    def test_large_enough_graph_ships_tasks(self, medium_graph):
        builder = ParallelHC2LBuilder(
            num_workers=2, parallel_mode="process", parallel_threshold=16, leaf_size=8
        )
        hierarchy, labelling, stats = builder.build(medium_graph)
        assert stats.num_tasks > 0
        assert isinstance(labelling, FlatLabelling)
        assert hierarchy.check_vertex_assignment()

    def test_empty_graph(self):
        from repro.graph.graph import Graph

        hierarchy, labelling, stats = ParallelHC2LBuilder(
            num_workers=2, parallel_mode="process"
        ).build(Graph(0))
        assert stats.num_nodes == 0
        assert len(hierarchy.nodes) == 0


class TestParameterValidation:
    def test_unknown_parallel_mode_builder(self):
        with pytest.raises(ValueError, match="unknown parallel_mode"):
            ParallelHC2LBuilder(parallel_mode="fibers")

    def test_unknown_parallel_mode_parameters(self):
        with pytest.raises(ValueError, match="unknown parallel_mode"):
            HC2LParameters(parallel_mode="gpu")

    def test_bad_worker_count_parameters(self):
        with pytest.raises(ValueError, match="num_workers must be >= 1"):
            HC2LParameters(num_workers=0)
        with pytest.raises(ValueError, match="num_workers must be >= 1"):
            HC2LParameters(num_workers=-3)

    def test_bad_worker_count_builder(self):
        with pytest.raises(ValueError, match="num_workers must be >= 1"):
            ParallelHC2LBuilder(num_workers=0)

    def test_check_parallel_mode_lists_known_modes(self):
        for mode in PARALLEL_MODES:
            check_parallel_mode(mode)
        with pytest.raises(ValueError, match="thread"):
            check_parallel_mode("nope")


class TestPersistenceRoundTrip:
    def test_parallel_mode_round_trips(self, small_graph, tmp_path):
        index = HC2LIndex.build(
            small_graph, num_workers=2, parallel_mode="process", backend="csr"
        )
        path = tmp_path / "process.npz"
        index.save(path)
        loaded = HC2LIndex.load(path)
        assert loaded.parameters.parallel_mode == "process"
        assert loaded.parameters.num_workers == 2
        assert loaded.flat_labelling() == index.flat_labelling()

    def test_legacy_header_defaults(self, small_graph, tmp_path):
        # a pre-parallel_mode archive (and one carrying a nonsensical
        # num_workers) must load with today's defaults instead of tripping
        # the new validation
        index = HC2LIndex.build(small_graph)
        path = tmp_path / "legacy.npz"
        index.save(path)

        archive = np.load(path, allow_pickle=False)
        arrays = {name: archive[name] for name in archive.files}
        header = json.loads(bytes(arrays["header"].tobytes()).decode("utf-8"))
        header["parameters"].pop("parallel_mode")
        header["parameters"]["num_workers"] = 0
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ).copy()
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)

        loaded = HC2LIndex.load(path)
        assert loaded.parameters.parallel_mode == "thread"
        assert loaded.parameters.num_workers == 1
        assert loaded.flat_labelling() == index.flat_labelling()


class TestStreamingAssembly:
    def test_merge_levels_concatenates_per_vertex(self):
        left = FlatLabelling.from_labelling(
            HC2LLabelling(num_vertices=2, labels=[[[1.0]], [[2.0, 3.0]]])
        )
        right = FlatLabelling.from_labelling(
            HC2LLabelling(num_vertices=2, labels=[[[4.0], []], [[5.0]]])
        )
        merged = left.merge_levels(right)
        nested = merged.to_labelling()
        assert nested.labels == [[[1.0], [4.0], []], [[2.0, 3.0], [5.0]]]

    def test_merge_levels_rejects_size_mismatch(self):
        a = FlatLabelling.from_labelling(HC2LLabelling(num_vertices=1, labels=[[[1.0]]]))
        b = FlatLabelling.from_labelling(
            HC2LLabelling(num_vertices=2, labels=[[[1.0]], [[2.0]]])
        )
        with pytest.raises(ValueError):
            a.merge_levels(b)

    def test_node_timings_recorded(self, small_graph):
        _, _, stats = HC2LBuilder(leaf_size=8).build(small_graph)
        assert stats.node_timings
        assert stats.num_nodes == len(stats.node_timings)
        for depth, vertices, seconds, seconds_cut in stats.node_timings:
            assert depth >= 0
            assert vertices > 0
            assert seconds >= 0.0
            # the cut is part of the node's own work, never more than it
            assert 0.0 <= seconds_cut <= seconds
