"""SharedPairCache: correctness, crash safety, seqlock stress.

The shared cache sits on the hot query path of every fleet worker, so
its failure modes are the interesting part: a writer killed mid-publish
must never wedge or corrupt readers (seqlock left odd = permanent miss
until reclaimed), concurrent writers must never produce a readable slot
whose key and value come from different publishes (checksum), and every
lookup must stay wait-free.  The cross-process tests spawn real
processes - the same start method the fleet uses - and one of them
hard-kills a writer mid-hammer to pin the crash-safety contract.
"""

from __future__ import annotations

import math
import multiprocessing
import time

import numpy as np
import pytest

from repro.serving.shm_cache import PROBE_WINDOW, SLOT_DTYPE, SharedPairCache

#: spawn matches the fleet's worker start method (and is the only method
#: whose resource-tracker semantics the cache documents)
_MP = multiprocessing.get_context("spawn")


def _key_value(u: int, v: int) -> float:
    """The deterministic value every process agrees on for a key.

    The cache's concurrency contract assumes deterministic distances, so
    the stress writers must honour it: same key, same bytes.
    """
    lo, hi = (u, v) if u <= v else (v, u)
    return float(lo * 1000003 + hi) * 0.5


def _stress_keys(num_keys: int) -> np.ndarray:
    rng = np.random.default_rng(13)
    return rng.integers(0, 10_000, size=(num_keys, 2), dtype=np.int64)


def _hammer_writer(name: str, num_keys: int, seconds: float, seed: int) -> None:
    """Spawn target: republish the stress keys in random batches."""
    rng = np.random.default_rng(seed)
    keys = _stress_keys(num_keys)
    values = np.array([_key_value(int(u), int(v)) for u, v in keys])
    cache = SharedPairCache.attach(name, counter_row=0)
    deadline = time.perf_counter() + seconds
    try:
        while time.perf_counter() < deadline:
            rows = rng.integers(0, num_keys, size=64)
            cache.put_many(keys[rows], values[rows])
    finally:
        cache.close()


def _endless_writer(name: str, num_keys: int) -> None:
    """Spawn target: publish forever (the parent kills this process)."""
    keys = _stress_keys(num_keys)
    values = np.array([_key_value(int(u), int(v)) for u, v in keys])
    cache = SharedPairCache.attach(name)
    at = 0
    while True:
        rows = np.arange(at % num_keys, min(at % num_keys + 64, num_keys))
        cache.put_many(keys[rows], values[rows])
        at += 64


class TestBasics:
    def test_scalar_put_get_including_inf(self):
        with SharedPairCache.create(64) as cache:
            assert cache.get(3, 9) is None
            cache.put(3, 9, 12.5)
            assert cache.get(3, 9) == 12.5
            assert cache.get(9, 3) == 12.5  # normalised key: symmetric
            cache.put(1, 2, math.inf)  # disconnected pairs are cacheable
            assert cache.get(1, 2) == math.inf

    def test_vector_put_get(self):
        pairs = np.array([[0, 1], [5, 2], [7, 7], [0, 1]], dtype=np.int64)
        values = np.array([1.0, 2.0, 0.0, 1.0])
        with SharedPairCache.create(128) as cache:
            cache.put_many(pairs, values)
            got, found = cache.get_many(pairs)
            assert found.all()
            assert got.tolist() == values.tolist()
            # unknown keys stay misses
            _, found = cache.get_many(np.array([[100, 200]], dtype=np.int64))
            assert not found.any()

    def test_zero_distance_is_a_hit_not_an_empty_slot(self):
        with SharedPairCache.create(32) as cache:
            cache.put(4, 4, 0.0)
            assert cache.get(4, 4) == 0.0

    def test_duplicate_publish_is_skipped(self):
        with SharedPairCache.create(32, counter_rows=1) as cache:
            owner = SharedPairCache.attach(cache.name, counter_row=0)
            try:
                owner.put(1, 2, 3.0)
                owner.put(1, 2, 3.0)  # same key: already-published slot wins
                assert owner.counter_row_dict(0)["fills"] == 1
            finally:
                owner.close()

    def test_eviction_keeps_survivors_exact(self):
        """Overfilling a tiny cache evicts, and every surviving entry
        still answers with its exact value."""
        num_keys = 64
        keys = _stress_keys(num_keys)
        values = np.array([_key_value(int(u), int(v)) for u, v in keys])
        cache = SharedPairCache.create(16, counter_rows=1)
        writer = SharedPairCache.attach(cache.name, counter_row=0)
        try:
            writer.put_many(keys, values)
            assert writer.counter_row_dict(0)["evictions"] > 0
            got, found = writer.get_many(keys)
            assert found.any()  # something survived
            assert np.array_equal(got[found], values[found])
        finally:
            writer.close()
            cache.close()

    def test_validation_rejects_bool_and_non_int(self):
        with pytest.raises(ValueError, match="slots"):
            SharedPairCache.create(True)
        with pytest.raises(ValueError, match="slots"):
            SharedPairCache.create("64")
        with pytest.raises(ValueError, match="slots"):
            SharedPairCache.create(0)
        with pytest.raises(ValueError, match="counter_rows"):
            SharedPairCache.create(8, counter_rows=0)
        with pytest.raises(ValueError, match="name"):
            SharedPairCache.attach("")
        with SharedPairCache.create(8, counter_rows=2) as cache:
            with pytest.raises(ValueError, match="counter_row"):
                SharedPairCache.attach(cache.name, counter_row=2)
            with pytest.raises(ValueError, match="pair array"):
                cache.get_many(np.zeros((3, 3), dtype=np.int64))
            with pytest.raises(ValueError, match="values"):
                cache.put_many(np.zeros((2, 2), dtype=np.int64), np.zeros(3))

    def test_closed_cache_refuses(self):
        cache = SharedPairCache.create(8)
        cache.close()
        cache.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            cache.get(0, 1)

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=1024)
        try:
            with pytest.raises(ValueError, match="not a SharedPairCache"):
                SharedPairCache.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()


class TestCounters:
    def test_per_row_counters_aggregate(self):
        cache = SharedPairCache.create(64, counter_rows=2)
        w0 = SharedPairCache.attach(cache.name, counter_row=0)
        w1 = SharedPairCache.attach(cache.name, counter_row=1)
        try:
            w0.put(1, 2, 5.0)
            assert w0.get(1, 2) == 5.0
            assert w1.get(1, 2) == 5.0  # cross-attachment visibility
            assert w1.get(8, 9) is None
            assert w0.counter_row_dict(0) == {
                "hits": 1, "misses": 0, "fills": 1, "evictions": 0, "hit_rate": 1.0,
            }
            assert w1.counter_row_dict(1)["hits"] == 1
            assert w1.counter_row_dict(1)["misses"] == 1
            totals = cache.counters_dict()
            assert totals["hits"] == 2
            assert totals["misses"] == 1
            assert totals["fills"] == 1
            assert totals["slots"] == 64
            cache.reset_counters()
            assert cache.counters_dict()["hits"] == 0
        finally:
            w0.close()
            w1.close()
            cache.close()

    def test_counterless_attachment_does_not_count(self):
        cache = SharedPairCache.create(32, counter_rows=1)
        reader = SharedPairCache.attach(cache.name)
        try:
            reader.put(0, 1, 2.0)
            reader.get(0, 1)
            assert cache.counters_dict()["hits"] == 0
            assert cache.counters_dict()["fills"] == 0
        finally:
            reader.close()
            cache.close()


class TestCachedDistances:
    class _CountingOracle:
        """Deterministic stand-in oracle recording every batch it sees."""

        def __init__(self):
            self.calls = []

        def distances(self, pairs):
            pairs = np.asarray(pairs)
            self.calls.append(pairs.copy())
            return np.array([_key_value(int(u), int(v)) for u, v in pairs])

    def test_misses_dedup_and_publish(self):
        oracle = self._CountingOracle()
        pairs = np.array([[5, 3], [3, 5], [1, 2], [5, 3]], dtype=np.int64)
        with SharedPairCache.create(64) as cache:
            values = cache.cached_distances(oracle, pairs)
            expected = [_key_value(int(u), int(v)) for u, v in pairs]
            assert values.tolist() == expected
            # 4 rows collapse to 2 unique normalised keys in one call
            assert len(oracle.calls) == 1
            assert len(oracle.calls[0]) == 2
            # second pass: all hits, the oracle is never consulted
            values = cache.cached_distances(oracle, pairs)
            assert values.tolist() == expected
            assert len(oracle.calls) == 1

    def test_bit_identical_to_real_oracle(self, small_graph):
        """Against a real HC2L index: cached answers are ``==`` to the
        engine's, cold and warm, including unordered pairs."""
        from repro.core.index import HC2LIndex

        index = HC2LIndex.build(small_graph)
        rng = np.random.default_rng(7)
        pairs = rng.integers(0, small_graph.num_vertices, size=(200, 2))
        baseline = index.distances(pairs)
        with SharedPairCache.create(4096) as cache:
            assert cache.cached_distances(index, pairs).tolist() == baseline.tolist()
            assert cache.cached_distances(index, pairs).tolist() == baseline.tolist()


class TestCrashSafety:
    def test_wedged_odd_slot_is_a_miss_then_reclaimed(self):
        """Slots whose writer died mid-publish (odd seqlock) read as
        misses - no hang, no garbage - and, once the probe window has no
        empty slot left, the next publish reclaims a stuck one.  Slot
        fields are always accessed through fresh ``cache._slots``
        expressions: a retained view would block ``close()``."""
        with SharedPairCache.create(16) as cache:
            cache.put(1, 2, 7.0)
            # every slot mid-write, as a fleet-wide crash would leave them
            cache._slots["seq"][:] = 1
            assert cache.get(1, 2) is None
            cache.put(1, 2, 7.0)  # no empty slot anywhere: reclaims a stuck one
            assert cache.get(1, 2) == 7.0
            # exactly one slot was reclaimed to even; the rest stay odd
            assert int((~(cache._slots["seq"] & 1).astype(bool)).sum()) == 1

    def test_checksum_rejects_cross_slot_corruption(self):
        """A slot whose fields were torn across two publishes (same even
        seq, mixed key/value bytes) fails the checksum and misses."""
        with SharedPairCache.create(16) as cache:
            cache.put(1, 2, 7.0)
            row = int(np.nonzero(cache._slots["seq"] != 0)[0][0])
            # value no longer matches the checksum
            cache._slots["dist"][row] = 9.0
            assert cache.get(1, 2) is None

    def test_corrupt_even_duplicate_slot_is_rewritten_not_skipped(self):
        """An even slot whose key matches but whose checksum does not
        (cross-key writer race leaving mixed fields) must be rewritten by
        the next publish of that key - otherwise readers reject it forever
        while writers keep skipping it as a 'duplicate'."""
        with SharedPairCache.create(16) as cache:
            cache.put(1, 2, 7.0)
            row = int(np.nonzero(cache._slots["seq"] != 0)[0][0])
            cache._slots["dist"][row] = 9.0  # seq stays even, checksum broken
            assert cache.get(1, 2) is None  # readers reject it
            cache.put(1, 2, 7.0)  # the publisher must repair, not skip
            assert cache.get(1, 2) == 7.0

    def test_bad_counter_row_closes_the_mapping(self):
        """Every constructor rejection path releases the shm mapping,
        including a counter_row that fails type validation."""
        from multiprocessing import shared_memory

        with SharedPairCache.create(8, counter_rows=1) as cache:
            shm = shared_memory.SharedMemory(name=cache.name)
            closes = []
            original_close = shm.close

            def tracking_close():
                closes.append(True)
                original_close()

            shm.close = tracking_close
            with pytest.raises(ValueError, match="counter_row"):
                SharedPairCache(shm, owner=False, counter_row=True)
            assert closes, "rejection path leaked the shm mapping"

    def test_killed_writer_never_wedges_readers(self):
        """Hard-killing a writer process mid-hammer must leave the cache
        fully readable and writable: lookups stay wait-free and correct,
        and publishes reclaim whatever the corpse left behind."""
        num_keys = 256
        keys = _stress_keys(num_keys)
        values = np.array([_key_value(int(u), int(v)) for u, v in keys])
        cache = SharedPairCache.create(512)
        try:
            writer = _MP.Process(
                target=_endless_writer, args=(cache.name, num_keys), daemon=True
            )
            writer.start()
            time.sleep(0.4)  # let it publish mid-flight
            writer.kill()
            writer.join(timeout=10)
            assert writer.exitcode is not None
            # readers: bounded work, every hit exact
            start = time.perf_counter()
            got, found = cache.get_many(keys)
            assert time.perf_counter() - start < 5.0
            assert np.array_equal(got[found], values[found])
            # writers: a full republish makes every key readable again
            cache.put_many(keys, values)
            got, found = cache.get_many(keys)
            assert np.array_equal(got[found], values[found])
            assert found.sum() > 0
        finally:
            cache.close()

    def test_concurrent_writer_torn_read_stress(self):
        """A writer hammering republishes while this process reads: every
        hit must carry the key's exact deterministic value - seqlock plus
        checksum make torn reads misses, never wrong answers."""
        num_keys = 128
        keys = _stress_keys(num_keys)
        values = np.array([_key_value(int(u), int(v)) for u, v in keys])
        cache = SharedPairCache.create(256, counter_rows=1)
        try:
            writer = _MP.Process(
                target=_hammer_writer, args=(cache.name, num_keys, 1.5, 99), daemon=True
            )
            writer.start()
            # spawn startup (interpreter + imports) can eat a fixed window:
            # clock the read stress from the writer's first visible publish
            spawn_deadline = time.perf_counter() + 30.0
            while not (cache._slots["seq"] != 0).any():
                assert time.perf_counter() < spawn_deadline, "writer never published"
                time.sleep(0.01)
            deadline = time.perf_counter() + 1.2
            lookups = 0
            hits = 0
            while time.perf_counter() < deadline:
                got, found = cache.get_many(keys)
                assert np.array_equal(got[found], values[found])
                lookups += len(keys)
                hits += int(found.sum())
            writer.join(timeout=30)
            assert writer.exitcode == 0
            assert hits > 0, f"no hits in {lookups} stressed lookups"
            # after the dust settles every published key reads exact
            got, found = cache.get_many(keys)
            assert np.array_equal(got[found], values[found])
        finally:
            cache.close()


class TestLayout:
    def test_slot_layout_is_stable(self):
        """The on-wire/in-shm slot layout is a compatibility surface."""
        assert SLOT_DTYPE.itemsize == 40
        assert [name for name in SLOT_DTYPE.names] == ["seq", "u", "v", "dist", "check"]
        assert PROBE_WINDOW == 8
