"""Tests for tree decomposition, RMQ-LCA and the H2H baseline."""

from __future__ import annotations

import math
import random

import pytest

from repro.baselines.h2h import H2HIndex
from repro.baselines.lca import EulerTourLCA
from repro.baselines.tree_decomposition import tree_decomposition
from repro.graph.builders import path_graph

from helpers import assert_distance_equal, random_query_pairs


class TestTreeDecomposition:
    @pytest.fixture(scope="class")
    def decomposition(self, small_graph):
        return tree_decomposition(small_graph)

    def test_elimination_order_is_permutation(self, decomposition, small_graph):
        assert sorted(decomposition.elimination_order) == list(range(small_graph.num_vertices))
        for position, vertex in enumerate(decomposition.elimination_order):
            assert decomposition.position[vertex] == position

    def test_parents_eliminated_later(self, decomposition):
        for v, parent in enumerate(decomposition.parent):
            if parent >= 0:
                assert decomposition.position[parent] > decomposition.position[v]

    def test_bag_members_are_ancestors(self, decomposition):
        assert decomposition.validate_bag_containment()

    def test_bags_are_separators_in_elimination_graph(self, decomposition, small_graph):
        # every original edge (u, v) must connect a vertex to a member of its
        # bag (the defining property of elimination orderings)
        for u, v, _ in small_graph.edges():
            first = u if decomposition.position[u] < decomposition.position[v] else v
            other = v if first == u else u
            assert other in {w for w, _ in decomposition.bags[first]}

    def test_width_and_height_positive(self, decomposition):
        assert decomposition.width() >= 2
        assert decomposition.height() >= 2
        assert decomposition.height() == max(decomposition.depth) + 1

    def test_path_graph_has_small_width(self):
        decomposition = tree_decomposition(path_graph(50))
        assert decomposition.width() <= 3

    def test_roots_match_components(self, disconnected_graph):
        decomposition = tree_decomposition(disconnected_graph)
        assert len(decomposition.roots()) == 3

    def test_children_are_consistent(self, decomposition):
        children = decomposition.children()
        for parent, kids in enumerate(children):
            for child in kids:
                assert decomposition.parent[child] == parent


class TestEulerTourLCA:
    def _balanced_parent_array(self):
        #        0
        #      /   \
        #     1     2
        #    / \   /
        #   3   4 5
        return [-1, 0, 0, 1, 1, 2]

    def test_basic_lcas(self):
        lca = EulerTourLCA(self._balanced_parent_array())
        assert lca.lca(3, 4) == 1
        assert lca.lca(3, 5) == 0
        assert lca.lca(1, 3) == 1
        assert lca.lca(2, 2) == 2
        assert lca.lca(4, 2) == 0

    def test_forest_cross_tree_returns_minus_one(self):
        lca = EulerTourLCA([-1, 0, -1, 2])
        assert lca.lca(1, 3) == -1
        assert lca.lca(0, 1) == 0

    def test_matches_naive_walk_on_random_tree(self):
        rng = random.Random(11)
        n = 60
        parent = [-1] + [rng.randrange(i) for i in range(1, n)]
        lca = EulerTourLCA(parent)

        def naive(u, v):
            ancestors = set()
            x = u
            while x >= 0:
                ancestors.add(x)
                x = parent[x]
            x = v
            while x not in ancestors:
                x = parent[x]
            return x

        for _ in range(120):
            u, v = rng.randrange(n), rng.randrange(n)
            assert lca.lca(u, v) == naive(u, v)

    def test_storage_bytes_positive_and_superlinear(self):
        small = EulerTourLCA([-1] + [0] * 9)
        large = EulerTourLCA([-1] + [i for i in range(200)])
        assert small.storage_bytes() > 0
        assert large.storage_bytes() > small.storage_bytes()

    def test_invalid_vertex_rejected(self):
        lca = EulerTourLCA([-1, 0])
        with pytest.raises(ValueError):
            lca.lca(0, 5)


class TestH2H:
    @pytest.fixture(scope="class")
    def h2h(self, small_graph):
        return H2HIndex.build(small_graph)

    def test_matches_oracle(self, h2h, small_graph, small_oracle):
        for s, t in random_query_pairs(small_graph, 80, seed=1):
            assert_distance_equal(small_oracle.distance(s, t), h2h.distance(s, t))

    def test_medium_network(self, medium_graph, medium_oracle):
        h2h = H2HIndex.build(medium_graph)
        for s, t in random_query_pairs(medium_graph, 60, seed=2):
            assert_distance_equal(medium_oracle.distance(s, t), h2h.distance(s, t))

    def test_uniform_grid(self, uniform_grid):
        from repro.graph.search import dijkstra

        h2h = H2HIndex.build(uniform_grid)
        for s, t in random_query_pairs(uniform_grid, 50, seed=3):
            assert_distance_equal(dijkstra(uniform_grid, s)[t], h2h.distance(s, t))

    def test_disconnected(self, disconnected_graph):
        h2h = H2HIndex.build(disconnected_graph)
        assert math.isinf(h2h.distance(0, 6))
        assert h2h.distance(0, 3) == pytest.approx(4.0)
        assert h2h.distance(7, 7) == 0.0

    def test_dist_array_lengths_match_depth(self, h2h):
        depth = h2h.decomposition.depth
        for v, array in enumerate(h2h.dist_arrays):
            assert len(array) == depth[v] + 1
            assert array[-1] == 0.0

    def test_dist_arrays_hold_exact_ancestor_distances(self, h2h, small_graph, small_oracle):
        decomposition = h2h.decomposition
        rng = random.Random(5)
        for _ in range(25):
            v = rng.randrange(small_graph.num_vertices)
            # walk up the ancestor chain and compare each stored distance
            chain = []
            a = decomposition.parent[v]
            while a >= 0:
                chain.append(a)
                a = decomposition.parent[a]
            chain.reverse()
            for index, ancestor in enumerate(chain):
                assert h2h.dist_arrays[v][index] == pytest.approx(
                    small_oracle.distance(v, ancestor), rel=1e-6
                )

    def test_positions_reference_bag_depths(self, h2h):
        decomposition = h2h.decomposition
        for v in range(h2h.graph.num_vertices):
            expected = sorted({decomposition.depth[x] for x, _ in decomposition.bags[v]} | {decomposition.depth[v]})
            assert h2h.pos_arrays[v] == expected

    def test_metrics(self, h2h, small_graph):
        assert h2h.label_size_bytes() > 0
        assert h2h.lca_storage_bytes() > 0
        assert h2h.tree_height() > 1
        assert h2h.tree_width() >= 2
        assert h2h.average_label_size() > 1.0
        assert h2h.average_hub_positions() >= 1.0
        _, hubs = h2h.distance_with_hub_count(0, 5)
        assert hubs >= 1

    def test_h2h_lca_storage_exceeds_hc2l(self, small_graph):
        from repro.core.index import HC2LIndex

        h2h = H2HIndex.build(small_graph)
        hc2l = HC2LIndex.build(small_graph)
        # Table 3's headline: the RMQ machinery costs far more than bitstrings
        assert h2h.lca_storage_bytes() > 2 * hc2l.lca_storage_bytes()
