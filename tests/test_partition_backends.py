"""Backend equivalence of the partition layer (Algorithms 1-2).

The balanced cuts drive everything downstream - the hierarchy shape, the
labels, the shard boundaries - so a backend that produced a *different*
(even if valid) cut would silently change the whole index.  These tests
pin down bit-identical cuts across

* the ``heap`` and ``csr`` backends (seed searches, component scans),
* every max-flow solver behind the seam: the reference Dinitz, the
  compact Edmonds-Karp, scipy ``maximum_flow`` and the numpy
  Edmonds-Karp fallback (the canonical minimum cuts are unique across
  all maximum flows, which is what makes the solvers interchangeable).

CI runs this module as a dedicated smoke step so partition-layer backend
drift fails loudly, separately from the rest of the suite.
"""

from __future__ import annotations

import random

import pytest

import repro.flow.vertex_cut as vertex_cut_module
from repro.core.backends import CSRBackend, DialBackend, HeapBackend
from repro.core.flat import FlatWorkingGraph
from repro.flow.vertex_cut import FLOW_METHODS, minimum_st_vertex_cut
from repro.graph.builders import graph_from_edges
from repro.partition.cut import balanced_cut, separates
from repro.partition.partition import balanced_partition
from repro.partition.working_graph import working_graph_from
from repro.graph.generators import RoadNetworkSpec, synthetic_road_network


def _seeded_adjacency(seed: int, n_lo: int = 40, n_hi: int = 120):
    """A connected-ish random weighted graph as a working adjacency."""
    rng = random.Random(seed)
    n = rng.randrange(n_lo, n_hi)
    edges = []
    for v in range(1, n):
        u = rng.randrange(v)  # spanning tree keeps it mostly connected
        edges.append((u, v, float(rng.randrange(1, 9))))
    for _ in range(2 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((u, v, float(rng.randrange(1, 9))))
    graph = graph_from_edges(edges, num_vertices=n)
    return working_graph_from(graph)


class TestCutBackendEquality:
    @pytest.mark.parametrize("seed", range(8))
    def test_heap_and_csr_cuts_are_identical(self, seed):
        adjacency = _seeded_adjacency(seed)
        reference = balanced_cut(adjacency, backend=HeapBackend())
        fast = balanced_cut(adjacency, backend=CSRBackend(min_vertices=0))
        assert reference.part_a == fast.part_a
        assert reference.cut == fast.cut
        assert reference.part_b == fast.part_b
        assert separates(adjacency, fast)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_csr_without_scipy_matches(self, seed, monkeypatch):
        import repro.core.backends as backends_module

        monkeypatch.setattr(backends_module, "_scipy_dijkstra", None)
        monkeypatch.setattr(backends_module, "_scipy_csr_matrix", None)
        monkeypatch.setattr(backends_module, "_scipy_components", None)
        monkeypatch.setattr(vertex_cut_module, "_scipy_maximum_flow", None)
        # exercise both the python and the numpy Edmonds-Karp regions
        monkeypatch.setattr(vertex_cut_module, "_MATRIX_SMALL_REGION", 30)
        adjacency = _seeded_adjacency(seed)
        reference = balanced_cut(adjacency, backend=HeapBackend())
        fast = balanced_cut(adjacency, backend=CSRBackend(min_vertices=0))
        assert (reference.part_a, reference.cut, reference.part_b) == (
            fast.part_a,
            fast.cut,
            fast.part_b,
        )

    def test_road_network_cuts_are_identical(self):
        network = synthetic_road_network(
            RoadNetworkSpec("cut-smoke", num_vertices=350, seed=2024)
        )
        adjacency = working_graph_from(network.distance_graph)
        reference = balanced_cut(adjacency, backend=HeapBackend())
        fast = balanced_cut(adjacency, backend=CSRBackend(min_vertices=0))
        assert (reference.part_a, reference.cut, reference.part_b) == (
            fast.part_a,
            fast.cut,
            fast.part_b,
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_partition_backend_equality(self, seed):
        adjacency = _seeded_adjacency(seed, n_lo=20, n_hi=80)
        a = balanced_partition(adjacency, backend=HeapBackend())
        b = balanced_partition(adjacency, backend=CSRBackend(min_vertices=0))
        assert a.initial_a == b.initial_a
        assert a.cut_region == b.cut_region
        assert a.initial_b == b.initial_b


class TestFlowSolverEquality:
    def _instance(self, seed: int):
        rng = random.Random(seed)
        n = rng.randrange(12, 60)
        adjacency = _seeded_adjacency(seed, n_lo=n, n_hi=n + 1)
        vertices = sorted(adjacency)
        k = len(vertices)
        attach_s = {vertices[i] for i in range(0, k, 5)}
        attach_t = {vertices[i] for i in range(2, k, 7)} - attach_s
        return adjacency, attach_s, attach_t

    @pytest.mark.parametrize("seed", range(10))
    def test_all_solvers_agree(self, seed, monkeypatch):
        adjacency, attach_s, attach_t = self._instance(seed)
        if not attach_s or not attach_t:
            pytest.skip("degenerate terminal sets")
        reference = minimum_st_vertex_cut(adjacency, attach_s, attach_t, method="dinitz")
        results = {}
        # compact python Edmonds-Karp (small-region branch)
        monkeypatch.setattr(vertex_cut_module, "_MATRIX_SMALL_REGION", 10**9)
        results["python-ek"] = minimum_st_vertex_cut(adjacency, attach_s, attach_t, "matrix")
        # scipy maximum_flow branch
        monkeypatch.setattr(vertex_cut_module, "_MATRIX_SMALL_REGION", 0)
        if vertex_cut_module._scipy_maximum_flow is not None:
            results["scipy"] = minimum_st_vertex_cut(adjacency, attach_s, attach_t, "matrix")
        # numpy Edmonds-Karp fallback branch
        monkeypatch.setattr(vertex_cut_module, "_scipy_maximum_flow", None)
        results["numpy-ek"] = minimum_st_vertex_cut(adjacency, attach_s, attach_t, "matrix")
        for name, result in results.items():
            assert result.cut_size == reference.cut_size, name
            assert result.cut_closest_to_source == reference.cut_closest_to_source, name
            assert result.cut_closest_to_sink == reference.cut_closest_to_sink, name

    def test_unknown_method_rejected(self):
        adjacency = _seeded_adjacency(1, n_lo=10, n_hi=11)
        with pytest.raises(ValueError, match="flow method"):
            minimum_st_vertex_cut(adjacency, {0}, {1}, method="bogus")

    def test_registry_matches_solver_table(self):
        """Every registered method has a solver and vice versa - a new
        kernel cannot be wired into one table and forgotten in the other."""
        assert set(FLOW_METHODS) == set(vertex_cut_module._SOLVERS)


class TestCrossSolverFuzz:
    """Both canonical cuts bit-identical across every registered solver.

    The registry methods differ in algorithm (Dinitz, Edmonds-Karp,
    scipy max-flow, FIFO push-relabel) but the canonical cuts depend only
    on residual reachability, which is unique across all maximum flows.
    ``force_kernels`` drops the small-region thresholds to zero so the
    large-region kernels (scipy matrix path, push-relabel proper) run
    even on these deliberately small fuzz instances instead of quietly
    delegating to the shared Edmonds-Karp loop.
    """

    def _assert_methods_agree(self, adjacency, attach_s, attach_t):
        reference = minimum_st_vertex_cut(adjacency, attach_s, attach_t, method="dinitz")
        for method in FLOW_METHODS:
            result = minimum_st_vertex_cut(adjacency, attach_s, attach_t, method=method)
            assert result.cut_size == reference.cut_size, method
            assert result.cut_closest_to_source == reference.cut_closest_to_source, method
            assert result.cut_closest_to_sink == reference.cut_closest_to_sink, method
        return reference

    def _force_kernels(self, monkeypatch):
        monkeypatch.setattr(vertex_cut_module, "_MATRIX_SMALL_REGION", 0)
        monkeypatch.setattr(vertex_cut_module, "_PUSH_RELABEL_SMALL_REGION", 0)

    @pytest.mark.parametrize("force_kernels", [False, True])
    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_random_graphs(self, seed, force_kernels, monkeypatch):
        if force_kernels:
            self._force_kernels(monkeypatch)
        rng = random.Random(1000 + seed)
        adjacency = _seeded_adjacency(seed, n_lo=15, n_hi=70)
        vertices = sorted(adjacency)
        k = len(vertices)
        attach_s = {vertices[i] for i in range(0, k, rng.randrange(3, 6))}
        attach_t = {vertices[i] for i in range(1, k, rng.randrange(4, 8))} - attach_s
        if not attach_s or not attach_t:
            pytest.skip("degenerate terminal sets")
        self._assert_methods_agree(adjacency, attach_s, attach_t)

    @pytest.mark.parametrize("force_kernels", [False, True])
    def test_caterpillar(self, force_kernels, monkeypatch):
        from repro.graph.builders import caterpillar_graph

        if force_kernels:
            self._force_kernels(monkeypatch)
        graph = caterpillar_graph(spine=9, legs=2, weight=3.0)
        adjacency = working_graph_from(graph)
        spine = list(range(9))  # vertices 0..spine-1 form the spine path
        result = self._assert_methods_agree(adjacency, {spine[0]}, {spine[-1]})
        # a path-shaped spine separates with one vertex
        assert result.cut_size == 1

    @pytest.mark.parametrize("force_kernels", [False, True])
    def test_disconnected_terminals(self, force_kernels, monkeypatch):
        """Terminals in different components: max flow 0, both cuts empty."""
        if force_kernels:
            self._force_kernels(monkeypatch)
        a = _seeded_adjacency(5, n_lo=12, n_hi=20)
        b = _seeded_adjacency(6, n_lo=12, n_hi=20)
        offset = max(a) + 1
        merged = {v: dict(nbrs) for v, nbrs in a.items()}
        for v, nbrs in b.items():
            merged[v + offset] = {w + offset: weight for w, weight in nbrs.items()}
        result = self._assert_methods_agree(merged, {min(a)}, {min(b) + offset})
        assert result.cut_size == 0
        assert result.cut_closest_to_source == []
        assert result.cut_closest_to_sink == []


class _FallbackForbidden(HeapBackend):
    """Fallback that fails the test if the Dial eligibility path bails."""

    def sssp_many(self, flat, sources):
        raise AssertionError("DialBackend fell back on an eligible snapshot")

    def dist_and_prune_many(self, flat, roots, prune_sets):
        raise AssertionError("DialBackend fell back on an eligible snapshot")


class TestDialBackendEquality:
    """Bucket-queue SSSP is exactly - not approximately - the heap Dijkstra.

    ``_seeded_adjacency`` draws small integer weights, so every snapshot
    in the recursion is Dial-eligible; the forbidden fallback proves the
    bucket queue (and not a silent delegate) produced the results.
    """

    @pytest.mark.parametrize("seed", range(6))
    def test_dial_and_heap_cuts_are_identical(self, seed):
        adjacency = _seeded_adjacency(seed)
        reference = balanced_cut(adjacency, backend=HeapBackend())
        dial = balanced_cut(
            adjacency, backend=DialBackend(fallback=_FallbackForbidden())
        )
        assert (reference.part_a, reference.cut, reference.part_b) == (
            dial.part_a,
            dial.cut,
            dial.part_b,
        )
        assert separates(adjacency, dial)

    @pytest.mark.parametrize("seed", [1, 8])
    def test_dial_rows_bit_identical_on_dyadic_weights(self, seed):
        """Quarter-integer weights scale by 2**2: still exact float64."""
        rng = random.Random(seed)
        n = 60
        edges = []
        for v in range(1, n):
            edges.append((rng.randrange(v), v, rng.randrange(1, 40) * 0.25))
        for _ in range(2 * n):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v, rng.randrange(1, 40) * 0.25))
        adjacency = working_graph_from(graph_from_edges(edges, num_vertices=n))
        flat = FlatWorkingGraph(adjacency)
        sources = list(range(0, n, 7))
        heap_rows = HeapBackend().sssp_many(flat, sources)
        dial_rows = DialBackend(fallback=_FallbackForbidden()).sssp_many(flat, sources)
        assert [list(row) for row in dial_rows] == [list(row) for row in heap_rows]


class TestValidationAndDedupe:
    @pytest.mark.parametrize("beta", [0.0, -0.1, 0.6, 1.5])
    def test_balanced_cut_validates_beta(self, beta):
        adjacency = _seeded_adjacency(0, n_lo=10, n_hi=11)
        with pytest.raises(ValueError, match="beta"):
            balanced_cut(adjacency, beta)

    def test_balanced_cut_requires_a_subgraph(self):
        with pytest.raises(ValueError, match="adjacency"):
            balanced_cut()

    def test_seed_search_memo_reuses_first_row(self):
        """On a path, the farthest vertex from seed_a is the start vertex
        again, so the third seed search must hit the memo instead of
        re-running (the double-BFS dedupe)."""

        calls = []

        class CountingBackend(HeapBackend):
            def sssp_many(self, flat, sources):
                calls.extend(int(s) for s in sources)
                return super().sssp_many(flat, sources)

        path = graph_from_edges(
            [(i, i + 1, 1.0) for i in range(30)], num_vertices=31
        )
        balanced_partition(working_graph_from(path), backend=CountingBackend())
        # arbitrary start 0 -> seed_a = 30 -> farthest from 30 is 0 again:
        # exactly two searches run, the third reuses the first row
        assert calls == [0, 30]


class TestFlatShortcutPaths:
    """The dict-free shortcut/snapshot paths match the dict reference."""

    def _cut_setup(self, seed: int):
        from repro.partition.working_graph import dijkstra_adjacency

        adjacency = _seeded_adjacency(seed, n_lo=50, n_hi=90)
        result = balanced_cut(adjacency, beta=0.25)
        if not result.cut or not result.part_a:
            pytest.skip("degenerate cut for this seed")
        cut_distances = {
            c: dijkstra_adjacency(adjacency, c) for c in result.cut
        }
        return adjacency, result, cut_distances

    @pytest.mark.parametrize("seed", [3, 11, 27])
    def test_compute_shortcuts_flat_matches_dict(self, seed):
        from repro.partition.shortcuts import compute_shortcuts

        adjacency, result, cut_distances = self._cut_setup(seed)
        flat = FlatWorkingGraph(adjacency)
        for part in (result.part_a, result.part_b):
            via_dict = compute_shortcuts(adjacency, result.cut, part, cut_distances)
            via_flat = compute_shortcuts(
                None, result.cut, part, cut_distances, flat=flat
            )
            via_within = compute_shortcuts(
                None,
                result.cut,
                part,
                cut_distances,
                flat=flat,
                within_flat=flat.induce(part),
            )
            assert via_flat == via_dict
            assert via_within == via_dict

    @pytest.mark.parametrize("seed", [3, 11, 27])
    def test_induce_with_shortcuts_matches_child_adjacency(self, seed):
        from repro.partition.shortcuts import child_adjacency, compute_shortcuts
        from repro.partition.working_graph import adjacency_from_csr

        adjacency, result, cut_distances = self._cut_setup(seed)
        flat = FlatWorkingGraph(adjacency)
        for part in (result.part_a, result.part_b):
            shortcuts = compute_shortcuts(adjacency, result.cut, part, cut_distances)
            reference = child_adjacency(adjacency, part, shortcuts)
            child = flat.induce_with_shortcuts(part, shortcuts)
            assert adjacency_from_csr(child) == reference

    @pytest.mark.parametrize("seed", [5, 19])
    def test_adjacency_from_csr_round_trips(self, seed):
        from repro.partition.working_graph import adjacency_from_csr

        adjacency = _seeded_adjacency(seed, n_lo=30, n_hi=60)
        flat = FlatWorkingGraph(adjacency)
        rebuilt = adjacency_from_csr(flat)
        assert rebuilt == adjacency
        # re-flattening reproduces the snapshot's exact edge order
        again = FlatWorkingGraph(rebuilt)
        assert again.vertices == flat.vertices
        assert again.indptr == flat.indptr
        assert again.indices == flat.indices
        assert again.weights == flat.weights
