"""FlatLabelling: lossless round-trips and equivalence with the nested form."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.flat import FlatLabelling, FlatWorkingGraph
from repro.core.index import HC2LIndex
from repro.core.labelling import HC2LLabelling
from repro.core.query import core_distance
from repro.graph.builders import graph_from_edges

from helpers import random_query_pairs


def random_nested_labelling(seed: int, num_vertices: int = 12) -> HC2LLabelling:
    """A random nested labelling with uneven level counts and array lengths."""
    rng = random.Random(seed)
    labelling = HC2LLabelling(num_vertices)
    for v in range(num_vertices):
        for _ in range(rng.randrange(0, 4)):
            array = [rng.uniform(0.0, 100.0) for _ in range(rng.randrange(0, 5))]
            labelling.append_level(v, array)
    return labelling


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_nested_flat_nested_is_lossless(self, seed):
        nested = random_nested_labelling(seed)
        flat = FlatLabelling.from_labelling(nested)
        back = flat.to_labelling()
        assert back.labels == nested.labels
        assert back.num_vertices == nested.num_vertices

    @pytest.mark.parametrize("seed", range(4))
    def test_flat_nested_flat_is_identity(self, seed):
        flat = FlatLabelling.from_labelling(random_nested_labelling(seed))
        again = FlatLabelling.from_labelling(flat.to_labelling())
        assert again == flat

    def test_empty_labelling(self):
        flat = FlatLabelling.from_labelling(HC2LLabelling(0))
        assert flat.total_entries() == 0
        assert flat.to_labelling().labels == []

    def test_vertices_without_levels(self):
        nested = HC2LLabelling(3)
        nested.append_level(1, [1.0, 2.0])
        flat = FlatLabelling.from_labelling(nested)
        assert flat.num_levels(0) == 0
        assert flat.num_levels(1) == 1
        assert flat.level_array(1, 0) == [1.0, 2.0]
        assert flat.to_labelling().labels == nested.labels


class TestPartitioning:
    """slice_vertices / partition / concat: lossless, re-based, guarded."""

    @pytest.mark.parametrize("seed", range(4))
    def test_concat_partition_is_identity(self, seed):
        flat = FlatLabelling.from_labelling(random_nested_labelling(seed, num_vertices=17))
        for boundaries in ([0, 17], [0, 5, 17], [0, 1, 6, 12, 17], [0, 0, 17, 17]):
            parts = flat.partition(boundaries)
            assert len(parts) == len(boundaries) - 1
            assert FlatLabelling.concat(parts) == flat

    def test_slice_is_self_contained(self):
        flat = FlatLabelling.from_labelling(random_nested_labelling(3, num_vertices=10))
        part = flat.slice_vertices(4, 8)
        assert part.num_vertices == 4
        # re-based index arrays: the slice starts at offset zero
        assert part.vertex_indptr[0] == 0
        assert part.level_indptr[0] == 0
        assert part.vertex_indptr.dtype == np.int64
        assert part.level_indptr.dtype == np.int64
        assert part.values.dtype == np.float64
        # local vertex v maps to parent vertex v + 4, level by level
        for local in range(4):
            assert part.num_levels(local) == flat.num_levels(local + 4)
            for depth in range(part.num_levels(local)):
                assert part.level_array(local, depth) == flat.level_array(local + 4, depth)

    def test_slice_values_are_views_not_copies(self):
        flat = FlatLabelling.from_labelling(random_nested_labelling(1, num_vertices=9))
        part = flat.slice_vertices(2, 7)
        assert part.values.base is not None  # zero-copy view of the parent buffer

    def test_empty_and_full_slices(self):
        flat = FlatLabelling.from_labelling(random_nested_labelling(2, num_vertices=6))
        assert flat.slice_vertices(0, 6) == flat
        empty = flat.slice_vertices(3, 3)
        assert empty.num_vertices == 0
        assert empty.total_entries() == 0

    def test_concat_of_nothing_is_empty(self):
        empty = FlatLabelling.concat([])
        assert empty.num_vertices == 0
        assert empty.total_entries() == 0

    def test_invalid_ranges_rejected(self):
        flat = FlatLabelling.from_labelling(random_nested_labelling(0, num_vertices=5))
        with pytest.raises(ValueError):
            flat.slice_vertices(3, 2)
        with pytest.raises(ValueError):
            flat.slice_vertices(0, 6)
        with pytest.raises(ValueError):
            flat.slice_vertices(-1, 3)
        with pytest.raises(ValueError):
            flat.partition([0, 3])  # must end at num_vertices
        with pytest.raises(ValueError):
            flat.partition([1, 5])  # must start at 0
        with pytest.raises(ValueError):
            flat.partition([0, 4, 2, 5])  # must be monotone

    def test_even_boundaries(self):
        assert FlatLabelling.even_boundaries(10, 1) == [0, 10]
        assert FlatLabelling.even_boundaries(10, 4) == [0, 2, 5, 8, 10]
        assert FlatLabelling.even_boundaries(2, 4)[0] == 0
        assert FlatLabelling.even_boundaries(2, 4)[-1] == 2
        with pytest.raises(ValueError):
            FlatLabelling.even_boundaries(10, 0)

    def test_writable_memmap_rejected(self, tmp_path):
        """A shard must never be able to scribble on shared label pages."""
        flat = FlatLabelling.from_labelling(random_nested_labelling(4, num_vertices=5))
        path = tmp_path / "values.npy"
        np.save(path, flat.values)
        writable = np.load(path, mmap_mode="r+")
        with pytest.raises(ValueError, match="read-only"):
            FlatLabelling(flat.num_vertices, writable, flat.level_indptr, flat.vertex_indptr)
        # the read-only mapping the serving layer hands out is accepted
        readonly = np.load(path, mmap_mode="r")
        rebuilt = FlatLabelling(
            flat.num_vertices, readonly, flat.level_indptr, flat.vertex_indptr
        )
        assert rebuilt == flat


class TestMetricsParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_size_metrics_match_nested(self, seed):
        nested = random_nested_labelling(seed)
        flat = FlatLabelling.from_labelling(nested)
        assert flat.total_entries() == nested.total_entries()
        assert flat.size_bytes() == nested.size_bytes()
        assert flat.average_label_entries() == nested.average_label_entries()
        assert flat.max_label_entries() == nested.max_label_entries()
        for v in range(nested.num_vertices):
            assert flat.entries_of(v) == nested.entries_of(v)
            assert flat.num_levels(v) == nested.num_levels(v)

    def test_built_index_metrics_match(self, small_graph):
        index = HC2LIndex.build(small_graph)
        flat = index.flat_labelling()
        assert flat.total_entries() == index.labelling.total_entries()
        assert flat.size_bytes() == index.labelling.size_bytes()


class TestQueryEquivalence:
    def test_core_distance_same_on_either_backend(self, small_graph, query_pairs_small):
        """core_distance answers identically from nested and flat labels."""
        index = HC2LIndex.build(small_graph, contract=False)
        flat = index.flat_labelling()
        for s, t in query_pairs_small:
            nested_value = core_distance(index.hierarchy, index.labelling, s, t)
            flat_value = core_distance(index.hierarchy, flat, s, t)
            assert nested_value == flat_value

    def test_level_views_match_nested_arrays(self, small_graph):
        index = HC2LIndex.build(small_graph)
        flat = index.flat_labelling()
        labelling = index.labelling
        for v in range(labelling.num_vertices):
            for depth in range(labelling.num_levels(v)):
                assert flat.level_array(v, depth) == labelling.level_array(v, depth)
                assert np.array_equal(
                    flat.level_view(v, depth), np.asarray(labelling.level_array(v, depth))
                )

    def test_level_view_out_of_range(self, small_graph):
        index = HC2LIndex.build(small_graph)
        flat = index.flat_labelling()
        with pytest.raises(IndexError):
            flat.level_view(0, flat.num_levels(0))


class TestFlatWorkingGraph:
    def test_csr_matches_adjacency(self):
        graph = graph_from_edges([(0, 1, 2.0), (1, 2, 3.0), (0, 2, 10.0)])
        adjacency = graph.adjacency_dict()
        flat = FlatWorkingGraph(adjacency)
        assert flat.vertices == [0, 1, 2]
        for v in adjacency:
            dense = flat.dense_id[v]
            neighbours = {
                flat.vertices[flat.indices[i]]: flat.weights[i]
                for i in range(flat.indptr[dense], flat.indptr[dense + 1])
            }
            assert neighbours == adjacency[v]

    def test_dense_ids_preserve_order(self):
        adjacency = {7: {3: 1.0}, 3: {7: 1.0}, 9: {}}
        flat = FlatWorkingGraph(adjacency)
        assert flat.vertices == [3, 7, 9]
        assert flat.dense_ids([9, 3]) == [2, 0]


class TestConstructorValidation:
    def test_mismatched_indptr_rejected(self):
        with pytest.raises(ValueError):
            FlatLabelling(
                3,
                values=np.zeros(0),
                level_indptr=np.zeros(1, dtype=np.int64),
                vertex_indptr=np.zeros(2, dtype=np.int64),
            )


def test_random_graph_equivalence_property():
    """Random graphs: flat vs nested labels agree on every random query."""
    rng = random.Random(1234)
    for trial in range(4):
        n = rng.randrange(10, 40)
        edges = []
        for v in range(1, n):
            u = rng.randrange(v)
            edges.append((u, v, rng.uniform(1.0, 5.0)))
        for _ in range(n // 2):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v, rng.uniform(1.0, 5.0)))
        graph = graph_from_edges(edges, num_vertices=n)
        index = HC2LIndex.build(graph, leaf_size=4)
        flat = index.flat_labelling()
        assert flat.to_labelling().labels == index.labelling.labels
        for s, t in random_query_pairs(graph, 30, seed=trial):
            assert index.distance(s, t) == index.engine.distance(s, t)
