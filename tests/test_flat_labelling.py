"""FlatLabelling: lossless round-trips and equivalence with the nested form."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.flat import FlatLabelling, FlatWorkingGraph
from repro.core.index import HC2LIndex
from repro.core.labelling import HC2LLabelling
from repro.core.query import core_distance
from repro.graph.builders import graph_from_edges

from helpers import random_query_pairs


def random_nested_labelling(seed: int, num_vertices: int = 12) -> HC2LLabelling:
    """A random nested labelling with uneven level counts and array lengths."""
    rng = random.Random(seed)
    labelling = HC2LLabelling(num_vertices)
    for v in range(num_vertices):
        for _ in range(rng.randrange(0, 4)):
            array = [rng.uniform(0.0, 100.0) for _ in range(rng.randrange(0, 5))]
            labelling.append_level(v, array)
    return labelling


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_nested_flat_nested_is_lossless(self, seed):
        nested = random_nested_labelling(seed)
        flat = FlatLabelling.from_labelling(nested)
        back = flat.to_labelling()
        assert back.labels == nested.labels
        assert back.num_vertices == nested.num_vertices

    @pytest.mark.parametrize("seed", range(4))
    def test_flat_nested_flat_is_identity(self, seed):
        flat = FlatLabelling.from_labelling(random_nested_labelling(seed))
        again = FlatLabelling.from_labelling(flat.to_labelling())
        assert again == flat

    def test_empty_labelling(self):
        flat = FlatLabelling.from_labelling(HC2LLabelling(0))
        assert flat.total_entries() == 0
        assert flat.to_labelling().labels == []

    def test_vertices_without_levels(self):
        nested = HC2LLabelling(3)
        nested.append_level(1, [1.0, 2.0])
        flat = FlatLabelling.from_labelling(nested)
        assert flat.num_levels(0) == 0
        assert flat.num_levels(1) == 1
        assert flat.level_array(1, 0) == [1.0, 2.0]
        assert flat.to_labelling().labels == nested.labels


class TestMetricsParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_size_metrics_match_nested(self, seed):
        nested = random_nested_labelling(seed)
        flat = FlatLabelling.from_labelling(nested)
        assert flat.total_entries() == nested.total_entries()
        assert flat.size_bytes() == nested.size_bytes()
        assert flat.average_label_entries() == nested.average_label_entries()
        assert flat.max_label_entries() == nested.max_label_entries()
        for v in range(nested.num_vertices):
            assert flat.entries_of(v) == nested.entries_of(v)
            assert flat.num_levels(v) == nested.num_levels(v)

    def test_built_index_metrics_match(self, small_graph):
        index = HC2LIndex.build(small_graph)
        flat = index.flat_labelling()
        assert flat.total_entries() == index.labelling.total_entries()
        assert flat.size_bytes() == index.labelling.size_bytes()


class TestQueryEquivalence:
    def test_core_distance_same_on_either_backend(self, small_graph, query_pairs_small):
        """core_distance answers identically from nested and flat labels."""
        index = HC2LIndex.build(small_graph, contract=False)
        flat = index.flat_labelling()
        for s, t in query_pairs_small:
            nested_value = core_distance(index.hierarchy, index.labelling, s, t)
            flat_value = core_distance(index.hierarchy, flat, s, t)
            assert nested_value == flat_value

    def test_level_views_match_nested_arrays(self, small_graph):
        index = HC2LIndex.build(small_graph)
        flat = index.flat_labelling()
        labelling = index.labelling
        for v in range(labelling.num_vertices):
            for depth in range(labelling.num_levels(v)):
                assert flat.level_array(v, depth) == labelling.level_array(v, depth)
                assert np.array_equal(
                    flat.level_view(v, depth), np.asarray(labelling.level_array(v, depth))
                )

    def test_level_view_out_of_range(self, small_graph):
        index = HC2LIndex.build(small_graph)
        flat = index.flat_labelling()
        with pytest.raises(IndexError):
            flat.level_view(0, flat.num_levels(0))


class TestFlatWorkingGraph:
    def test_csr_matches_adjacency(self):
        graph = graph_from_edges([(0, 1, 2.0), (1, 2, 3.0), (0, 2, 10.0)])
        adjacency = graph.adjacency_dict()
        flat = FlatWorkingGraph(adjacency)
        assert flat.vertices == [0, 1, 2]
        for v in adjacency:
            dense = flat.dense_id[v]
            neighbours = {
                flat.vertices[flat.indices[i]]: flat.weights[i]
                for i in range(flat.indptr[dense], flat.indptr[dense + 1])
            }
            assert neighbours == adjacency[v]

    def test_dense_ids_preserve_order(self):
        adjacency = {7: {3: 1.0}, 3: {7: 1.0}, 9: {}}
        flat = FlatWorkingGraph(adjacency)
        assert flat.vertices == [3, 7, 9]
        assert flat.dense_ids([9, 3]) == [2, 0]


class TestConstructorValidation:
    def test_mismatched_indptr_rejected(self):
        with pytest.raises(ValueError):
            FlatLabelling(
                3,
                values=np.zeros(0),
                level_indptr=np.zeros(1, dtype=np.int64),
                vertex_indptr=np.zeros(2, dtype=np.int64),
            )


def test_random_graph_equivalence_property():
    """Random graphs: flat vs nested labels agree on every random query."""
    rng = random.Random(1234)
    for trial in range(4):
        n = rng.randrange(10, 40)
        edges = []
        for v in range(1, n):
            u = rng.randrange(v)
            edges.append((u, v, rng.uniform(1.0, 5.0)))
        for _ in range(n // 2):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v, rng.uniform(1.0, 5.0)))
        graph = graph_from_edges(edges, num_vertices=n)
        index = HC2LIndex.build(graph, leaf_size=4)
        flat = index.flat_labelling()
        assert flat.to_labelling().labels == index.labelling.labels
        for s, t in random_query_pairs(graph, 30, seed=trial):
            assert index.distance(s, t) == index.engine.distance(s, t)
