"""Unit tests for Dinitz max-flow and the minimum s-t vertex cut reduction."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.flow.dinitz import DinitzMaxFlow, FlowNetwork
from repro.flow.vertex_cut import is_vertex_cut, minimum_st_vertex_cut
from repro.utils.rng import make_rng


class TestDinitz:
    def test_single_edge(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 3.0)
        assert DinitzMaxFlow(network, 0, 1).solve() == 3.0

    def test_series_edges_bottleneck(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 5.0)
        network.add_edge(1, 2, 2.0)
        assert DinitzMaxFlow(network, 0, 2).solve() == 2.0

    def test_parallel_paths_sum(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1.0)
        network.add_edge(1, 3, 1.0)
        network.add_edge(0, 2, 2.0)
        network.add_edge(2, 3, 2.0)
        assert DinitzMaxFlow(network, 0, 3).solve() == 3.0

    def test_disconnected_is_zero(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1.0)
        network.add_edge(2, 3, 1.0)
        assert DinitzMaxFlow(network, 0, 3).solve() == 0.0

    def test_source_equals_sink_rejected(self):
        network = FlowNetwork(2)
        with pytest.raises(ValueError):
            DinitzMaxFlow(network, 1, 1)

    def test_negative_capacity_rejected(self):
        network = FlowNetwork(2)
        with pytest.raises(ValueError):
            network.add_edge(0, 1, -1.0)

    def test_flow_limit_caps_result(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 10.0)
        assert DinitzMaxFlow(network, 0, 1).solve(flow_limit=4.0) == 4.0

    def test_source_and_sink_sides_after_solve(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1.0)
        network.add_edge(1, 2, 1.0)
        network.add_edge(2, 3, 1.0)
        solver = DinitzMaxFlow(network, 0, 3)
        solver.solve()
        assert 0 in solver.source_side()
        assert 3 in solver.sink_side()
        # the graph is saturated, so the two residual sides never overlap
        assert not (solver.source_side() & solver.sink_side())

    def test_matches_networkx_on_random_networks(self):
        rng = make_rng(99)
        for trial in range(5):
            n = 12
            network = FlowNetwork(n)
            nxg = nx.DiGraph()
            nxg.add_nodes_from(range(n))
            for _ in range(36):
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                capacity = rng.randint(1, 5)
                network.add_edge(u, v, float(capacity))
                if nxg.has_edge(u, v):
                    nxg[u][v]["capacity"] += capacity
                else:
                    nxg.add_edge(u, v, capacity=capacity)
            expected = nx.maximum_flow_value(nxg, 0, n - 1) if nxg.has_node(0) else 0
            assert DinitzMaxFlow(network, 0, n - 1).solve() == pytest.approx(expected)


class TestMinimumVertexCut:
    def _grid_adjacency(self, rows: int, cols: int):
        adjacency = {}
        def vid(r, c):
            return r * cols + c
        for r in range(rows):
            for c in range(cols):
                adjacency.setdefault(vid(r, c), {})
                if c + 1 < cols:
                    adjacency.setdefault(vid(r, c + 1), {})
                    adjacency[vid(r, c)][vid(r, c + 1)] = 1.0
                    adjacency[vid(r, c + 1)][vid(r, c)] = 1.0
                if r + 1 < rows:
                    adjacency.setdefault(vid(r + 1, c), {})
                    adjacency[vid(r, c)][vid(r + 1, c)] = 1.0
                    adjacency[vid(r + 1, c)][vid(r, c)] = 1.0
        return adjacency

    def test_path_cut_is_single_vertex(self):
        adjacency = {0: {1: 1.0}, 1: {0: 1.0, 2: 1.0}, 2: {1: 1.0}}
        result = minimum_st_vertex_cut(adjacency, [0], [2])
        assert result.cut_size == 1
        # any single vertex of the path separates the virtual terminals;
        # both canonical cuts must be valid single-vertex cuts
        for cut in result.candidate_cuts():
            assert len(cut) == 1
            assert is_vertex_cut(adjacency, cut, [0], [2]) or cut[0] in (0, 2)

    def test_interior_cut_when_terminals_excluded(self):
        # exclude the endpoint vertices from the cut region: the only
        # remaining separator is the middle vertex
        adjacency = {1: {2: 1.0}, 2: {1: 1.0, 3: 1.0}, 3: {2: 1.0}}
        result = minimum_st_vertex_cut(adjacency, [1], [3])
        assert result.cut_size == 1

    def test_grid_cut_size_equals_width(self):
        # separating the left column from the right column of a 3-wide grid
        adjacency = self._grid_adjacency(3, 5)
        left = [r * 5 for r in range(3)]
        right = [r * 5 + 4 for r in range(3)]
        result = minimum_st_vertex_cut(adjacency, left, right)
        assert result.cut_size == 3
        for cut in result.candidate_cuts():
            assert is_vertex_cut(adjacency, cut, left, right)

    def test_direct_terminal_adjacency_forces_terminal_into_cut(self):
        # vertices 0 (attached to S) and 1 (attached to T) share an edge, so
        # one of them must be cut
        adjacency = {0: {1: 1.0}, 1: {0: 1.0}}
        result = minimum_st_vertex_cut(adjacency, [0], [1])
        assert result.cut_size == 1
        assert result.cut_closest_to_source in ([0], [1])

    def test_disconnected_terminals_need_no_cut(self):
        adjacency = {0: {1: 1.0}, 1: {0: 1.0}, 2: {3: 1.0}, 3: {2: 1.0}}
        result = minimum_st_vertex_cut(adjacency, [0], [3])
        assert result.cut_size == 0
        assert result.cut_closest_to_source == []

    def test_cut_matches_networkx_min_node_cut(self):
        # networkx's minimum_node_cut(G, s, t) never removes the terminals,
        # so mirror that setup: the cut region excludes s and t, the virtual
        # terminals attach to their neighbourhoods.
        for trial in range(4):
            nxg = nx.connected_watts_strogatz_graph(18, 4, 0.3, seed=trial)
            s, t = 0, 9
            if nxg.has_edge(s, t):
                continue  # networkx requires non-adjacent terminals
            region = [v for v in nxg.nodes if v not in (s, t)]
            adjacency = {v: {} for v in region}
            for u, v in nxg.edges:
                if u in adjacency and v in adjacency:
                    adjacency[u][v] = 1.0
                    adjacency[v][u] = 1.0
            sources = [v for v in nxg.neighbors(s)]
            sinks = [v for v in nxg.neighbors(t)]
            result = minimum_st_vertex_cut(adjacency, sources, sinks)
            expected = len(nx.minimum_node_cut(nxg, s, t))
            assert result.cut_size == expected
            for cut in result.candidate_cuts():
                assert len(cut) == expected

    def test_both_candidate_cuts_are_valid(self):
        adjacency = self._grid_adjacency(4, 6)
        left = [r * 6 for r in range(4)]
        right = [r * 6 + 5 for r in range(4)]
        result = minimum_st_vertex_cut(adjacency, left, right)
        cuts = result.candidate_cuts()
        assert 1 <= len(cuts) <= 2
        for cut in cuts:
            assert len(cut) == result.cut_size
            assert is_vertex_cut(adjacency, cut, left, right)

    def test_is_vertex_cut_rejects_non_cut(self):
        adjacency = self._grid_adjacency(2, 3)
        assert not is_vertex_cut(adjacency, [], [0], [2])
        assert is_vertex_cut(adjacency, [1, 4], [0], [2])
