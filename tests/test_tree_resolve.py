"""Euler-tour tree resolver vs the scalar LCA walk (regression pin).

PR 3's conformance suite never exercised the same-attachment-tree branch
of ``BatchResolver.resolve`` (its road-network fixtures contract only
shallow fringes).  These tests pin the vectorised Euler-tour + RMQ
resolver against the original scalar
:meth:`~repro.graph.contraction.ContractedGraph.tree_lca_distance` walk
on *every* same-root pair of fixture trees, asserting bit-identical
results (``==``, no tolerance).
"""

from __future__ import annotations

import itertools
import random

import numpy as np
import pytest

from repro.core.engine import BatchResolver
from repro.core.index import HC2LIndex
from repro.core.tree_resolve import TreeDistanceResolver
from repro.graph.builders import caterpillar_graph, graph_from_edges, path_graph, star_graph
from repro.graph.contraction import contract_degree_one


def _all_same_root_pairs(contraction):
    n = contraction.num_original
    root = contraction.root
    return [
        (u, v)
        for u, v in itertools.product(range(n), repeat=2)
        if u != v and root[u] == root[v]
    ]


def _resolver_for(graph) -> TreeDistanceResolver:
    contraction = contract_degree_one(graph)
    return contraction, TreeDistanceResolver(
        parent=np.asarray(contraction.parent, dtype=np.int64),
        depth=np.asarray(contraction.depth, dtype=np.int64),
        root=np.asarray(contraction.root, dtype=np.int64),
        dist_to_root=np.asarray(contraction.dist_to_root, dtype=np.float64),
    )


class TestTreeDistanceResolver:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: caterpillar_graph(9, 3, weight=2.0, leg_weight=3.0),
            lambda: path_graph(17, weight=1.5),
            lambda: star_graph(12, weight=2.5),
        ],
        ids=["caterpillar", "path", "star"],
    )
    def test_bit_identical_on_every_same_root_pair(self, graph_factory):
        """The fixture trees contract entirely; every pair is a tree pair."""
        graph = graph_factory()
        contraction, resolver = _resolver_for(graph)
        pairs = _all_same_root_pairs(contraction)
        assert pairs, "fixture must exercise the same-root path"
        u = np.asarray([p[0] for p in pairs], dtype=np.int64)
        v = np.asarray([p[1] for p in pairs], dtype=np.int64)
        got = resolver.distances(u, v)
        for (a, b), value in zip(pairs, got.tolist()):
            assert contraction.tree_lca_distance(a, b) == value

    def test_lca_matches_parent_walk(self):
        """The RMQ LCA equals the textbook two-pointer walk on a random tree."""
        rng = random.Random(11)
        n = 60
        edges = [(rng.randrange(v), v, float(rng.randrange(1, 9))) for v in range(1, n)]
        graph = graph_from_edges(edges, num_vertices=n)
        contraction, resolver = _resolver_for(graph)

        def walk_lca(a, b):
            da, db = contraction.depth[a], contraction.depth[b]
            while da > db:
                a, da = contraction.parent[a], da - 1
            while db > da:
                b, db = contraction.parent[b], db - 1
            while a != b:
                a, b = contraction.parent[a], contraction.parent[b]
            return a

        pairs = _all_same_root_pairs(contraction)
        rng.shuffle(pairs)
        pairs = pairs[:500]
        u = np.asarray([p[0] for p in pairs], dtype=np.int64)
        v = np.asarray([p[1] for p in pairs], dtype=np.int64)
        got = resolver.lca(u, v).tolist()
        for (a, b), lca in zip(pairs, got):
            assert walk_lca(a, b) == lca

    def test_empty_and_trivial_trees(self):
        """A graph whose contraction removes nothing yields an empty tour."""
        graph = graph_from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]  # triangle: no degree-1
        )
        _, resolver = _resolver_for(graph)
        assert resolver.num_members == 0


class TestBatchResolverTreePath:
    def test_engine_same_root_pairs_match_scalar_walk(self):
        """End to end: batch distances equal the scalar walk on a caterpillar."""
        graph = caterpillar_graph(8, 2, weight=2.0, leg_weight=5.0)
        # close a cycle so a core survives and trees attach to it
        graph.add_edge(0, 7, 3.0)
        index = HC2LIndex.build(graph, leaf_size=4)
        contraction = index.contraction
        pairs = _all_same_root_pairs(contraction)
        assert pairs, "caterpillar fringe must form attachment trees"
        batch = index.distances(pairs)
        for (u, v), value in zip(pairs, batch.tolist()):
            assert contraction.tree_lca_distance(u, v) == value
            assert index.distance(u, v) == value

    def test_resolver_scalar_loop_is_gone(self):
        """resolve() must not fall back to per-pair tree_lca_distance calls."""
        graph = caterpillar_graph(6, 2)
        index = HC2LIndex.build(graph, leaf_size=4)
        engine = index.engine
        pairs = _all_same_root_pairs(index.contraction)[:50]
        calls = []
        original = index.contraction.tree_lca_distance
        index.contraction.tree_lca_distance = lambda u, v: calls.append((u, v)) or original(u, v)
        try:
            engine.distances(pairs)
        finally:
            index.contraction.tree_lca_distance = original
        assert calls == [], "batch resolve still loops over tree_lca_distance"

    def test_tree_resolver_is_lazy(self):
        """Core-only batches never build the Euler structure."""
        graph = graph_from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0), (3, 0, 1.0)])
        index = HC2LIndex.build(graph, leaf_size=2)
        engine = index.engine
        engine.distances([(0, 1), (1, 2), (2, 3)])
        assert engine.resolver._tree_resolver is None

    def test_shared_resolver_serves_router_and_engine(self, tmp_path):
        """BatchResolver (and so the tree path) is the same code under ShardRouter."""
        from repro.serving import ShardRouter

        graph = caterpillar_graph(10, 3, weight=1.0, leg_weight=4.0)
        graph.add_edge(0, 9, 2.0)
        index = HC2LIndex.build(graph, leaf_size=4)
        pairs = _all_same_root_pairs(index.contraction)
        path = tmp_path / "tree.npz"
        index.save_sharded(path, num_shards=3)
        router = ShardRouter(path)
        assert isinstance(router.resolver, BatchResolver)
        assert router.distances(pairs).tolist() == index.distances(pairs).tolist()

    def test_deep_chain_spans(self):
        """A long path tree stresses every sparse-table level of the RMQ."""
        graph = path_graph(130, weight=1.0)
        contraction, resolver = _resolver_for(graph)
        pairs = _all_same_root_pairs(contraction)
        u = np.asarray([p[0] for p in pairs], dtype=np.int64)
        v = np.asarray([p[1] for p in pairs], dtype=np.int64)
        got = resolver.distances(u, v)
        # on a unit path the distance is |u - v|
        assert got.tolist() == np.abs(u - v).astype(np.float64).tolist()
