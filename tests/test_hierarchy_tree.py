"""Unit tests for the balanced tree hierarchy data structure."""

from __future__ import annotations

import pytest

from repro.core.construction import HC2LBuilder
from repro.graph.search import dijkstra
from repro.hierarchy.tree import BalancedTreeHierarchy


def build_manual_hierarchy() -> BalancedTreeHierarchy:
    """Root cut {0,1}; left leaf {2,3}; right internal {4}; right-left leaf {5}."""
    hierarchy = BalancedTreeHierarchy(6)
    root = hierarchy.add_node(0, 0b0, [0, 1], parent=None)
    hierarchy.add_node(1, 0b0, [2, 3], parent=root.index, side="left", is_leaf=True)
    right = hierarchy.add_node(1, 0b1, [4], parent=root.index, side="right")
    hierarchy.add_node(2, 0b10, [5], parent=right.index, side="left", is_leaf=True)
    hierarchy.set_subtree_size(root.index, 6)
    hierarchy.set_subtree_size(1, 2)
    hierarchy.set_subtree_size(right.index, 2)
    hierarchy.set_subtree_size(3, 1)
    return hierarchy


class TestManualHierarchy:
    def test_vertex_assignment(self):
        hierarchy = build_manual_hierarchy()
        assert hierarchy.check_vertex_assignment()
        assert hierarchy.node_of(0).depth == 0
        assert hierarchy.node_of(3).is_leaf
        assert hierarchy.node_of(5).depth == 2

    def test_non_root_requires_side(self):
        hierarchy = BalancedTreeHierarchy(2)
        root = hierarchy.add_node(0, 0, [0], parent=None)
        with pytest.raises(ValueError):
            hierarchy.add_node(1, 0, [1], parent=root.index)

    def test_lca_depth_same_node(self):
        hierarchy = build_manual_hierarchy()
        assert hierarchy.lca_depth(2, 3) == 1
        assert hierarchy.lca_depth(0, 1) == 0

    def test_lca_depth_ancestor_pair(self):
        hierarchy = build_manual_hierarchy()
        # vertex 0 sits at the root; any pair involving it meets at depth 0
        assert hierarchy.lca_depth(0, 5) == 0
        # vertex 4 (depth 1) is an ancestor node of vertex 5 (depth 2)
        assert hierarchy.lca_depth(4, 5) == 1

    def test_lca_depth_cross_subtrees(self):
        hierarchy = build_manual_hierarchy()
        assert hierarchy.lca_depth(2, 5) == 0
        assert hierarchy.lca_depth(3, 4) == 0

    def test_lca_node_matches_depth(self):
        hierarchy = build_manual_hierarchy()
        node = hierarchy.lca_node(2, 5)
        assert node.depth == 0
        assert node.cut == [0, 1]

    def test_ancestors_iteration(self):
        hierarchy = build_manual_hierarchy()
        path = [node.depth for node in hierarchy.ancestors(5)]
        assert path == [0, 1, 2]

    def test_height_and_cut_metrics(self):
        hierarchy = build_manual_hierarchy()
        assert hierarchy.height() == 3
        assert hierarchy.max_cut_size() == 2
        assert hierarchy.num_internal_nodes() == 2
        assert hierarchy.average_cut_size() == pytest.approx(1.5)
        assert hierarchy.lca_storage_bytes() == 8 * 6

    def test_subtree_vertices(self):
        hierarchy = build_manual_hierarchy()
        assert sorted(hierarchy.subtree_vertices(0)) == [0, 1, 2, 3, 4, 5]
        assert sorted(hierarchy.subtree_vertices(2)) == [4, 5]

    def test_describe_keys(self):
        hierarchy = build_manual_hierarchy()
        summary = hierarchy.describe()
        assert {"height", "max_cut", "avg_cut", "nodes", "internal_nodes", "lca_bytes"} <= set(summary)


class TestBuiltHierarchyProperties:
    @pytest.fixture(scope="class")
    def built(self, medium_graph):
        builder = HC2LBuilder(beta=0.2, leaf_size=10)
        hierarchy, labelling, stats = builder.build(medium_graph)
        return medium_graph, hierarchy, labelling

    def test_every_vertex_assigned(self, built):
        _, hierarchy, _ = built
        assert hierarchy.check_vertex_assignment()

    def test_balance_condition(self, built):
        _, hierarchy, _ = built
        assert hierarchy.check_balance(0.2)

    def test_height_bound(self, built):
        graph, hierarchy, _ = built
        import math

        # Lemma 4.2: height <= log_{1/(1-beta)}(n) plus the leaf level slack
        bound = math.log(max(graph.num_vertices, 2)) / math.log(1 / 0.8) + 2
        assert hierarchy.height() <= bound

    def test_lca_cover_property_on_samples(self, built, medium_oracle):
        """Definition 4.1 condition 2: LCA(s,t) holds a vertex on a shortest path."""
        graph, hierarchy, _ = built
        import random

        rng = random.Random(3)
        for _ in range(40):
            s = rng.randrange(graph.num_vertices)
            t = rng.randrange(graph.num_vertices)
            if s == t:
                continue
            expected = medium_oracle.distance(s, t)
            if expected == float("inf"):
                continue
            node = hierarchy.lca_node(s, t)
            via = min(
                (medium_oracle.distance(s, c) + medium_oracle.distance(c, t) for c in node.cut),
                default=float("inf"),
            )
            assert via == pytest.approx(expected, rel=1e-6)

    def test_bits_are_consistent_with_depth(self, built):
        _, hierarchy, _ = built
        for node in hierarchy.nodes:
            assert node.bits < (1 << max(node.depth, 1))
            for vertex in node.cut:
                assert hierarchy.vertex_bits[vertex] == node.bits
                assert hierarchy.vertex_depth[vertex] == node.depth

    def test_parent_child_links(self, built):
        _, hierarchy, _ = built
        for node in hierarchy.nodes:
            for child_index in (node.left, node.right):
                if child_index is not None:
                    child = hierarchy.nodes[child_index]
                    assert child.parent == node.index
                    assert child.depth == node.depth + 1
