"""Tests for the labelling baselines: PLL, HL and PHL."""

from __future__ import annotations

import math

import pytest

from repro.baselines.hub_labelling import HubLabelling
from repro.baselines.phl import PrunedHighwayLabelling, highway_decomposition
from repro.baselines.pll import PrunedLandmarkLabelling, degree_order

from helpers import assert_distance_equal, random_query_pairs


class TestPLL:
    @pytest.fixture(scope="class")
    def pll(self, small_graph):
        return PrunedLandmarkLabelling.build(small_graph)

    def test_matches_oracle(self, pll, small_graph, small_oracle):
        for s, t in random_query_pairs(small_graph, 60, seed=1):
            assert_distance_equal(small_oracle.distance(s, t), pll.distance(s, t))

    def test_self_distance(self, pll):
        assert pll.distance(3, 3) == 0.0

    def test_degree_order_sorted(self, small_graph):
        order = degree_order(small_graph)
        degrees = [small_graph.degree(v) for v in order]
        assert degrees == sorted(degrees, reverse=True)

    def test_rejects_incomplete_order(self, small_graph):
        with pytest.raises(ValueError):
            PrunedLandmarkLabelling.build(small_graph, order=[0, 1, 2])

    def test_label_entries_sorted_by_rank(self, pll):
        for hubs in pll.label_hubs:
            assert hubs == sorted(hubs)

    def test_every_vertex_has_self_entry(self, pll, small_graph):
        for v in range(small_graph.num_vertices):
            hubs = dict(pll.hubs_of(v))
            assert hubs.get(v, None) == 0.0 or any(d == 0.0 for d in hubs.values())

    def test_2hop_cover_property(self, pll, small_graph, small_oracle):
        """For every sampled pair, some common hub lies on a shortest path."""
        for s, t in random_query_pairs(small_graph, 30, seed=4):
            expected = small_oracle.distance(s, t)
            if math.isinf(expected) or s == t:
                continue
            hubs_s = dict(pll.hubs_of(s))
            hubs_t = dict(pll.hubs_of(t))
            best = min(
                (hubs_s[h] + hubs_t[h] for h in hubs_s.keys() & hubs_t.keys()),
                default=math.inf,
            )
            assert best == pytest.approx(expected, rel=1e-6)

    def test_pruning_shrinks_labels(self, small_graph):
        pll = PrunedLandmarkLabelling.build(small_graph)
        assert pll.average_label_size() < small_graph.num_vertices / 2
        assert pll.total_entries() == sum(len(h) for h in pll.label_hubs)
        assert pll.label_size_bytes() > 0

    def test_disconnected(self, disconnected_graph):
        pll = PrunedLandmarkLabelling.build(disconnected_graph)
        assert math.isinf(pll.distance(0, 5))
        assert pll.distance(4, 6) == pytest.approx(1.0)

    def test_hub_count_reporting(self, pll):
        distance, touched = pll.distance_with_hub_count(0, 7)
        assert touched >= 1
        assert distance == pll.distance(0, 7)


class TestHubLabelling:
    def test_ch_order_matches_oracle(self, small_graph, small_oracle):
        hl = HubLabelling.build(small_graph)
        for s, t in random_query_pairs(small_graph, 50, seed=2):
            assert_distance_equal(small_oracle.distance(s, t), hl.distance(s, t))

    def test_degree_order_matches_oracle(self, small_graph, small_oracle):
        hl = HubLabelling.build(small_graph, order_strategy="degree")
        for s, t in random_query_pairs(small_graph, 40, seed=3):
            assert_distance_equal(small_oracle.distance(s, t), hl.distance(s, t))

    def test_explicit_order(self, uniform_grid):
        from repro.graph.search import dijkstra

        order = list(uniform_grid.vertices())
        hl = HubLabelling.build(uniform_grid, order_strategy="given", order=order)
        assert hl.distance(0, 99) == pytest.approx(dijkstra(uniform_grid, 0)[99])

    def test_given_strategy_requires_order(self, uniform_grid):
        with pytest.raises(ValueError):
            HubLabelling.build(uniform_grid, order_strategy="given")

    def test_unknown_strategy_rejected(self, uniform_grid):
        with pytest.raises(ValueError):
            HubLabelling.build(uniform_grid, order_strategy="nope")

    def test_ch_order_gives_smaller_labels_than_degree_order(self, medium_graph):
        ch_based = HubLabelling.build(medium_graph)
        degree_based = HubLabelling.build(medium_graph, order_strategy="degree")
        assert ch_based.average_label_size() <= degree_based.average_label_size()

    def test_size_metrics(self, small_graph):
        hl = HubLabelling.build(small_graph)
        assert hl.total_entries() > small_graph.num_vertices  # at least the self entries
        assert hl.label_size_bytes() == hl.labelling.label_size_bytes()


class TestHighwayDecomposition:
    def test_paths_are_disjoint_and_cover(self, small_graph):
        paths = highway_decomposition(small_graph)
        seen = [v for path in paths for v in path]
        assert len(seen) == len(set(seen)) == small_graph.num_vertices

    def test_paths_are_shortest_paths(self, small_graph, small_oracle):
        paths = highway_decomposition(small_graph)
        for path in paths[:10]:
            if len(path) < 2:
                continue
            length = sum(
                small_graph.edge_weight(a, b) for a, b in zip(path, path[1:])
            )
            assert length == pytest.approx(
                small_oracle.distance(path[0], path[-1]), rel=1e-6
            )

    def test_isolated_vertices_become_singletons(self, disconnected_graph):
        paths = highway_decomposition(disconnected_graph)
        assert [7] in paths


class TestPHL:
    @pytest.fixture(scope="class")
    def phl(self, small_graph):
        return PrunedHighwayLabelling.build(small_graph)

    def test_matches_oracle(self, phl, small_graph, small_oracle):
        for s, t in random_query_pairs(small_graph, 60, seed=5):
            assert_distance_equal(small_oracle.distance(s, t), phl.distance(s, t))

    def test_grid_with_ties(self, uniform_grid):
        from repro.graph.search import dijkstra

        phl = PrunedHighwayLabelling.build(uniform_grid)
        for s, t in random_query_pairs(uniform_grid, 40, seed=6):
            assert_distance_equal(dijkstra(uniform_grid, s)[t], phl.distance(s, t))

    def test_disconnected(self, disconnected_graph):
        phl = PrunedHighwayLabelling.build(disconnected_graph)
        assert math.isinf(phl.distance(0, 4))
        assert phl.distance(0, 3) == pytest.approx(4.0)

    def test_travel_time_weights(self, small_road_network):
        from repro.graph.search import dijkstra

        graph = small_road_network.travel_time_graph
        phl = PrunedHighwayLabelling.build(graph)
        for s, t in random_query_pairs(graph, 40, seed=7):
            assert_distance_equal(dijkstra(graph, s)[t], phl.distance(s, t))

    def test_entries_grouped_by_path(self, phl):
        for entries in phl.labels:
            path_ids = [p for p, _, _ in entries]
            assert path_ids == sorted(path_ids)

    def test_explicit_paths_accepted(self, uniform_grid):
        from repro.graph.search import dijkstra

        paths = highway_decomposition(uniform_grid)
        phl = PrunedHighwayLabelling.build(uniform_grid, paths=paths)
        assert phl.num_paths() == len(paths)
        assert phl.distance(0, 55) == pytest.approx(dijkstra(uniform_grid, 0)[55])

    def test_size_metrics(self, phl, small_graph):
        assert phl.total_entries() >= small_graph.num_vertices
        assert phl.average_label_size() == phl.total_entries() / small_graph.num_vertices
        assert phl.label_size_bytes() == phl.total_entries() * 16 + 8 * small_graph.num_vertices

    def test_hub_count_reporting(self, phl):
        distance, touched = phl.distance_with_hub_count(1, 9)
        assert distance == phl.distance(1, 9)
        assert touched >= 1
