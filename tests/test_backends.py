"""Shortest-path backend seam: bit-identity, fallbacks and selection.

The construction backends (:mod:`repro.core.backends`) promise that the
labels they build are **bit-identical** regardless of which backend ran
the searches - that is what makes ``auto`` safe as a default and the
heap/csr split safe to mix mid-build.  These tests pin that promise on
random graphs, cover the scipy-free numpy fallback and the zero-weight
delegation guard, and check the selection plumbing end to end
(parameters, persistence header, CLI flag).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

import repro.core.backends as backends_module
from repro.core.backends import (
    CSRBackend,
    HeapBackend,
    check_backend_name,
    resolve_backend,
    scipy_available,
)
from repro.core.construction import HC2LBuilder
from repro.core.flat import FlatLabelling, FlatWorkingGraph
from repro.core.index import HC2LIndex, HC2LParameters
from repro.core.pruned_dijkstra import dist_and_prune_dense, prune_flags_from_distances
from repro.graph.builders import graph_from_edges
from repro.graph.graph import Graph

INF = float("inf")


def _random_graph(seed: int, n_lo: int = 20, n_hi: int = 90) -> Graph:
    rng = random.Random(seed)
    n = rng.randrange(n_lo, n_hi)
    edges = [(rng.randrange(v), v, float(rng.randrange(1, 12))) for v in range(1, n)]
    for _ in range(n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((u, v, float(rng.randrange(1, 12))))
    return graph_from_edges(edges, num_vertices=n)


def _flat_for(graph: Graph) -> FlatWorkingGraph:
    return FlatWorkingGraph({v: dict(graph.neighbors(v)) for v in graph.vertices()})


class TestBackendBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_labels_identical_heap_vs_csr(self, seed):
        graph = _random_graph(seed)
        heap_index = HC2LIndex.build(graph, leaf_size=4, backend="heap")
        # min_vertices=0 forces the batched searches even on leaf nodes
        builder = HC2LBuilder(leaf_size=4, backend=CSRBackend(min_vertices=0))
        _, labelling, _ = builder.build(heap_index.contraction.core)
        assert FlatLabelling.from_labelling(labelling) == heap_index.flat_labelling()

    @pytest.mark.parametrize("seed", [5, 6])
    def test_numpy_fallback_matches_heap(self, seed, monkeypatch):
        """With scipy masked out, the Bellman-Ford fallback must agree too."""
        monkeypatch.setattr(backends_module, "_scipy_dijkstra", None)
        monkeypatch.setattr(backends_module, "_scipy_csr_matrix", None)
        graph = _random_graph(seed, n_lo=15, n_hi=40)
        heap_index = HC2LIndex.build(graph, leaf_size=4, backend="heap")
        builder = HC2LBuilder(leaf_size=4, backend=CSRBackend(min_vertices=0))
        _, labelling, _ = builder.build(heap_index.contraction.core)
        assert FlatLabelling.from_labelling(labelling) == heap_index.flat_labelling()

    def test_zero_weight_edges_are_delegated_and_exact(self):
        """scipy drops explicit zeros; the csr backend must route around that."""
        edges = [(0, 1, 0.0), (1, 2, 1.0), (2, 3, 0.0), (3, 0, 2.0), (1, 3, 1.0), (2, 4, 1.0), (4, 0, 1.0)]
        graph = graph_from_edges(edges, num_vertices=5)
        flat = _flat_for(graph)
        csr = CSRBackend(min_vertices=0)
        assert csr._delegate(flat), "zero-weight snapshots must use the heap searches"
        heap_index = HC2LIndex.build(graph, leaf_size=2, backend="heap")
        csr_builder = HC2LBuilder(leaf_size=2, backend=csr)
        _, labelling, _ = csr_builder.build(heap_index.contraction.core)
        assert FlatLabelling.from_labelling(labelling) == heap_index.flat_labelling()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sssp_many_agrees_across_backends(self, seed):
        graph = _random_graph(seed, n_lo=10, n_hi=50)
        flat = _flat_for(graph)
        sources = list(range(0, len(flat.vertices), 3))
        heap_rows = HeapBackend().sssp_many(flat, sources)
        csr_rows = CSRBackend(min_vertices=0).sssp_many(_flat_for(graph), sources)
        for a, b in zip(heap_rows, csr_rows):
            assert list(a) == list(b)


class TestPruneFlagRecovery:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_flags_match_heap_search(self, seed):
        graph = _random_graph(seed, n_lo=10, n_hi=60)
        flat = _flat_for(graph)
        rng = random.Random(seed)
        n = len(flat.vertices)
        for _ in range(6):
            root = rng.randrange(n)
            prune_ids = [v for v in range(n) if rng.random() < 0.2 and v != root]
            dist, through = dist_and_prune_dense(flat, root, prune_ids)
            recovered = prune_flags_from_distances(flat, root, prune_ids, dist)
            assert recovered == through

    def test_zero_weight_ties_are_rejected(self):
        """Zero-weight ties make the heap's flags settle-order dependent, so
        the distance-derived recovery refuses them (the csr backend routes
        such snapshots to the heap search instead)."""
        edges = [
            (0, 1, 1.0), (1, 2, 0.0), (2, 3, 0.0), (3, 4, 0.0),
            (0, 5, 1.0), (5, 2, 0.0), (4, 6, 2.0), (0, 6, 3.0),
        ]
        graph = graph_from_edges(edges, num_vertices=7)
        flat = _flat_for(graph)
        dist, _ = dist_and_prune_dense(flat, 0, [5])
        with pytest.raises(ValueError, match="strictly positive"):
            prune_flags_from_distances(flat, 0, [5], dist)

    def test_unreachable_vertices_stay_unflagged(self):
        graph = graph_from_edges([(0, 1, 1.0), (2, 3, 1.0)], num_vertices=4)
        flat = _flat_for(graph)
        dist, through = dist_and_prune_dense(flat, 0, [1])
        recovered = prune_flags_from_distances(flat, 0, [1], dist)
        assert recovered == through
        assert recovered[2] is False and recovered[3] is False


class TestBackendSelection:
    def test_resolve_names(self):
        assert resolve_backend("heap").name == "heap"
        assert resolve_backend("csr").name == "csr"
        assert resolve_backend("dial").name == "dial"
        expected_auto = "csr" if scipy_available() else "dial"
        assert resolve_backend("auto").name == expected_auto
        assert resolve_backend(None).name == expected_auto
        instance = CSRBackend(min_vertices=7)
        assert resolve_backend(instance) is instance

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown shortest-path backend"):
            resolve_backend("bogus")
        # "dial" is a first-class name, not a typo
        assert check_backend_name("dial") == "dial"
        with pytest.raises(ValueError, match="unknown shortest-path backend"):
            HC2LParameters(backend="bogus")

    def test_non_string_specs_rejected_with_typed_error(self):
        # bools/numbers/None-likes must not fall through to the generic
        # unknown-name ValueError: they are caller bugs, named as such
        for spec in (True, False, 0, 1.5, object(), b"csr", ["csr"]):
            with pytest.raises(TypeError, match="must be a string"):
                resolve_backend(spec)
            with pytest.raises(TypeError, match="must be a string"):
                check_backend_name(spec)
        # None stays the documented "pick for me" spelling
        assert resolve_backend(None).name in ("csr", "dial")

    def test_parameters_round_trip_through_archive(self, tmp_path):
        graph = _random_graph(9, n_lo=12, n_hi=20)
        index = HC2LIndex.build(graph, backend="heap")
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = HC2LIndex.load(path)
        assert loaded.parameters.backend == "heap"

    def test_cli_build_accepts_backend(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "cli-index.npz"
        code = main(
            [
                "build",
                "--synthetic", "60",
                "--seed", "3",
                "--output", str(output),
                "--backend", "csr",
            ]
        )
        assert code == 0
        assert output.exists()
        loaded = HC2LIndex.load(output)
        assert loaded.parameters.backend == "csr"
        # and the built index answers a sanity query (synthetic networks
        # are connected, so the distance must be finite)
        assert np.isfinite(loaded.distances([(0, 1)])).all()
