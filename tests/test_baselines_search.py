"""Tests for the search-based baselines (Dijkstra oracle, bidirectional, CH)."""

from __future__ import annotations

import math
import random

import pytest

from repro.baselines.ch import ContractionHierarchy
from repro.baselines.dijkstra import BidirectionalDijkstra, DijkstraOracle, exact_distance

from helpers import assert_distance_equal, random_query_pairs


class TestDijkstraOracle:
    def test_matches_exact_distance(self, small_graph, small_oracle):
        oracle = DijkstraOracle.build(small_graph)
        for s, t in random_query_pairs(small_graph, 40, seed=1):
            assert_distance_equal(small_oracle.distance(s, t), oracle.distance(s, t))

    def test_cache_eviction_keeps_answers_correct(self, small_graph, small_oracle):
        oracle = DijkstraOracle.build(small_graph, cache_size=2)
        sources = [0, 5, 9, 0, 5]
        for s in sources:
            assert_distance_equal(small_oracle.distance(s, 3), oracle.distance(s, 3))
        assert len(oracle._cache) <= 2

    def test_distances_from_returns_copy(self, small_graph):
        oracle = DijkstraOracle.build(small_graph)
        array = oracle.distances_from(0)
        array[1] = -1.0
        assert oracle.distance(0, 1) >= 0.0

    def test_invalid_vertex_rejected(self, small_graph):
        oracle = DijkstraOracle.build(small_graph)
        with pytest.raises(ValueError):
            oracle.distance(0, 10_000)

    def test_label_size_is_graph_size(self, small_graph):
        oracle = DijkstraOracle.build(small_graph)
        assert oracle.label_size_bytes() == small_graph.memory_bytes()

    def test_exact_distance_helper(self, small_graph, small_oracle):
        assert_distance_equal(small_oracle.distance(0, 7), exact_distance(small_graph, 0, 7))


class TestBidirectionalBaseline:
    def test_matches_oracle(self, medium_graph, medium_oracle):
        baseline = BidirectionalDijkstra.build(medium_graph)
        for s, t in random_query_pairs(medium_graph, 40, seed=2):
            assert_distance_equal(medium_oracle.distance(s, t), baseline.distance(s, t))

    def test_disconnected(self, disconnected_graph):
        baseline = BidirectionalDijkstra.build(disconnected_graph)
        assert math.isinf(baseline.distance(0, 6))

    def test_hub_count_is_graph_bound(self, small_graph):
        baseline = BidirectionalDijkstra.build(small_graph)
        _, hubs = baseline.distance_with_hub_count(0, 1)
        assert hubs == small_graph.num_vertices


class TestContractionHierarchy:
    @pytest.fixture(scope="class")
    def ch(self, small_graph):
        return ContractionHierarchy.build(small_graph)

    def test_matches_oracle(self, ch, small_graph, small_oracle):
        for s, t in random_query_pairs(small_graph, 60, seed=3):
            assert_distance_equal(small_oracle.distance(s, t), ch.distance(s, t))

    def test_grid_with_ties(self, uniform_grid):
        from repro.graph.search import dijkstra

        ch = ContractionHierarchy.build(uniform_grid)
        rng = random.Random(7)
        for _ in range(40):
            s = rng.randrange(uniform_grid.num_vertices)
            t = rng.randrange(uniform_grid.num_vertices)
            assert_distance_equal(dijkstra(uniform_grid, s)[t], ch.distance(s, t))

    def test_disconnected(self, disconnected_graph):
        ch = ContractionHierarchy.build(disconnected_graph)
        assert math.isinf(ch.distance(0, 4))
        assert ch.distance(0, 2) == 3.0

    def test_rank_is_a_permutation(self, ch, small_graph):
        assert sorted(ch.rank) == list(range(small_graph.num_vertices))

    def test_upward_edges_point_upward(self, ch):
        for v, edges in enumerate(ch.upward):
            for w, _ in edges:
                assert ch.rank[w] > ch.rank[v]

    def test_importance_order(self, ch, small_graph):
        order = ch.importance_order()
        assert len(order) == small_graph.num_vertices
        assert ch.rank[order[0]] == small_graph.num_vertices - 1
        assert ch.rank[order[-1]] == 0

    def test_search_space_far_smaller_than_graph(self, ch, small_graph):
        pairs = random_query_pairs(small_graph, 20, seed=5)
        average = ch.average_search_space(pairs)
        assert 0 < average < small_graph.num_vertices

    def test_hub_count_and_label_size(self, ch, small_graph):
        distance, hubs = ch.distance_with_hub_count(0, 5)
        assert distance < math.inf
        assert hubs > 0
        assert ch.label_size_bytes() > 0

    def test_shortcut_count_reported(self, ch):
        assert ch.num_shortcuts >= 0
        total_upward = sum(len(edges) for edges in ch.upward)
        assert total_upward >= ch.graph.num_edges
