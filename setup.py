"""Setuptools shim.

The execution environment for this reproduction has no network access, so
``pip install -e .`` must not attempt to download build dependencies into
an isolated build environment.  Providing a ``setup.py`` (alongside the
declarative ``pyproject.toml``) lets pip fall back to the legacy editable
install path, which uses the already-installed setuptools.
"""

from setuptools import setup

setup()
