"""Benchmark / reproduction of Figure 7 - balance threshold sweep.

Figure 7 varies the balance parameter beta between 0.15 and 0.35 and plots
HC2L's average query time and average cut size.  The paper selects
beta = 0.2 as the operating point.  The reproduced sweep is written to
``results/figure7.txt``.
"""

from __future__ import annotations

from conftest import write_result

from repro.experiments.figures import FIGURE7_BETAS, figure7
from repro.experiments.report import render_figure7

#: the sweep rebuilds HC2L once per (dataset, beta); keep it to a subset of
#: the benchmark datasets so the suite stays quick
SWEEP_DATASET_LIMIT = 3


def test_reproduce_figure7(benchmark, bench_datasets):
    """Rebuild HC2L across the beta grid and record query time and cut size."""
    datasets = bench_datasets[:SWEEP_DATASET_LIMIT]

    result = benchmark.pedantic(
        lambda: figure7(datasets=datasets, betas=FIGURE7_BETAS, num_queries=600),
        rounds=1,
        iterations=1,
    )

    assert result.betas == FIGURE7_BETAS
    for dataset in datasets:
        times = result.query_time_us[dataset]
        cuts = result.avg_cut_size[dataset]
        assert len(times) == len(FIGURE7_BETAS)
        assert all(t > 0 for t in times)
        assert all(c > 0 for c in cuts)
        # query time should not vary wildly across the sweep (the paper sees
        # mild variation with a dip around 0.2)
        assert max(times) <= 5 * min(times)

    write_result("figure7", render_figure7(result))
