"""Shared fixtures for the benchmark suite.

The benchmarks regenerate the paper's tables and figures on the synthetic
stand-in datasets.  Two environment variables control their weight:

``REPRO_BENCH_DATASETS``
    comma-separated dataset names (default: NY, BAY, COL, FLA, CAL).
``REPRO_BENCH_SCALE``
    multiplies the synthetic dataset sizes (default 1).

Every benchmark writes its reproduced rows to ``results/`` next to the
repository root so the numbers recorded in EXPERIMENTS.md can be refreshed
by re-running ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.datasets import bench_dataset_names, load_dataset
from repro.experiments.workloads import random_pairs

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: number of random query pairs measured per dataset in the table benchmarks
BENCH_QUERY_COUNT = 1000


def write_result(name: str, text: str) -> Path:
    """Write a reproduced table/figure to ``results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text, encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def bench_datasets() -> list[str]:
    """Datasets the benchmark session covers."""
    return bench_dataset_names()


@pytest.fixture(scope="session")
def primary_dataset(bench_datasets):
    """The first (smallest) benchmark dataset, used for per-method query benchmarks."""
    name = bench_datasets[0]
    network = load_dataset(name)
    graph = network.distance_graph
    pairs = random_pairs(graph, BENCH_QUERY_COUNT, seed=71)
    return name, network, graph, pairs


@pytest.fixture(scope="session")
def distance_evaluation(bench_datasets):
    """One shared evaluation run with distance weights (Tables 2, 3, 5, Figure 6).

    Building every index dominates the benchmark runtime, so the evaluation
    is performed once per session and the individual table benchmarks slice
    what they need from it.
    """
    from repro.experiments.evaluation import run_evaluation

    return run_evaluation(
        datasets=bench_datasets,
        methods=["HC2L", "HC2L_p", "H2H", "PHL", "HL"],
        weighting="distance",
        num_queries=BENCH_QUERY_COUNT,
        keep_indexes=True,
    )


@pytest.fixture(scope="session")
def travel_time_evaluation(bench_datasets):
    """The travel-time counterpart used by Table 4."""
    from repro.experiments.evaluation import run_evaluation

    return run_evaluation(
        datasets=bench_datasets,
        methods=["HC2L", "HC2L_p", "H2H", "PHL", "HL"],
        weighting="travel_time",
        num_queries=BENCH_QUERY_COUNT,
        keep_indexes=False,
    )
