"""Ablation benchmark - tail pruning (Section 5.1.2).

The paper reports that disabling tail pruning grows the index by 10-15%
while reducing construction time by roughly 20%.  This benchmark builds
HC2L with and without tail pruning on the primary benchmark dataset and
records both index sizes and build times.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.index import HC2LIndex
from repro.experiments.report import render_table


def test_tail_pruning_ablation(benchmark, primary_dataset):
    """Compare HC2L with and without tail pruning."""
    name, _, graph, pairs = primary_dataset

    def build_both():
        pruned = HC2LIndex.build(graph, tail_pruning=True)
        naive = HC2LIndex.build(graph, tail_pruning=False)
        return pruned, naive

    pruned, naive = benchmark.pedantic(build_both, rounds=1, iterations=1)

    assert pruned.labelling.total_entries() < naive.labelling.total_entries()
    for s, t in pairs[:200]:
        assert abs(pruned.distance(s, t) - naive.distance(s, t)) <= 1e-6 * max(
            1.0, naive.distance(s, t) if naive.distance(s, t) != float("inf") else 1.0
        ) or (pruned.distance(s, t) == naive.distance(s, t))

    growth = naive.labelling.total_entries() / pruned.labelling.total_entries() - 1.0
    rows = [
        {
            "dataset": name,
            "variant": "tail pruning",
            "label_entries": pruned.labelling.total_entries(),
            "label_size_bytes": pruned.label_size_bytes(),
            "construction_seconds": round(pruned.construction_seconds, 3),
        },
        {
            "dataset": name,
            "variant": "no tail pruning",
            "label_entries": naive.labelling.total_entries(),
            "label_size_bytes": naive.label_size_bytes(),
            "construction_seconds": round(naive.construction_seconds, 3),
        },
        {
            "dataset": name,
            "variant": f"size growth without pruning: {growth:.1%}",
            "label_entries": "",
            "label_size_bytes": "",
            "construction_seconds": "",
        },
    ]
    write_result("ablation_tail_pruning", render_table(rows, title="Ablation - tail pruning"))


def test_query_time_with_and_without_pruning(benchmark, primary_dataset):
    """Query latency of the un-pruned labelling (should not beat the pruned one)."""
    _, _, graph, pairs = primary_dataset
    naive = HC2LIndex.build(graph, tail_pruning=False)

    def run_batch():
        total = 0.0
        for s, t in pairs[:500]:
            total += naive.distance(s, t)
        return total

    assert benchmark(run_batch) >= 0.0
