"""Benchmark / reproduction of Table 3 - LCA storage and average hub size.

Table 3 compares (a) the memory needed for constant-time LCA computation
(HC2L's bitstrings vs H2H's Euler-tour/RMQ tables) and (b) the average
number of hubs inspected per query across methods.
"""

from __future__ import annotations

from conftest import write_result

from repro.experiments.report import render_table
from repro.experiments.tables import table3


def test_reproduce_table3(benchmark, distance_evaluation):
    """Assemble Table 3 from the shared evaluation and check its shape."""
    rows = benchmark.pedantic(
        lambda: table3(evaluation=distance_evaluation), rounds=1, iterations=1
    )
    assert len(rows) == len(distance_evaluation.datasets)
    for row in rows:
        # HC2L's bitstring LCA index is dramatically smaller than H2H's RMQ
        assert row["lca_bytes_HC2L"] < row["lca_bytes_H2H"]
        # and HC2L inspects fewer hubs per query than every baseline
        assert row["ahs_HC2L"] <= row["ahs_H2H"] + 1
        assert row["ahs_HC2L"] <= row["ahs_HL"] + 1
        assert row["ahs_HC2L"] <= row["ahs_PHL"] + 1
    text = render_table(rows, title="Table 3 - LCA storage and average hub size")
    write_result("table3", text)


def test_lca_query_overhead(benchmark, distance_evaluation, bench_datasets):
    """Micro-benchmark of the O(1) LCA-depth computation itself."""
    dataset = bench_datasets[0]
    index = distance_evaluation.indexes[(dataset, "HC2L")]
    hierarchy = index.hierarchy
    n = index.contraction.core.num_vertices
    pairs = [(i % n, (i * 7 + 3) % n) for i in range(1000)]

    def run_lca_batch():
        total = 0
        for s, t in pairs:
            total += hierarchy.lca_depth(s, t)
        return total

    assert benchmark(run_lca_batch) >= 0
