"""Benchmark / reproduction of Table 2 - distance weights.

Table 2 of the paper compares query time, labelling size and construction
time of HC2L (sequential and parallel) against H2H, PHL and HL with
physical distances as edge weights.  The shared session evaluation builds
every index; this module

* benchmarks the per-query latency of each method on the primary dataset
  (the pytest-benchmark numbers are the "Query Time" column), and
* writes the full reproduced table to ``results/table2.txt``.
"""

from __future__ import annotations

import pytest

from conftest import write_result

from repro.experiments.report import render_table
from repro.experiments.tables import table2

QUERY_METHODS = ["HC2L", "H2H", "PHL", "HL"]


@pytest.mark.parametrize("method", QUERY_METHODS)
def test_query_time(benchmark, method, distance_evaluation, bench_datasets):
    """Mean distance-query latency of one method on the smallest dataset."""
    dataset = bench_datasets[0]
    index = distance_evaluation.indexes[(dataset, method)]
    graph = distance_evaluation.graphs[dataset]
    from repro.experiments.workloads import random_pairs

    pairs = random_pairs(graph, 500, seed=99)

    def run_batch():
        total = 0.0
        for s, t in pairs:
            total += index.distance(s, t)
        return total

    result = benchmark(run_batch)
    assert result >= 0.0


def test_reproduce_table2(benchmark, distance_evaluation):
    """Assemble the Table 2 rows from the shared evaluation and persist them."""
    rows = benchmark.pedantic(lambda: table2(evaluation=distance_evaluation), rounds=1, iterations=1)
    assert len(rows) == len(distance_evaluation.datasets)
    for row in rows:
        # the paper's headline: HC2L answers queries faster than every baseline
        assert row["query_us_HC2L"] <= 1.5 * row["query_us_H2H"]
        assert row["query_us_HC2L"] <= 1.5 * row["query_us_PHL"]
        assert row["label_bytes_HC2L"] <= row["label_bytes_H2H"]
    text = render_table(rows, title="Table 2 - query time / label size / construction (distance weights)")
    write_result("table2", text)
