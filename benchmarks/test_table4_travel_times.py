"""Benchmark / reproduction of Table 4 - travel-time weights.

Table 4 repeats the Table 2 comparison with travel times as edge weights;
the paper observes that PHL and HL shrink considerably under travel times
(better orderings / pruning) while HC2L stays roughly stable.
"""

from __future__ import annotations

from conftest import write_result

from repro.experiments.report import render_table
from repro.experiments.tables import table4


def test_reproduce_table4(benchmark, travel_time_evaluation):
    """Assemble the Table 4 rows from the travel-time evaluation."""
    rows = benchmark.pedantic(
        lambda: table4(evaluation=travel_time_evaluation), rounds=1, iterations=1
    )
    assert len(rows) == len(travel_time_evaluation.datasets)
    for row in rows:
        assert row["weighting"] == "travel_time"
        # HC2L remains the fastest query method under travel times as well
        assert row["query_us_HC2L"] <= 1.5 * row["query_us_H2H"]
        assert row["query_us_HC2L"] <= 1.5 * row["query_us_PHL"]
    text = render_table(rows, title="Table 4 - query time / label size / construction (travel times)")
    write_result("table4", text)
