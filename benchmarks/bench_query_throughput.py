#!/usr/bin/env python3
"""Query throughput benchmark across every DistanceOracle plus serving paths.

Builds each selected oracle (HC2L and the baselines) on one generated
road-like graph and times the same random query workload through

* the per-pair scalar ``distance`` loop,
* the batch ``distances`` protocol call (vectorised where the method's
  structure allows - ``supports_batch`` is recorded per row), and
* for HC2L additionally the serving layer: an LRU :class:`CachingOracle`
  on a Zipf-skewed workload (with hit-rate), a :class:`CoalescingServer`
  fed by concurrent scalar requests, the :class:`ShardRouter` over a
  sharded on-disk layout swept across shard counts {1, 2, 4} (one row
  per count, with the router-overhead ratio vs. the monolithic engine),
  and the multi-process shard fleet in closed loop - concurrent TCP
  clients replaying locality batches and dispatch-style distance
  matrices, one row per (worker count, wire mode) with p50/p99 latency
  and the majority-placement hit rate, plus Zipf rows comparing the
  cross-worker shared cache on vs off (cold and hot passes), and a
  dynamic-update replay - clustered weight changes scoped-relabelled,
  written as a new index generation and hot-swapped into the live fleet
  under concurrent clients, one row per epoch plus a scoped-vs-full
  relabel speedup row.

Scalar/batch results are verified identical before anything is written,
and a sweep method that raises aborts the whole run (no partial record is
ever written), so the per-oracle BENCH trajectory can never silently drop
an oracle.  The rows land in ``BENCH_query.json`` (uploaded by CI) so the
performance trajectory is tracked across PRs.

Run with::

    PYTHONPATH=src python benchmarks/bench_query_throughput.py \
        [--vertices 3000] [--queries 10000] [--oracles HC2L,H2H,...] \
        [--shard-counts 1,2,4] [--output BENCH_query.json]
"""

from __future__ import annotations

import argparse
import json
import random
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Tuple

from repro import HC2LIndex, RoadNetworkSpec, synthetic_road_network
from repro.baselines import (
    BidirectionalDijkstra,
    ContractionHierarchy,
    DijkstraOracle,
    H2HIndex,
    HubLabelling,
    PrunedHighwayLabelling,
    PrunedLandmarkLabelling,
)
from repro.experiments.dynamic import update_latency_rows
from repro.experiments.fleet import fleet_latency_rows
from repro.experiments.sharding import boundary_locality_rows, router_overhead_rows
from repro.experiments.workloads import neighborhood_pairs, skewed_pairs
from repro.serving import CachingOracle, CoalescingServer

ORACLE_BUILDERS = {
    "HC2L": lambda graph: HC2LIndex.build(graph),
    "H2H": lambda graph: H2HIndex.build(graph),
    "PHL": lambda graph: PrunedHighwayLabelling.build(graph),
    "HL": lambda graph: HubLabelling.build(graph),
    "PLL": lambda graph: PrunedLandmarkLabelling.build(graph),
    "CH": lambda graph: ContractionHierarchy.build(graph),
    "BiDijkstra": lambda graph: BidirectionalDijkstra.build(graph),
    "Dijkstra": lambda graph: DijkstraOracle.build(graph),
}

#: default sweep; the slow search-based scalar loops run a reduced workload
DEFAULT_ORACLES = list(ORACLE_BUILDERS)
REDUCED_WORKLOAD = {"BiDijkstra", "CH", "Dijkstra"}


def bench_oracle(
    name: str,
    oracle,
    pairs: List[Tuple[int, int]],
    build_seconds: float,
) -> Dict[str, object]:
    """Time the scalar loop and the batch call; verify they agree."""
    oracle.distances(pairs[:1])  # warm lazy state outside the timed regions

    single_start = time.perf_counter()
    single = [oracle.distance(s, t) for s, t in pairs]
    single_seconds = time.perf_counter() - single_start

    batch_start = time.perf_counter()
    batch = oracle.distances(pairs)
    batch_seconds = time.perf_counter() - batch_start

    if single != batch.tolist():
        raise AssertionError(f"{name}: batch results diverged from the scalar path")

    return {
        "oracle": name,
        "num_queries": len(pairs),
        "build_seconds": round(build_seconds, 4),
        "supports_batch": bool(oracle.supports_batch),
        "index_size_bytes": int(oracle.index_size_bytes),
        "single_queries_per_second": round(len(pairs) / single_seconds, 1),
        "batch_queries_per_second": round(len(pairs) / batch_seconds, 1),
        "single_microseconds_per_query": round(single_seconds / len(pairs) * 1e6, 3),
        "batch_microseconds_per_query": round(batch_seconds / len(pairs) * 1e6, 3),
        "batch_speedup": round(single_seconds / batch_seconds, 2),
    }


def bench_serving_paths(index: HC2LIndex, graph, num_queries: int, seed: int) -> List[Dict[str, object]]:
    """Rows for the cached and coalesced serving paths over HC2L."""
    rows: List[Dict[str, object]] = []

    skewed = skewed_pairs(graph, num_queries, seed=seed, exponent=1.2)
    cached = CachingOracle(index)
    baseline = index.distances(skewed)
    cache_start = time.perf_counter()
    cached_result = cached.distances(skewed)
    cache_seconds = time.perf_counter() - cache_start
    if cached_result.tolist() != baseline.tolist():
        raise AssertionError("cached results diverged from the engine")
    rows.append(
        {
            "oracle": "HC2L+cache",
            "num_queries": len(skewed),
            "workload": "skewed(zipf=1.2)",
            "batch_queries_per_second": round(len(skewed) / cache_seconds, 1),
            "batch_microseconds_per_query": round(cache_seconds / len(skewed) * 1e6, 3),
            **cached.stats.as_dict(),
        }
    )

    rng = random.Random(seed)
    n = graph.num_vertices
    coalesce_pairs = [
        (rng.randrange(n), rng.randrange(n)) for _ in range(min(num_queries, 2000))
    ]
    server = CoalescingServer(index, window_seconds=0.0005)
    expected = [index.distance(s, t) for s, t in coalesce_pairs]
    coalesce_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=8) as pool:
        got = list(pool.map(lambda p: server.distance(*p), coalesce_pairs))
    coalesce_seconds = time.perf_counter() - coalesce_start
    if got != expected:
        raise AssertionError("coalesced results diverged from the scalar path")
    stats = server.stats()
    rows.append(
        {
            "oracle": "HC2L+coalesce",
            "num_queries": len(coalesce_pairs),
            "workload": "concurrent scalar (8 threads)",
            "queries_per_second": round(len(coalesce_pairs) / coalesce_seconds, 1),
            "microseconds_per_query": round(
                coalesce_seconds / len(coalesce_pairs) * 1e6, 3
            ),
            "batches": stats["batches"],
            "mean_batch_size": round(stats["mean_batch_size"], 2),
            "largest_batch": stats["largest_batch"],
        }
    )
    return rows


def run_benchmark(
    num_vertices: int,
    num_queries: int,
    seed: int = 2024,
    oracles: List[str] | None = None,
    shard_counts: List[int] | None = None,
    fleet_workers: List[int] | None = None,
    dynamic_updates: bool = True,
) -> dict:
    """Build every selected oracle, sweep the workload, return the record."""
    selected = oracles or DEFAULT_ORACLES
    if fleet_workers is None:
        fleet_workers = [2, 3]
    unknown = [name for name in selected if name not in ORACLE_BUILDERS]
    if unknown:
        raise SystemExit(f"unknown oracles {unknown}; available: {list(ORACLE_BUILDERS)}")

    network = synthetic_road_network(
        RoadNetworkSpec("bench-query", num_vertices=num_vertices, seed=seed)
    )
    graph = network.distance_graph

    rng = random.Random(seed)
    n = graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(num_queries)]

    rows: List[Dict[str, object]] = []
    hc2l_index = None
    for name in selected:
        # a sweep method that raises must kill the whole run with the
        # method's name attached - quietly skipping it (or emitting a
        # partial row) would silently drop the oracle from the BENCH
        # trajectory and read as a removal instead of a failure
        try:
            build_start = time.perf_counter()
            oracle = ORACLE_BUILDERS[name](graph)
            build_seconds = time.perf_counter() - build_start
            workload = pairs[: max(200, num_queries // 10)] if name in REDUCED_WORKLOAD else pairs
            print(f"  {name}: built in {build_seconds:.2f}s, timing {len(workload)} queries ...")
            row = bench_oracle(name, oracle, workload, build_seconds)
        except Exception as error:
            raise SystemExit(
                f"oracle {name!r} failed during the sweep ({error!r}); "
                f"refusing to write a BENCH_query.json without it"
            ) from error
        rows.append(row)
        if name == "HC2L":
            hc2l_index = oracle

    if hc2l_index is not None:
        try:
            rows.extend(bench_serving_paths(hc2l_index, graph, num_queries, seed))
            counts = shard_counts if shard_counts is not None else [1, 2, 4]
            if counts:
                print(f"  HC2L+router: sweeping shard counts {counts} ...")
                with tempfile.TemporaryDirectory() as workdir:
                    rows.extend(
                        router_overhead_rows(
                            hc2l_index, pairs, workdir, shard_counts=counts
                        )
                    )
                # shard-boundary locality: the same neighbourhood workload
                # through even vs hierarchy-aligned boundaries, one row per
                # mode with the cross-shard pair fraction (tracked across
                # PRs like the throughput rows)
                local = neighborhood_pairs(graph, min(num_queries, 4000), seed=seed)
                if local:
                    print("  HC2L+router: comparing shard-boundary layouts ...")
                    with tempfile.TemporaryDirectory() as workdir:
                        rows.extend(
                            boundary_locality_rows(
                                hc2l_index, local, workdir, num_shards=4
                            )
                        )
                if fleet_workers:
                    print(f"  HC2L+fleet: closed-loop sweep at {fleet_workers} workers ...")
                    with tempfile.TemporaryDirectory() as workdir:
                        rows.extend(
                            fleet_latency_rows(
                                hc2l_index,
                                graph,
                                workdir,
                                worker_counts=fleet_workers,
                                seed=seed,
                            )
                        )
                if dynamic_updates:
                    print("  HC2L+fleet: dynamic-update replay (generation hot-swap) ...")
                    with tempfile.TemporaryDirectory() as workdir:
                        rows.extend(
                            update_latency_rows(
                                hc2l_index,
                                graph,
                                workdir,
                                num_workers=2,
                                seed=seed,
                            )
                        )
        except Exception as error:
            raise SystemExit(
                f"HC2L serving-path sweep failed ({error!r}); "
                f"refusing to write a BENCH_query.json without those rows"
            ) from error

    missing = [name for name in selected if not any(r["oracle"] == name for r in rows)]
    if missing:
        raise SystemExit(f"sweep finished without rows for {missing}; not writing a partial record")

    hc2l_row = next((row for row in rows if row["oracle"] == "HC2L"), {})
    return {
        "benchmark": "query_throughput",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_queries": num_queries,
        # headline HC2L numbers kept top-level for cross-PR continuity
        "build_seconds": hc2l_row.get("build_seconds"),
        "single_queries_per_second": hc2l_row.get("single_queries_per_second"),
        "batch_queries_per_second": hc2l_row.get("batch_queries_per_second"),
        "batch_speedup": hc2l_row.get("batch_speedup"),
        "label_size_bytes": hc2l_row.get("index_size_bytes"),
        "rows": rows,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=3000)
    parser.add_argument("--queries", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--oracles",
        default=",".join(DEFAULT_ORACLES),
        help=f"comma separated subset of {list(ORACLE_BUILDERS)}",
    )
    parser.add_argument(
        "--shard-counts",
        default="1,2,4",
        help="comma separated shard counts for the router sweep (empty disables it)",
    )
    parser.add_argument(
        "--fleet-workers",
        default="2,3",
        help="comma separated worker counts for the fleet sweep (empty disables it)",
    )
    parser.add_argument(
        "--no-dynamic-updates",
        action="store_true",
        help="skip the dynamic-update replay (generation hot-swap) rows",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_query.json",
    )
    args = parser.parse_args()

    names = [name.strip() for name in args.oracles.split(",") if name.strip()]
    counts = [int(c) for c in args.shard_counts.split(",") if c.strip()]
    workers = [int(w) for w in args.fleet_workers.split(",") if w.strip()]
    record = run_benchmark(
        args.vertices,
        args.queries,
        args.seed,
        names,
        counts,
        workers,
        dynamic_updates=not args.no_dynamic_updates,
    )
    # write-then-rename so an interrupted run never leaves a torn record
    payload = json.dumps(record, indent=2) + "\n"
    tmp = args.output.with_name(args.output.name + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    tmp.replace(args.output)

    print(json.dumps(record, indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
