#!/usr/bin/env python3
"""Query throughput benchmark: single-pair loop vs the batch engine.

Builds an HC2L index on a generated road-like graph, times the same random
query workload through (a) the per-pair ``HC2LIndex.distance`` loop and
(b) the vectorised ``HC2LIndex.distances`` batch path, verifies the
results are identical, and writes the numbers to ``BENCH_query.json`` so
future PRs can track the performance trajectory.

Run with::

    PYTHONPATH=src python benchmarks/bench_query_throughput.py \
        [--vertices 3000] [--queries 10000] [--output BENCH_query.json]
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from repro import HC2LIndex, RoadNetworkSpec, synthetic_road_network


def run_benchmark(num_vertices: int, num_queries: int, seed: int = 2024) -> dict:
    """Build, query both ways and return the result record."""
    network = synthetic_road_network(
        RoadNetworkSpec("bench-query", num_vertices=num_vertices, seed=seed)
    )
    graph = network.distance_graph

    build_start = time.perf_counter()
    index = HC2LIndex.build(graph)
    build_seconds = time.perf_counter() - build_start

    rng = random.Random(seed)
    n = graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(num_queries)]

    # build the lazy flat-label engine outside both timed regions
    index.distances(pairs[:1])

    single_start = time.perf_counter()
    single = [index.distance(s, t) for s, t in pairs]
    single_seconds = time.perf_counter() - single_start

    batch_start = time.perf_counter()
    batch = index.distances(pairs)
    batch_seconds = time.perf_counter() - batch_start

    if single != batch.tolist():
        raise AssertionError("batch results diverged from the single-pair path")

    return {
        "benchmark": "query_throughput",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_queries": num_queries,
        "build_seconds": round(build_seconds, 4),
        "single_queries_per_second": round(num_queries / single_seconds, 1),
        "batch_queries_per_second": round(num_queries / batch_seconds, 1),
        "single_microseconds_per_query": round(single_seconds / num_queries * 1e6, 3),
        "batch_microseconds_per_query": round(batch_seconds / num_queries * 1e6, 3),
        "batch_speedup": round(single_seconds / batch_seconds, 2),
        "label_size_bytes": index.label_size_bytes(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=3000)
    parser.add_argument("--queries", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_query.json",
    )
    args = parser.parse_args()

    record = run_benchmark(args.vertices, args.queries, args.seed)
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    print(json.dumps(record, indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
