"""Benchmark - parallel construction HC2L_p (Section 4.4).

The paper's HC2L_p parallelises the recursion over the two sides of each
cut and the per-cut Dijkstra searches, reporting 3-4x faster construction
on 28 cores.  Under CPython's GIL the pure-Python searches cannot overlap,
so the point of this benchmark is to exercise the parallel code path,
verify it produces an identical index, and record the (modest) measured
speed-up for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from conftest import write_result

from repro.core.index import HC2LIndex
from repro.experiments.report import render_table


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_construction_time_by_worker_count(benchmark, primary_dataset, workers):
    """Wall-clock construction time for 1, 2 and 4 worker threads."""
    _, _, graph, _ = primary_dataset

    def build():
        return HC2LIndex.build(graph, num_workers=workers)

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    assert index.tree_height() > 0


def test_parallel_matches_sequential(benchmark, primary_dataset):
    """HC2L_p must produce exactly the same labelling as sequential HC2L."""
    name, _, graph, pairs = primary_dataset

    def build_both():
        return HC2LIndex.build(graph), HC2LIndex.build(graph, num_workers=4)

    sequential, parallel = benchmark.pedantic(build_both, rounds=1, iterations=1)
    assert sequential.labelling.total_entries() == parallel.labelling.total_entries()
    for s, t in pairs[:300]:
        assert sequential.distance(s, t) == pytest.approx(parallel.distance(s, t))

    rows = [
        {
            "dataset": name,
            "variant": "HC2L (sequential)",
            "construction_seconds": round(sequential.construction_seconds, 3),
        },
        {
            "dataset": name,
            "variant": "HC2L_p (4 threads)",
            "construction_seconds": round(parallel.construction_seconds, 3),
        },
    ]
    write_result("parallel_construction", render_table(rows, title="HC2L vs HC2L_p construction"))
