"""Ablation benchmark - degree-one contraction (Section 4.2.2).

The paper contrasts its iterative degree-one contraction (~30% of vertices
removed on the DIMACS graphs) with the weaker single-pass variant used by
PHL (~20%).  This benchmark measures both contraction ratios and the
effect on the final HC2L index size on the primary benchmark dataset.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.index import HC2LIndex
from repro.experiments.report import render_table
from repro.graph.contraction import contract_degree_one


def test_contraction_ablation(benchmark, primary_dataset):
    """Compare iterative vs single-pass contraction and no contraction at all."""
    name, _, graph, pairs = primary_dataset

    def run_ablation():
        iterative = contract_degree_one(graph, iterative=True)
        single_pass = contract_degree_one(graph, iterative=False)
        with_contraction = HC2LIndex.build(graph, contract=True)
        without_contraction = HC2LIndex.build(graph, contract=False)
        return iterative, single_pass, with_contraction, without_contraction

    iterative, single_pass, with_contraction, without_contraction = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    # the iterative variant always removes at least as many vertices
    assert iterative.num_contracted >= single_pass.num_contracted
    # contraction shrinks the labelled core
    assert with_contraction.contraction.core.num_vertices < without_contraction.contraction.core.num_vertices
    # answers agree regardless of contraction
    for s, t in pairs[:200]:
        a = with_contraction.distance(s, t)
        b = without_contraction.distance(s, t)
        assert (a == b) or abs(a - b) <= 1e-6 * max(1.0, b)

    rows = [
        {
            "dataset": name,
            "variant": "iterative contraction (HC2L)",
            "contracted_vertices": iterative.num_contracted,
            "contraction_ratio": round(iterative.contraction_ratio(), 3),
            "label_size_bytes": with_contraction.label_size_bytes(),
        },
        {
            "dataset": name,
            "variant": "single-pass contraction (PHL-style)",
            "contracted_vertices": single_pass.num_contracted,
            "contraction_ratio": round(single_pass.contraction_ratio(), 3),
            "label_size_bytes": "",
        },
        {
            "dataset": name,
            "variant": "no contraction",
            "contracted_vertices": 0,
            "contraction_ratio": 0.0,
            "label_size_bytes": without_contraction.label_size_bytes(),
        },
    ]
    write_result("ablation_contraction", render_table(rows, title="Ablation - degree-one contraction"))
