#!/usr/bin/env python3
"""Construction benchmark across shortest-path backends.

Builds the HC2L index for one generated road-like graph once per selected
:mod:`repro.core.backends` backend and records the per-phase wall-clock
breakdown:

* ``contraction`` - the degree-one contraction of the input graph,
* ``snapshot`` - flattening each node's working adjacency into the CSR
  snapshot shared by every construction search,
* ``hierarchy`` - balanced cuts (Algorithms 1-2: seed searches, max-flow
  vertex cuts and component re-assignment, all on the backend seam),
* ``labelling`` - ranking + pruneability-tracking searches,
* ``shortcuts`` - border searches + redundancy filtering (Algorithm 3),
* ``flatten`` - packing the nested labelling into the flat buffers.

Backends are compared per phase (``speedup_vs_heap_<phase>`` on the csr
row) as well as in total, so a single-phase regression or win - e.g. the
hierarchy phase since the balanced cuts moved onto the seam - stays
visible across PRs.

The labellings produced by every backend are verified **bit-identical**
before anything is written, so a speed-up can never hide a wrong label.
The rows land in ``BENCH_build.json`` (uploaded by CI next to
``BENCH_query.json``) so build-time regressions are tracked across PRs
the same way query regressions are.

Run with::

    PYTHONPATH=src python benchmarks/bench_build.py \
        [--vertices 3000] [--backends heap,csr] [--output BENCH_build.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List

from repro import RoadNetworkSpec, synthetic_road_network
from repro.core.backends import BACKEND_NAMES, resolve_backend, scipy_available
from repro.core.construction import HC2LBuilder
from repro.core.flat import FlatLabelling
from repro.graph.contraction import contract_degree_one

PHASES = ("contraction", "snapshot", "hierarchy", "labelling", "shortcuts", "flatten")


def bench_backend(name: str, graph, leaf_size: int):
    """One full construction under ``name``, with the per-phase breakdown."""
    backend = resolve_backend(name)
    total_start = time.perf_counter()

    contract_start = time.perf_counter()
    contraction = contract_degree_one(graph)
    contraction_seconds = time.perf_counter() - contract_start

    builder = HC2LBuilder(leaf_size=leaf_size, backend=backend)
    hierarchy, labelling, stats = builder.build(contraction.core)

    flatten_start = time.perf_counter()
    flat = FlatLabelling.from_labelling(labelling)
    flatten_seconds = time.perf_counter() - flatten_start
    total_seconds = time.perf_counter() - total_start

    row: Dict[str, object] = {
        "backend": name,
        "resolved_backend": backend.name,
        "total_seconds": round(total_seconds, 4),
        "seconds_contraction": round(contraction_seconds, 4),
        "seconds_flatten": round(flatten_seconds, 4),
        "num_nodes": stats.num_nodes,
        "num_shortcuts": stats.num_shortcuts,
        "tree_height": hierarchy.height(),
        "label_entries": flat.total_entries(),
    }
    for phase, seconds in stats.timer.durations.items():
        row[f"seconds_{phase}"] = round(seconds, 4)
    return row, flat


def run_benchmark(
    num_vertices: int,
    seed: int = 2024,
    backends: List[str] | None = None,
    leaf_size: int = 12,
) -> dict:
    """Build under every selected backend, verify labels match, return the record."""
    selected = backends or ["heap", "csr"]
    unknown = [name for name in selected if name not in BACKEND_NAMES]
    if unknown:
        raise SystemExit(f"unknown backends {unknown}; available: {list(BACKEND_NAMES)}")

    network = synthetic_road_network(
        RoadNetworkSpec("bench-build", num_vertices=num_vertices, seed=seed)
    )
    graph = network.distance_graph

    rows: List[Dict[str, object]] = []
    flats: Dict[str, FlatLabelling] = {}
    for name in selected:
        print(f"  {name}: building on {graph.num_vertices} vertices ...")
        row, flat = bench_backend(name, graph, leaf_size)
        rows.append(row)
        flats[name] = flat
        print(f"  {name}: {row['total_seconds']}s total")

    # a faster backend that builds different labels is a bug, not a win
    reference_name = selected[0]
    reference = flats[reference_name]
    for name in selected[1:]:
        if flats[name] != reference:
            raise AssertionError(
                f"backend {name!r} produced labels different from {reference_name!r}"
            )

    heap_row = next((row for row in rows if row["backend"] == "heap"), None)
    csr_row = next((row for row in rows if row["backend"] == "csr"), None)
    speedup = None
    if heap_row and csr_row:
        speedup = round(
            float(heap_row["total_seconds"]) / max(float(csr_row["total_seconds"]), 1e-9), 2
        )
        csr_row["speedup_vs_heap"] = speedup
        # per-phase speedups so a single phase regressing (or winning, as
        # the hierarchy phase does since the balanced cuts moved onto the
        # backend seam) is visible in the BENCH trajectory, not hidden
        # inside the total
        for phase in PHASES:
            key = f"seconds_{phase}"
            if key in heap_row and key in csr_row:
                csr_row[f"speedup_vs_heap_{phase}"] = round(
                    float(heap_row[key]) / max(float(csr_row[key]), 1e-9), 2
                )

    return {
        "benchmark": "build",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "leaf_size": leaf_size,
        "scipy_available": scipy_available(),
        # headline numbers kept top-level for cross-PR continuity
        "heap_total_seconds": heap_row["total_seconds"] if heap_row else None,
        "csr_total_seconds": csr_row["total_seconds"] if csr_row else None,
        "csr_speedup_vs_heap": speedup,
        "rows": rows,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--leaf-size", type=int, default=12)
    parser.add_argument(
        "--backends",
        default="heap,csr",
        help=f"comma separated subset of {list(BACKEND_NAMES)}",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_build.json",
    )
    args = parser.parse_args()

    names = [name.strip() for name in args.backends.split(",") if name.strip()]
    record = run_benchmark(args.vertices, args.seed, names, args.leaf_size)
    payload = json.dumps(record, indent=2) + "\n"
    # write-then-rename so an interrupted run never leaves a torn record
    tmp = args.output.with_name(args.output.name + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    tmp.replace(args.output)

    print(payload)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
