#!/usr/bin/env python3
"""Construction benchmark across shortest-path backends.

Builds the HC2L index for one generated road-like graph once per selected
:mod:`repro.core.backends` backend and records the per-phase wall-clock
breakdown:

* ``contraction`` - the degree-one contraction of the input graph,
* ``snapshot`` - flattening each node's working adjacency into the CSR
  snapshot shared by every construction search,
* ``hierarchy`` - balanced cuts (Algorithms 1-2: seed searches, max-flow
  vertex cuts and component re-assignment, all on the backend seam),
* ``labelling`` - ranking + pruneability-tracking searches,
* ``shortcuts`` - border searches + redundancy filtering (Algorithm 3),
* ``flatten`` - packing the nested labelling into the flat buffers.

Backends are compared per phase (``speedup_vs_heap_<phase>`` on the csr
row) as well as in total, so a single-phase regression or win - e.g. the
hierarchy phase since the balanced cuts moved onto the seam - stays
visible across PRs.

The labellings produced by every backend are verified **bit-identical**
before anything is written, so a speed-up can never hide a wrong label.
The rows land in ``BENCH_build.json`` (uploaded by CI next to
``BENCH_query.json``) so build-time regressions are tracked across PRs
the same way query regressions are.

``--scaling`` additionally sweeps a scaling curve: one graph per size in
``--sizes``, built once per construction *mode* (``serial``/``thread``/
``process`` x ``heap``/``csr``), with every mode's labels verified
bit-identical against the first before any row is recorded.  Each mode
row carries the same per-phase breakdown plus ``speedup_vs_heap[_phase]``
against the same-size ``serial-heap`` row and - on ``process-csr`` -
``speedup_vs_thread_csr`` against the same-size, same-worker-count
``thread-csr`` row.  Every row also lists its five slowest hierarchy
nodes (``slowest_nodes``), so a pathological cut shows up with its depth
and vertex count rather than hiding inside a phase total.

Run with::

    PYTHONPATH=src python benchmarks/bench_build.py \
        [--vertices 3000] [--backends heap,csr] \
        [--flow-methods auto,dinitz,push_relabel] [--output BENCH_build.json] \
        [--scaling] [--sizes 1000,10000,100000] \
        [--modes serial-heap,...,process-csr] [--scaling-workers 2]

``--flow-methods`` sweeps the max-flow solver behind the balanced cuts:
every selected backend is built once per method, each row carries the
resolved ``flow_method``, and all labellings must stay bit-identical.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import RoadNetworkSpec, synthetic_road_network
from repro.core.backends import BACKEND_NAMES, resolve_backend, scipy_available
from repro.flow.vertex_cut import FLOW_METHOD_CHOICES
from repro.core.construction import ConstructionStats, HC2LBuilder
from repro.core.flat import FlatLabelling
from repro.core.parallel import ParallelHC2LBuilder
from repro.graph.contraction import contract_degree_one

PHASES = ("contraction", "snapshot", "hierarchy", "labelling", "shortcuts", "flatten")

#: Scaling-curve construction modes: name -> (parallel_mode, backend).
#: ``parallel_mode`` ``None`` runs the plain sequential builder.
SCALING_MODES: Dict[str, Tuple[Optional[str], str]] = {
    "serial-heap": (None, "heap"),
    "serial-csr": (None, "csr"),
    "thread-heap": ("thread", "heap"),
    "thread-csr": ("thread", "csr"),
    "process-heap": ("process", "heap"),
    "process-csr": ("process", "csr"),
}


def _top_nodes(stats: ConstructionStats, k: int = 5) -> List[Dict[str, object]]:
    """The ``k`` slowest hierarchy nodes, with the cut-vs-label time split.

    ``seconds`` is the node's full wall time (cut + labelling + shortcut
    derivation); ``seconds_cut`` is the balanced-cut share, so a node that
    is slow because of its max-flow cut is distinguishable from one that
    is slow because of its labelling searches.
    """
    slowest = sorted(stats.node_timings, key=lambda t: t[2], reverse=True)[:k]
    return [
        {
            "depth": depth,
            "vertices": vertices,
            "seconds": round(seconds, 4),
            "seconds_cut": round(seconds_cut, 4),
        }
        for depth, vertices, seconds, seconds_cut in slowest
    ]


def _resolved_flow_method(backend, flow_method: Optional[str]) -> str:
    """The max-flow solver a build actually ran (``auto`` defers to the backend)."""
    if flow_method is None or flow_method == "auto":
        return backend.flow_method
    return flow_method


def bench_backend(name: str, graph, leaf_size: int, flow_method: str = "auto"):
    """One full construction under ``name``, with the per-phase breakdown."""
    backend = resolve_backend(name)
    total_start = time.perf_counter()

    contract_start = time.perf_counter()
    contraction = contract_degree_one(graph)
    contraction_seconds = time.perf_counter() - contract_start

    builder = HC2LBuilder(leaf_size=leaf_size, backend=backend, flow_method=flow_method)
    hierarchy, labelling, stats = builder.build(contraction.core)

    flatten_start = time.perf_counter()
    flat = FlatLabelling.from_labelling(labelling)
    flatten_seconds = time.perf_counter() - flatten_start
    total_seconds = time.perf_counter() - total_start

    row: Dict[str, object] = {
        "backend": name,
        "resolved_backend": backend.name,
        "flow_method": _resolved_flow_method(backend, flow_method),
        "total_seconds": round(total_seconds, 4),
        "seconds_contraction": round(contraction_seconds, 4),
        "seconds_flatten": round(flatten_seconds, 4),
        "num_nodes": stats.num_nodes,
        "num_shortcuts": stats.num_shortcuts,
        "tree_height": hierarchy.height(),
        "label_entries": flat.total_entries(),
    }
    for phase, seconds in stats.timer.durations.items():
        row[f"seconds_{phase}"] = round(seconds, 4)
    row["slowest_nodes"] = _top_nodes(stats)
    return row, flat


def bench_mode(mode: str, graph, leaf_size: int, workers: int):
    """One full construction under a scaling mode, with the phase breakdown.

    Serial modes run :class:`HC2LBuilder` directly; thread/process modes
    run :class:`ParallelHC2LBuilder` with ``workers`` workers.  The
    process modes return the flat labelling straight from the streaming
    assembly (its packing time is the ``flatten`` phase of the builder's
    timer); the others flatten the nested labelling here, exactly like
    :func:`bench_backend`.
    """
    parallel_mode, backend_name = SCALING_MODES[mode]
    backend = resolve_backend(backend_name)
    total_start = time.perf_counter()

    contract_start = time.perf_counter()
    contraction = contract_degree_one(graph)
    contraction_seconds = time.perf_counter() - contract_start

    if parallel_mode is None:
        builder = HC2LBuilder(leaf_size=leaf_size, backend=backend)
    else:
        builder = ParallelHC2LBuilder(
            leaf_size=leaf_size,
            backend=backend,
            num_workers=workers,
            parallel_mode=parallel_mode,
        )
    hierarchy, labelling, stats = builder.build(contraction.core)

    if isinstance(labelling, FlatLabelling):
        flat = labelling
        flatten_seconds = stats.timer.get("flatten")
    else:
        flatten_start = time.perf_counter()
        flat = FlatLabelling.from_labelling(labelling)
        flatten_seconds = time.perf_counter() - flatten_start
    total_seconds = time.perf_counter() - total_start

    row: Dict[str, object] = {
        "mode": mode,
        "backend": backend_name,
        "flow_method": _resolved_flow_method(backend, "auto"),
        "parallel_mode": parallel_mode,
        "workers": 1 if parallel_mode is None else workers,
        "total_seconds": round(total_seconds, 4),
        "seconds_contraction": round(contraction_seconds, 4),
        "seconds_flatten": round(flatten_seconds, 4),
        "num_nodes": stats.num_nodes,
        "num_shortcuts": stats.num_shortcuts,
        "num_tasks": stats.num_tasks,
        "tree_height": hierarchy.height(),
        "label_entries": flat.total_entries(),
    }
    for phase, seconds in stats.timer.durations.items():
        row[f"seconds_{phase}"] = round(seconds, 4)
    row["slowest_nodes"] = _top_nodes(stats)
    return row, flat


def run_scaling(
    sizes: List[int],
    modes: List[str] | None = None,
    workers: int = 2,
    seed: int = 2024,
    leaf_size: int = 12,
) -> dict:
    """Scaling curve: one graph per size, one build per mode, rows per size.

    Every mode's labels are verified bit-identical against the first
    selected mode **before** the size's rows are composed - a faster mode
    with different labels aborts the whole benchmark.
    """
    selected = modes or list(SCALING_MODES)
    unknown = [mode for mode in selected if mode not in SCALING_MODES]
    if unknown:
        raise SystemExit(f"unknown modes {unknown}; available: {list(SCALING_MODES)}")

    size_records: List[Dict[str, object]] = []
    for num_vertices in sizes:
        network = synthetic_road_network(
            RoadNetworkSpec("bench-scaling", num_vertices=num_vertices, seed=seed)
        )
        graph = network.distance_graph
        rows: Dict[str, Dict[str, object]] = {}
        flats: Dict[str, FlatLabelling] = {}
        for mode in selected:
            print(f"  [{num_vertices}] {mode}: building ...", flush=True)
            row, flat = bench_mode(mode, graph, leaf_size, workers)
            rows[mode] = row
            flats[mode] = flat
            print(f"  [{num_vertices}] {mode}: {row['total_seconds']}s total", flush=True)

        reference_mode = selected[0]
        for mode in selected[1:]:
            if flats[mode] != flats[reference_mode]:
                raise AssertionError(
                    f"mode {mode!r} produced labels different from "
                    f"{reference_mode!r} at {num_vertices} vertices"
                )

        heap_row = rows.get("serial-heap")
        if heap_row is not None:
            for mode in selected:
                if mode == "serial-heap":
                    continue
                row = rows[mode]
                row["speedup_vs_heap"] = round(
                    float(heap_row["total_seconds"])
                    / max(float(row["total_seconds"]), 1e-9),
                    2,
                )
                for phase in PHASES:
                    key = f"seconds_{phase}"
                    if key in heap_row and key in row:
                        row[f"speedup_vs_heap_{phase}"] = round(
                            float(heap_row[key]) / max(float(row[key]), 1e-9), 2
                        )
        thread_row = rows.get("thread-csr")
        process_row = rows.get("process-csr")
        if thread_row is not None and process_row is not None:
            process_row["speedup_vs_thread_csr"] = round(
                float(thread_row["total_seconds"])
                / max(float(process_row["total_seconds"]), 1e-9),
                2,
            )

        size_records.append(
            {
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "rows": [rows[mode] for mode in selected],
            }
        )
    return {
        "workers": workers,
        "leaf_size": leaf_size,
        "seed": seed,
        "modes": selected,
        "sizes": size_records,
    }


def run_benchmark(
    num_vertices: int,
    seed: int = 2024,
    backends: List[str] | None = None,
    leaf_size: int = 12,
    flow_methods: List[str] | None = None,
) -> dict:
    """Build under every selected backend x flow method, verify labels match.

    The default sweep is one build per backend under ``flow_method="auto"``
    (each backend's own solver default).  Passing explicit flow methods
    multiplies the rows: every selected backend is built once per method,
    and *all* resulting labellings must be bit-identical before anything
    is recorded - a faster solver with different labels aborts the run.
    """
    selected = backends or ["heap", "csr"]
    unknown = [name for name in selected if name not in BACKEND_NAMES]
    if unknown:
        raise SystemExit(f"unknown backends {unknown}; available: {list(BACKEND_NAMES)}")
    selected_methods = flow_methods or ["auto"]
    unknown_methods = [m for m in selected_methods if m not in FLOW_METHOD_CHOICES]
    if unknown_methods:
        raise SystemExit(
            f"unknown flow methods {unknown_methods}; available: {list(FLOW_METHOD_CHOICES)}"
        )

    network = synthetic_road_network(
        RoadNetworkSpec("bench-build", num_vertices=num_vertices, seed=seed)
    )
    graph = network.distance_graph

    rows: List[Dict[str, object]] = []
    flats: Dict[Tuple[str, str], FlatLabelling] = {}
    for name in selected:
        for method in selected_methods:
            tag = name if method == "auto" else f"{name}/{method}"
            print(f"  {tag}: building on {graph.num_vertices} vertices ...")
            row, flat = bench_backend(name, graph, leaf_size, method)
            rows.append(row)
            flats[(name, method)] = flat
            print(f"  {tag}: {row['total_seconds']}s total")

    # a faster backend or solver that builds different labels is a bug,
    # not a win
    reference_key = (selected[0], selected_methods[0])
    reference = flats[reference_key]
    for key, flat in flats.items():
        if key != reference_key and flat != reference:
            raise AssertionError(
                f"backend/flow-method {key!r} produced labels different from "
                f"{reference_key!r}"
            )

    def _auto_row(backend_name: str) -> Optional[Dict[str, object]]:
        candidates = [row for row in rows if row["backend"] == backend_name]
        if not candidates:
            return None
        default_method = _resolved_flow_method(resolve_backend(backend_name), "auto")
        for row in candidates:
            if row["flow_method"] == default_method:
                return row
        return candidates[0]

    heap_row = _auto_row("heap")
    csr_row = _auto_row("csr")
    speedup = None
    if heap_row and csr_row:
        speedup = round(
            float(heap_row["total_seconds"]) / max(float(csr_row["total_seconds"]), 1e-9), 2
        )
        csr_row["speedup_vs_heap"] = speedup
        # per-phase speedups so a single phase regressing (or winning, as
        # the hierarchy phase does since the balanced cuts moved onto the
        # backend seam) is visible in the BENCH trajectory, not hidden
        # inside the total
        for phase in PHASES:
            key = f"seconds_{phase}"
            if key in heap_row and key in csr_row:
                csr_row[f"speedup_vs_heap_{phase}"] = round(
                    float(heap_row[key]) / max(float(csr_row[key]), 1e-9), 2
                )

    return {
        "benchmark": "build",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "leaf_size": leaf_size,
        "flow_methods": selected_methods,
        "scipy_available": scipy_available(),
        # headline numbers kept top-level for cross-PR continuity
        "heap_total_seconds": heap_row["total_seconds"] if heap_row else None,
        "csr_total_seconds": csr_row["total_seconds"] if csr_row else None,
        "csr_speedup_vs_heap": speedup,
        "rows": rows,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--leaf-size", type=int, default=12)
    parser.add_argument(
        "--backends",
        default="heap,csr",
        help=f"comma separated subset of {list(BACKEND_NAMES)}",
    )
    parser.add_argument(
        "--flow-methods",
        default="auto",
        help=(
            "comma separated max-flow solver sweep "
            f"(subset of {list(FLOW_METHOD_CHOICES)}); every backend is "
            "built once per method and all labels must stay bit-identical"
        ),
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_build.json",
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="also sweep the construction-mode scaling curve over --sizes",
    )
    parser.add_argument(
        "--sizes",
        default="1000,10000,100000",
        help="comma separated scaling-curve graph sizes",
    )
    parser.add_argument(
        "--modes",
        default=",".join(SCALING_MODES),
        help=f"comma separated subset of {list(SCALING_MODES)}",
    )
    parser.add_argument(
        "--scaling-workers",
        type=int,
        default=2,
        help="worker count for the thread/process scaling modes",
    )
    args = parser.parse_args()

    names = [name.strip() for name in args.backends.split(",") if name.strip()]
    methods = [m.strip() for m in args.flow_methods.split(",") if m.strip()]
    record = run_benchmark(args.vertices, args.seed, names, args.leaf_size, methods)
    if args.scaling:
        sizes = [int(size) for size in args.sizes.split(",") if size.strip()]
        modes = [mode.strip() for mode in args.modes.split(",") if mode.strip()]
        record["scaling"] = run_scaling(
            sizes, modes, args.scaling_workers, args.seed, args.leaf_size
        )
    payload = json.dumps(record, indent=2) + "\n"
    # write-then-rename so an interrupted run never leaves a torn record
    tmp = args.output.with_name(args.output.name + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    tmp.replace(args.output)

    print(payload)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
