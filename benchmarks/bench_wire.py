#!/usr/bin/env python3
"""Wire-framing microbenchmark: JSON frames vs binary ndarray frames.

Isolates the serialization cost the fleet pays per request, away from
placement, IPC and the query engine: for each payload shape the same
result array is round-tripped (encode + decode) through

* the length-prefixed JSON framing (``encode_frame`` + ``json.loads``
  of the payload, lists of Python floats on the wire), and
* the binary framing (``encode_binary_frame`` +
  ``decode_binary_payload``, raw little-endian float64 bytes viewed
  with ``np.frombuffer``).

Rows land in ``BENCH_wire.json`` (uploaded by CI next to
``BENCH_query.json``) with a ``binary_speedup`` field per shape, so a
regression in either codec is visible across PRs.  Decoded values are
verified bit-identical between the two framings before anything is
written.

Run with::

    PYTHONPATH=src python benchmarks/bench_wire.py \
        [--repeats 200] [--output BENCH_wire.json]
"""

from __future__ import annotations

import argparse
import json
import time
import zlib
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.serving.fleet.protocol import (
    KIND_RESPONSE,
    decode_binary_payload,
    encode_binary_frame,
    encode_frame,
)

#: (label, op, result shape) - the reply shapes the fleet actually ships
PAYLOAD_SHAPES = [
    ("distances-64", "distances", (64,)),
    ("distances-512", "distances", (512,)),
    ("distances-4096", "distances", (4096,)),
    ("many_to_many-8x8", "many_to_many", (8, 8)),
    ("many_to_many-32x32", "many_to_many", (32, 32)),
    ("many_to_many-96x96", "many_to_many", (96, 96)),
]


def _result_array(shape, seed: int) -> np.ndarray:
    """A realistic distance payload: positive floats with a few infs."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(10.0, 50_000.0, size=shape)
    flat = values.reshape(-1)
    flat[:: max(len(flat) // 37, 1)] = np.inf  # unreachable pairs exist
    return np.ascontiguousarray(values)


def _strip_prefix(frame: bytes) -> bytes:
    return frame[4:]


def bench_shape(label: str, op: str, shape, repeats: int) -> Dict[str, object]:
    """Round-trip one payload shape through both framings."""
    # crc32, not hash(): str hashing is salted per process and would make
    # the payload (and hence the timings) differ between runs
    values = _result_array(shape, seed=zlib.crc32(label.encode("utf-8")))
    request_id = 7

    def json_roundtrip() -> List:
        frame = encode_frame(
            {"id": request_id, "ok": True, "value": values.tolist()}
        )
        return json.loads(_strip_prefix(frame).decode("utf-8"))["value"]

    def binary_roundtrip() -> np.ndarray:
        frame = encode_binary_frame(KIND_RESPONSE, op, request_id, [values])
        return decode_binary_payload(_strip_prefix(frame)).arrays[0]

    # verify both codecs reproduce the payload bit-identically first
    json_decoded = np.asarray(json_roundtrip(), dtype=np.float64).reshape(shape)
    binary_decoded = np.asarray(binary_roundtrip()).reshape(shape)
    if json_decoded.tobytes() != values.tobytes():
        raise AssertionError(f"{label}: JSON round trip is not bit-identical")
    if binary_decoded.tobytes() != values.tobytes():
        raise AssertionError(f"{label}: binary round trip is not bit-identical")

    start = time.perf_counter()
    for _ in range(repeats):
        json_roundtrip()
    json_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(repeats):
        binary_roundtrip()
    binary_seconds = time.perf_counter() - start

    num_values = int(np.prod(shape))
    json_frame_bytes = len(encode_frame({"id": request_id, "ok": True, "value": values.tolist()}))
    binary_frame_bytes = len(encode_binary_frame(KIND_RESPONSE, op, request_id, [values]))
    return {
        "payload": label,
        "op": op,
        "num_values": num_values,
        "repeats": repeats,
        "json_frame_bytes": json_frame_bytes,
        "binary_frame_bytes": binary_frame_bytes,
        "bytes_ratio": round(json_frame_bytes / binary_frame_bytes, 2),
        "json_microseconds_per_roundtrip": round(json_seconds / repeats * 1e6, 2),
        "binary_microseconds_per_roundtrip": round(binary_seconds / repeats * 1e6, 2),
        "binary_speedup": round(json_seconds / binary_seconds, 2),
    }


def run_benchmark(repeats: int) -> dict:
    rows = []
    for label, op, shape in PAYLOAD_SHAPES:
        print(f"  {label}: {int(np.prod(shape))} floats x {repeats} round trips ...")
        rows.append(bench_shape(label, op, shape, repeats))
    return {"benchmark": "wire_framing", "rows": rows}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=200)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_wire.json",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        raise SystemExit(f"--repeats must be >= 1, got {args.repeats}")

    record = run_benchmark(args.repeats)
    # write-then-rename so an interrupted run never leaves a torn record
    payload = json.dumps(record, indent=2) + "\n"
    tmp = args.output.with_name(args.output.name + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    tmp.replace(args.output)

    print(json.dumps(record, indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
