"""Benchmark / reproduction of Table 5 - tree height and maximum cut size.

Table 5 contrasts the balanced tree hierarchy of HC2L (shallow, small
cuts) with the tree decompositions used by H2H/P2H (hundreds of levels,
large widths).
"""

from __future__ import annotations

from conftest import write_result

from repro.experiments.report import render_table
from repro.experiments.tables import table5


def test_reproduce_table5(benchmark, distance_evaluation):
    """Assemble Table 5 from the shared evaluation and check the paper's shape."""
    rows = benchmark.pedantic(
        lambda: table5(evaluation=distance_evaluation), rounds=1, iterations=1
    )
    assert len(rows) == len(distance_evaluation.datasets)
    for row in rows:
        # the headline of Table 5: HC2L hierarchies are far shallower than
        # tree decompositions, with smaller cuts than bags
        assert row["height_HC2L"] < row["height_H2H"]
        assert row["max_cut_HC2L"] <= 2 * row["width_H2H"]
    text = render_table(rows, title="Table 5 - tree height and max cut size / width")
    write_result("table5", text)


def test_hierarchy_construction_time(benchmark, primary_dataset):
    """Construction-time micro-benchmark for the balanced tree hierarchy alone."""
    _, _, graph, _ = primary_dataset
    from repro.core.construction import HC2LBuilder

    def build():
        return HC2LBuilder(beta=0.2).build(graph)

    hierarchy, labelling, stats = benchmark.pedantic(build, rounds=1, iterations=1)
    assert hierarchy.height() > 0
    assert labelling.total_entries() > 0
