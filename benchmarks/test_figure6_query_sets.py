"""Benchmark / reproduction of Figure 6 - query time under varying distances.

Figure 6 plots, per dataset, the mean query time of HC2L, H2H, PHL and HL
over ten query sets Q1..Q10 whose pair distances grow geometrically from
``l_min`` to the network diameter.  The reproduced series are written to
``results/figure6.txt``.
"""

from __future__ import annotations

from conftest import write_result

from repro.experiments.figures import Figure6Result
from repro.experiments.harness import query_time_per_set
from repro.experiments.report import render_figure6
from repro.experiments.workloads import distance_stratified_query_sets

METHODS = ["HC2L", "H2H", "PHL", "HL"]
NUM_SETS = 10
PAIRS_PER_SET = 100


def test_reproduce_figure6(benchmark, distance_evaluation):
    """Regenerate the Figure 6 series from the shared evaluation's indexes."""

    def build_series() -> Figure6Result:
        result = Figure6Result(datasets=list(distance_evaluation.datasets), methods=list(METHODS))
        for dataset in distance_evaluation.datasets:
            graph = distance_evaluation.graphs[dataset]
            workload = distance_stratified_query_sets(
                graph, num_sets=NUM_SETS, pairs_per_set=PAIRS_PER_SET, seed=23
            )
            result.set_sizes[dataset] = [len(qs) for qs in workload.query_sets]
            result.series[dataset] = {}
            for method in METHODS:
                index = distance_evaluation.indexes[(dataset, method)]
                result.series[dataset][method] = query_time_per_set(index, workload.query_sets)
        return result

    result = benchmark.pedantic(build_series, rounds=1, iterations=1)

    for dataset in result.datasets:
        series = result.series[dataset]
        assert all(len(values) == NUM_SETS for values in series.values())
        # HC2L should win (or tie) on average across the query sets, which is
        # the visual take-away of Figure 6
        populated = [i for i, size in enumerate(result.set_sizes[dataset]) if size > 0]
        hc2l_mean = _mean([series["HC2L"][i] for i in populated])
        for method in ("H2H", "PHL"):
            assert hc2l_mean <= 1.5 * _mean([series[method][i] for i in populated])

    write_result("figure6", render_figure6(result))


def _mean(values):
    values = [v for v in values if v > 0]
    return sum(values) / len(values) if values else 0.0


def test_local_query_latency(benchmark, distance_evaluation, bench_datasets):
    """Micro-benchmark: HC2L latency on the most local query set (Q1-style)."""
    dataset = bench_datasets[0]
    graph = distance_evaluation.graphs[dataset]
    index = distance_evaluation.indexes[(dataset, "HC2L")]
    workload = distance_stratified_query_sets(graph, num_sets=10, pairs_per_set=200, seed=5)
    local_pairs = next((qs for qs in workload.query_sets if qs), [])

    def run_batch():
        total = 0.0
        for s, t in local_pairs:
            total += index.distance(s, t)
        return total

    assert benchmark(run_batch) >= 0.0
