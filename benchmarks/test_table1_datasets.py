"""Benchmark / reproduction of Table 1 - dataset summary.

The paper's Table 1 lists |V|, |E|, diameter and on-disk size for the ten
road networks.  Here the synthetic stand-ins are generated and summarised;
the benchmark measures generation + summary time and the reproduced rows
are written to ``results/table1.txt``.
"""

from __future__ import annotations

from conftest import write_result

from repro.experiments.datasets import clear_dataset_cache, dataset_summary
from repro.experiments.report import render_table


def test_table1_dataset_summary(benchmark, bench_datasets):
    """Generate every benchmark dataset and render the Table 1 rows."""

    def build_summary():
        clear_dataset_cache()
        return dataset_summary(bench_datasets)

    rows = benchmark.pedantic(build_summary, rounds=1, iterations=1)
    assert [row["dataset"] for row in rows] == bench_datasets
    for row in rows:
        assert row["num_vertices"] > 0
        assert row["num_edges"] > 0
        assert row["diameter_estimate"] > 0

    text = render_table(rows, title="Table 1 - dataset summary (synthetic stand-ins)")
    path = write_result("table1", text)
    assert path.exists()
