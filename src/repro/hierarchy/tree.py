"""Balanced tree hierarchy data structure.

A :class:`BalancedTreeHierarchy` is the ``H_G`` of the paper: a binary tree
where each node holds an (ordered) vertex cut of the subgraph it was built
from, and every vertex of the graph is mapped to exactly one node (the node
whose cut it belongs to, or a leaf node).  The structure supports:

* constant-time computation of the *depth* of the lowest common ancestor of
  two vertices via bitstring comparison (Lemma 4.21),
* the structural metrics reported in Table 5 (tree height, maximum /
  average cut size) and Table 3 (LCA storage), and
* validation helpers used by the property-based tests (balance condition
  and the LCA cut-cover condition of Definition 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass
class TreeNode:
    """One node of the balanced tree hierarchy.

    Attributes
    ----------
    index:
        Position of the node in :attr:`BalancedTreeHierarchy.nodes`.
    depth:
        Distance from the root (the root has depth 0).
    bits:
        The left/right path from the root encoded as an integer read
        MSB-first; exactly ``depth`` bits are meaningful.
    cut:
        The ordered vertex cut stored at this node (rank order produced by
        the tail-pruning ranking).  Leaf nodes store all their remaining
        vertices here.
    parent / left / right:
        Node indices (``None`` when absent).
    subtree_size:
        Number of graph vertices mapped into the subtree rooted here.
    is_leaf:
        Whether the node terminated the recursion.
    """

    index: int
    depth: int
    bits: int
    cut: List[int] = field(default_factory=list)
    parent: Optional[int] = None
    left: Optional[int] = None
    right: Optional[int] = None
    subtree_size: int = 0
    is_leaf: bool = False
    #: subtree range ``[range_lo, range_hi)`` in the hierarchy DFS order
    #: (see :meth:`BalancedTreeHierarchy.subtree_ranges`); -1 until computed
    range_lo: int = -1
    range_hi: int = -1


class BalancedTreeHierarchy:
    """The balanced tree hierarchy ``H_G`` over a graph with ``n`` vertices."""

    def __init__(self, num_vertices: int) -> None:
        self.num_vertices = num_vertices
        self.nodes: List[TreeNode] = []
        #: node index of each vertex (-1 until assigned)
        self.vertex_node: List[int] = [-1] * num_vertices
        #: depth of each vertex's node (duplicated for cache-friendly queries)
        self.vertex_depth: List[int] = [0] * num_vertices
        #: bitstring of each vertex's node
        self.vertex_bits: List[int] = [0] * num_vertices
        #: DFS position of each vertex (see :meth:`subtree_ranges`); lazily
        #: computed, or restored directly from a version-3 archive
        self._core_position: Optional[List[int]] = None

    # ------------------------------------------------------------------ #
    # construction API (used by the HC2L builder)
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        depth: int,
        bits: int,
        cut: Sequence[int],
        parent: Optional[int] = None,
        side: Optional[str] = None,
        is_leaf: bool = False,
    ) -> TreeNode:
        """Append a node and map its cut vertices to it.

        ``side`` is ``"left"`` or ``"right"`` for non-root nodes and
        controls which child slot of the parent the new node occupies.
        """
        node = TreeNode(
            index=len(self.nodes),
            depth=depth,
            bits=bits,
            cut=list(cut),
            parent=parent,
            is_leaf=is_leaf,
        )
        self.nodes.append(node)
        if parent is not None:
            if side not in ("left", "right"):
                raise ValueError("non-root nodes must specify side='left' or 'right'")
            parent_node = self.nodes[parent]
            if side == "left":
                parent_node.left = node.index
            else:
                parent_node.right = node.index
        for vertex in cut:
            self.vertex_node[vertex] = node.index
            self.vertex_depth[vertex] = depth
            self.vertex_bits[vertex] = bits
        return node

    def set_subtree_size(self, node_index: int, size: int) -> None:
        """Record how many vertices the subtree rooted at ``node_index`` holds."""
        self.nodes[node_index].subtree_size = size

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def node_of(self, vertex: int) -> TreeNode:
        """The tree node a vertex is mapped to."""
        return self.nodes[self.vertex_node[vertex]]

    def lca_depth(self, u: int, v: int) -> int:
        """Depth of the lowest common ancestor of the nodes of ``u`` and ``v``.

        Computed as the length of the common prefix of the two node
        bitstrings (Section 4.3); O(1) time using integer operations.
        """
        depth_u = self.vertex_depth[u]
        depth_v = self.vertex_depth[v]
        bits_u = self.vertex_bits[u]
        bits_v = self.vertex_bits[v]
        if depth_u > depth_v:
            bits_u >>= depth_u - depth_v
            common = depth_v
        elif depth_v > depth_u:
            bits_v >>= depth_v - depth_u
            common = depth_u
        else:
            common = depth_u
        diff = bits_u ^ bits_v
        if diff == 0:
            return common
        return common - diff.bit_length()

    def lca_node(self, u: int, v: int) -> TreeNode:
        """The lowest common ancestor node itself (walks up; used by tests)."""
        target_depth = self.lca_depth(u, v)
        node = self.node_of(u)
        while node.depth > target_depth:
            assert node.parent is not None
            node = self.nodes[node.parent]
        return node

    def ancestors(self, vertex: int) -> Iterator[TreeNode]:
        """Iterate the nodes on the root-to-node path of ``vertex`` (top-down)."""
        chain: List[TreeNode] = []
        node: Optional[TreeNode] = self.node_of(vertex)
        while node is not None:
            chain.append(node)
            node = self.nodes[node.parent] if node.parent is not None else None
        return iter(reversed(chain))

    # ------------------------------------------------------------------ #
    # metrics (Tables 3 and 5)
    # ------------------------------------------------------------------ #
    def height(self) -> int:
        """Height of the hierarchy (number of levels; a single node counts 1)."""
        if not self.nodes:
            return 0
        return max(node.depth for node in self.nodes) + 1

    def cut_sizes(self, internal_only: bool = False) -> List[int]:
        """Sizes of the cuts stored at the nodes."""
        return [
            len(node.cut)
            for node in self.nodes
            if not (internal_only and node.is_leaf)
        ]

    def max_cut_size(self) -> int:
        """Largest cut size over all nodes (Table 5's "Max Cut Size")."""
        sizes = self.cut_sizes()
        return max(sizes) if sizes else 0

    def average_cut_size(self) -> float:
        """Mean cut size over internal (non-leaf) nodes (Figure 7)."""
        sizes = self.cut_sizes(internal_only=True)
        if not sizes:
            sizes = self.cut_sizes()
        if not sizes:
            return 0.0
        return sum(sizes) / len(sizes)

    def lca_storage_bytes(self) -> int:
        """Bytes needed to answer LCA-depth queries at query time.

        HC2L only needs the per-vertex bitstring (stored as a 64-bit
        integer whose low 6 bits encode the length - Section 4.2.2), i.e.
        8 bytes per vertex.
        """
        return 8 * self.num_vertices

    def num_internal_nodes(self) -> int:
        """Number of non-leaf nodes."""
        return sum(1 for node in self.nodes if not node.is_leaf)

    # ------------------------------------------------------------------ #
    # validation (used by tests)
    # ------------------------------------------------------------------ #
    def check_vertex_assignment(self) -> bool:
        """Every vertex is mapped to exactly one node."""
        return all(node_index >= 0 for node_index in self.vertex_node)

    def check_balance(self, beta: float) -> bool:
        """Condition (1) of Definition 4.1 for every internal node.

        Leaf children and missing children count as empty subtrees.  The
        bottleneck handling of Algorithm 1 can exceed the bound by the
        (tiny) number of bottleneck vertices, so a slack of one vertex is
        tolerated, plus whole-subtree slack for degenerate nodes whose
        subgraph was too small to split evenly.
        """
        for node in self.nodes:
            if node.is_leaf:
                continue
            subtree = node.subtree_size
            if subtree <= 2:
                continue
            limit = (1.0 - beta) * subtree + 1.0
            for child_index in (node.left, node.right):
                if child_index is None:
                    continue
                if self.nodes[child_index].subtree_size > limit:
                    return False
        return True

    # ------------------------------------------------------------------ #
    # subtree ranges (the hierarchy-aligned shard layout)
    # ------------------------------------------------------------------ #
    def subtree_ranges(self) -> List[int]:
        """Linearise the hierarchy and return the DFS position of each vertex.

        The DFS order visits each node's cut vertices (in their stored
        rank order) before descending into the left and then the right
        subtree.  In the resulting position space every subtree occupies
        one contiguous range, recorded on the nodes as
        ``[range_lo, range_hi)``; this is what makes range-sharded label
        stores *hierarchy-aligned* - a shard boundary placed at a subtree
        edge never splits the vertices the construction's cuts grouped
        together.  Computed once and cached (the hierarchy is append-only
        after construction); version-3 archives persist the result so
        loading skips the walk.
        """
        if self._core_position is not None:
            return self._core_position
        position: List[int] = [-1] * self.num_vertices
        cursor = 0
        roots = [node.index for node in self.nodes if node.parent is None]
        for root in roots:
            stack = [root]
            while stack:
                index = stack.pop()
                node = self.nodes[index]
                node.range_lo = cursor
                for vertex in node.cut:
                    position[vertex] = cursor
                    cursor += 1
                # defer range_hi until the subtree size is known below
                if node.right is not None:
                    stack.append(node.right)
                if node.left is not None:
                    stack.append(node.left)
        # a subtree's vertices are exactly its subgraph's vertices, so the
        # contiguous DFS range ends subtree_size positions after it starts
        for node in self.nodes:
            node.range_hi = node.range_lo + node.subtree_size
        self._core_position = position
        return position

    def set_core_positions(self, position: Sequence[int]) -> None:
        """Restore persisted DFS positions (and per-node ranges) on load."""
        self._core_position = [int(p) for p in position]

    def core_order(self) -> List[int]:
        """Vertex at each DFS position (the inverse of :meth:`subtree_ranges`)."""
        position = self.subtree_ranges()
        order = [-1] * self.num_vertices
        for vertex, pos in enumerate(position):
            order[pos] = vertex
        return order

    def subtree_vertices(self, node_index: int) -> List[int]:
        """All graph vertices mapped into the subtree rooted at ``node_index``."""
        result: List[int] = []
        stack = [node_index]
        while stack:
            index = stack.pop()
            node = self.nodes[index]
            result.extend(node.cut)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return result

    def describe(self) -> Dict[str, float]:
        """Summary statistics bundle used by the experiment harness."""
        return {
            "height": float(self.height()),
            "max_cut": float(self.max_cut_size()),
            "avg_cut": float(self.average_cut_size()),
            "nodes": float(len(self.nodes)),
            "internal_nodes": float(self.num_internal_nodes()),
            "lca_bytes": float(self.lca_storage_bytes()),
        }


def derive_shard_boundaries(
    hierarchy: BalancedTreeHierarchy, num_shards: int
) -> Tuple[List[int], List[int]]:
    """Shard boundaries aligned with the hierarchy's top cuts.

    Returns ``(boundaries, order)``: ``order`` is the hierarchy DFS order
    (position ``p`` holds vertex ``order[p]``; every subtree contiguous)
    and ``boundaries`` is a monotone edge sequence
    ``[0, b_1, ..., num_vertices]`` over *positions* with exactly
    ``num_shards`` ranges.  Interior boundaries are placed at subtree
    starts whenever the tree offers one, descending from the root and
    splitting each range proportionally to the sizes of the two child
    blocks - so shards follow the construction's own cuts, which is what
    makes subtree-local query traffic stay inside one shard.

    Both this edge sequence and the even split tile the vertex range with
    no gap or overlap; the property tests pin that down.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    m = hierarchy.num_vertices
    if not hierarchy.nodes:
        return [round(k * m / num_shards) for k in range(num_shards + 1)], list(range(m))
    hierarchy.subtree_ranges()
    order = hierarchy.core_order()
    nodes = hierarchy.nodes
    roots = [node.index for node in nodes if node.parent is None]
    edges = [0]

    def split(node_index: int, lo: int, hi: int, shards: int) -> None:
        """Append the upper edges of ``shards`` ranges tiling ``[lo, hi)``."""
        if shards == 1:
            edges.append(hi)
            return
        node = nodes[node_index]
        left, right = node.left, node.right
        if left is None and right is None:
            # no subtree edge to snap to (leaf asked to split further):
            # fall back to an even split of the remaining positions
            for j in range(1, shards):
                edges.append(lo + round(j * (hi - lo) / shards))
            edges.append(hi)
            return
        if left is None or right is None:
            child = left if left is not None else right
            # the cut block in front of the lone child joins its first range
            split(child, lo, hi, shards)
            return
        boundary = nodes[right].range_lo  # first position of the right subtree
        left_block = boundary - lo  # cut block + left subtree
        span = hi - lo
        left_shards = max(1, min(shards - 1, round(shards * left_block / span)))
        split(left, lo, boundary, left_shards)
        split(right, boundary, hi, shards - left_shards)

    if len(roots) == 1:
        split(roots[0], 0, m, num_shards)
    else:  # pragma: no cover - a hierarchy forest only arises in edge cases
        for k in range(1, num_shards):
            edges.append(round(k * m / num_shards))
        edges.append(m)
    return edges, order
