"""Balanced tree hierarchy data structure.

A :class:`BalancedTreeHierarchy` is the ``H_G`` of the paper: a binary tree
where each node holds an (ordered) vertex cut of the subgraph it was built
from, and every vertex of the graph is mapped to exactly one node (the node
whose cut it belongs to, or a leaf node).  The structure supports:

* constant-time computation of the *depth* of the lowest common ancestor of
  two vertices via bitstring comparison (Lemma 4.21),
* the structural metrics reported in Table 5 (tree height, maximum /
  average cut size) and Table 3 (LCA storage), and
* validation helpers used by the property-based tests (balance condition
  and the LCA cut-cover condition of Definition 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence


@dataclass
class TreeNode:
    """One node of the balanced tree hierarchy.

    Attributes
    ----------
    index:
        Position of the node in :attr:`BalancedTreeHierarchy.nodes`.
    depth:
        Distance from the root (the root has depth 0).
    bits:
        The left/right path from the root encoded as an integer read
        MSB-first; exactly ``depth`` bits are meaningful.
    cut:
        The ordered vertex cut stored at this node (rank order produced by
        the tail-pruning ranking).  Leaf nodes store all their remaining
        vertices here.
    parent / left / right:
        Node indices (``None`` when absent).
    subtree_size:
        Number of graph vertices mapped into the subtree rooted here.
    is_leaf:
        Whether the node terminated the recursion.
    """

    index: int
    depth: int
    bits: int
    cut: List[int] = field(default_factory=list)
    parent: Optional[int] = None
    left: Optional[int] = None
    right: Optional[int] = None
    subtree_size: int = 0
    is_leaf: bool = False


class BalancedTreeHierarchy:
    """The balanced tree hierarchy ``H_G`` over a graph with ``n`` vertices."""

    def __init__(self, num_vertices: int) -> None:
        self.num_vertices = num_vertices
        self.nodes: List[TreeNode] = []
        #: node index of each vertex (-1 until assigned)
        self.vertex_node: List[int] = [-1] * num_vertices
        #: depth of each vertex's node (duplicated for cache-friendly queries)
        self.vertex_depth: List[int] = [0] * num_vertices
        #: bitstring of each vertex's node
        self.vertex_bits: List[int] = [0] * num_vertices

    # ------------------------------------------------------------------ #
    # construction API (used by the HC2L builder)
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        depth: int,
        bits: int,
        cut: Sequence[int],
        parent: Optional[int] = None,
        side: Optional[str] = None,
        is_leaf: bool = False,
    ) -> TreeNode:
        """Append a node and map its cut vertices to it.

        ``side`` is ``"left"`` or ``"right"`` for non-root nodes and
        controls which child slot of the parent the new node occupies.
        """
        node = TreeNode(
            index=len(self.nodes),
            depth=depth,
            bits=bits,
            cut=list(cut),
            parent=parent,
            is_leaf=is_leaf,
        )
        self.nodes.append(node)
        if parent is not None:
            if side not in ("left", "right"):
                raise ValueError("non-root nodes must specify side='left' or 'right'")
            parent_node = self.nodes[parent]
            if side == "left":
                parent_node.left = node.index
            else:
                parent_node.right = node.index
        for vertex in cut:
            self.vertex_node[vertex] = node.index
            self.vertex_depth[vertex] = depth
            self.vertex_bits[vertex] = bits
        return node

    def set_subtree_size(self, node_index: int, size: int) -> None:
        """Record how many vertices the subtree rooted at ``node_index`` holds."""
        self.nodes[node_index].subtree_size = size

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def node_of(self, vertex: int) -> TreeNode:
        """The tree node a vertex is mapped to."""
        return self.nodes[self.vertex_node[vertex]]

    def lca_depth(self, u: int, v: int) -> int:
        """Depth of the lowest common ancestor of the nodes of ``u`` and ``v``.

        Computed as the length of the common prefix of the two node
        bitstrings (Section 4.3); O(1) time using integer operations.
        """
        depth_u = self.vertex_depth[u]
        depth_v = self.vertex_depth[v]
        bits_u = self.vertex_bits[u]
        bits_v = self.vertex_bits[v]
        if depth_u > depth_v:
            bits_u >>= depth_u - depth_v
            common = depth_v
        elif depth_v > depth_u:
            bits_v >>= depth_v - depth_u
            common = depth_u
        else:
            common = depth_u
        diff = bits_u ^ bits_v
        if diff == 0:
            return common
        return common - diff.bit_length()

    def lca_node(self, u: int, v: int) -> TreeNode:
        """The lowest common ancestor node itself (walks up; used by tests)."""
        target_depth = self.lca_depth(u, v)
        node = self.node_of(u)
        while node.depth > target_depth:
            assert node.parent is not None
            node = self.nodes[node.parent]
        return node

    def ancestors(self, vertex: int) -> Iterator[TreeNode]:
        """Iterate the nodes on the root-to-node path of ``vertex`` (top-down)."""
        chain: List[TreeNode] = []
        node: Optional[TreeNode] = self.node_of(vertex)
        while node is not None:
            chain.append(node)
            node = self.nodes[node.parent] if node.parent is not None else None
        return iter(reversed(chain))

    # ------------------------------------------------------------------ #
    # metrics (Tables 3 and 5)
    # ------------------------------------------------------------------ #
    def height(self) -> int:
        """Height of the hierarchy (number of levels; a single node counts 1)."""
        if not self.nodes:
            return 0
        return max(node.depth for node in self.nodes) + 1

    def cut_sizes(self, internal_only: bool = False) -> List[int]:
        """Sizes of the cuts stored at the nodes."""
        return [
            len(node.cut)
            for node in self.nodes
            if not (internal_only and node.is_leaf)
        ]

    def max_cut_size(self) -> int:
        """Largest cut size over all nodes (Table 5's "Max Cut Size")."""
        sizes = self.cut_sizes()
        return max(sizes) if sizes else 0

    def average_cut_size(self) -> float:
        """Mean cut size over internal (non-leaf) nodes (Figure 7)."""
        sizes = self.cut_sizes(internal_only=True)
        if not sizes:
            sizes = self.cut_sizes()
        if not sizes:
            return 0.0
        return sum(sizes) / len(sizes)

    def lca_storage_bytes(self) -> int:
        """Bytes needed to answer LCA-depth queries at query time.

        HC2L only needs the per-vertex bitstring (stored as a 64-bit
        integer whose low 6 bits encode the length - Section 4.2.2), i.e.
        8 bytes per vertex.
        """
        return 8 * self.num_vertices

    def num_internal_nodes(self) -> int:
        """Number of non-leaf nodes."""
        return sum(1 for node in self.nodes if not node.is_leaf)

    # ------------------------------------------------------------------ #
    # validation (used by tests)
    # ------------------------------------------------------------------ #
    def check_vertex_assignment(self) -> bool:
        """Every vertex is mapped to exactly one node."""
        return all(node_index >= 0 for node_index in self.vertex_node)

    def check_balance(self, beta: float) -> bool:
        """Condition (1) of Definition 4.1 for every internal node.

        Leaf children and missing children count as empty subtrees.  The
        bottleneck handling of Algorithm 1 can exceed the bound by the
        (tiny) number of bottleneck vertices, so a slack of one vertex is
        tolerated, plus whole-subtree slack for degenerate nodes whose
        subgraph was too small to split evenly.
        """
        for node in self.nodes:
            if node.is_leaf:
                continue
            subtree = node.subtree_size
            if subtree <= 2:
                continue
            limit = (1.0 - beta) * subtree + 1.0
            for child_index in (node.left, node.right):
                if child_index is None:
                    continue
                if self.nodes[child_index].subtree_size > limit:
                    return False
        return True

    def subtree_vertices(self, node_index: int) -> List[int]:
        """All graph vertices mapped into the subtree rooted at ``node_index``."""
        result: List[int] = []
        stack = [node_index]
        while stack:
            index = stack.pop()
            node = self.nodes[index]
            result.extend(node.cut)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return result

    def describe(self) -> Dict[str, float]:
        """Summary statistics bundle used by the experiment harness."""
        return {
            "height": float(self.height()),
            "max_cut": float(self.max_cut_size()),
            "avg_cut": float(self.average_cut_size()),
            "nodes": float(len(self.nodes)),
            "internal_nodes": float(self.num_internal_nodes()),
            "lca_bytes": float(self.lca_storage_bytes()),
        }
