"""Balanced tree hierarchy (Definition 4.1).

The hierarchy is a binary tree whose nodes carry vertex cuts; every graph
vertex maps to exactly one node.  Node identities are bitstrings along the
root-to-node path, so the *level* of the lowest common ancestor of two
vertices is the length of the common prefix of their bitstrings - an O(1)
operation, which is the paper's replacement for RMQ-based LCA indexes.
"""

from repro.hierarchy.tree import BalancedTreeHierarchy, TreeNode, derive_shard_boundaries

__all__ = ["BalancedTreeHierarchy", "TreeNode", "derive_shard_boundaries"]
