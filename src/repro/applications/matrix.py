"""Many-to-many distance batches (the ride-hailing workload).

The introduction of the paper describes matching 1k cars to 10k customers,
i.e. evaluating millions of point-to-point distances per second.  These
helpers evaluate such batches on top of any distance index and implement
the simple nearest-car assignment the example describes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.oracle import DistanceOracle

INF = float("inf")


def distance_matrix(
    index: DistanceOracle, sources: Sequence[int], targets: Sequence[int]
) -> np.ndarray:
    """The ``len(sources) x len(targets)`` matrix of exact distances.

    One ``many_to_many`` protocol call: vectorised for the batch-capable
    oracles, the equivalent loop for the rest - identical results either
    way.
    """
    if not len(sources) or not len(targets):
        return np.empty((len(sources), len(targets)), dtype=float)
    return np.asarray(index.many_to_many(sources, targets), dtype=float)


def nearest_assignment(
    index: DistanceOracle, cars: Sequence[int], customers: Sequence[int]
) -> List[Tuple[int, int, float]]:
    """Greedy nearest-car assignment: each customer gets the closest free car.

    Customers are processed in order of their best available distance
    (shortest pickup first), each consuming one car; customers left without
    a reachable car are omitted.  Returns ``(customer, car, distance)``
    triples.  This is the simple matching loop the paper's ride-hailing
    example sketches, not an optimal bipartite matching.
    """
    if not cars:
        return []
    matrix = distance_matrix(index, customers, cars)
    free = set(range(len(cars)))
    assignments: List[Tuple[int, int, float]] = []
    order = list(range(len(customers)))
    # repeatedly pick the (customer, car) pair with the globally smallest
    # distance among unassigned customers and free cars
    unassigned = set(order)
    while unassigned and free:
        best: Tuple[float, int, int] | None = None
        for i in unassigned:
            for j in free:
                d = matrix[i, j]
                if d == INF:
                    continue
                if best is None or d < best[0]:
                    best = (d, i, j)
        if best is None:
            break
        d, i, j = best
        assignments.append((customers[i], cars[j], float(d)))
        unassigned.remove(i)
        free.remove(j)
    return assignments
