"""Adapters that feed application workloads through the batch query API.

The applications accept *any* distance index (HC2L, a baseline oracle, a
mock in the tests).  Indexes that expose the batch interface of
:class:`repro.core.engine.QueryEngine` (``distances`` / ``one_to_many``)
get their whole workload evaluated in one vectorised call; everything else
falls back to a per-pair loop with identical results.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.applications.knn import DistanceIndex


def batch_distances(index: DistanceIndex, pairs: Sequence[Tuple[int, int]]) -> List[float]:
    """Distances for ``(s, t)`` pairs, batched when the index supports it."""
    if len(pairs) == 0:  # len, not truthiness: numpy arrays are ambiguous
        return []
    batched = getattr(index, "distances", None)
    if batched is not None:
        result = batched(pairs)
        return result.tolist() if hasattr(result, "tolist") else list(result)
    return [index.distance(s, t) for s, t in pairs]


def one_to_many_distances(
    index: DistanceIndex, source: int, targets: Sequence[int]
) -> List[float]:
    """Distances from ``source`` to each target, batched when supported."""
    if len(targets) == 0:  # len, not truthiness: numpy arrays are ambiguous
        return []
    batched = getattr(index, "one_to_many", None)
    if batched is not None:
        result = batched(source, targets)
        return result.tolist() if hasattr(result, "tolist") else list(result)
    return [index.distance(source, t) for t in targets]
