"""Adapters that feed application workloads through the batch query API.

The applications accept *any* :class:`repro.core.oracle.DistanceOracle`
(HC2L, a baseline oracle, a serving wrapper).  Since every method now
implements the batch-first protocol there is no capability probing left:
the whole workload goes through one ``distances`` / ``one_to_many`` call,
and oracles whose structure cannot vectorise run the same loop they would
have run per pair - with identical results either way.

These helpers return plain Python lists, which is what the application
code (heaps, sorting, greedy loops) consumes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.oracle import DistanceOracle


def batch_distances(index: DistanceOracle, pairs: Sequence[Tuple[int, int]]) -> List[float]:
    """Distances for ``(s, t)`` pairs as a list, via one batch call."""
    if len(pairs) == 0:  # len, not truthiness: numpy arrays are ambiguous
        return []
    return index.distances(pairs).tolist()


def one_to_many_distances(
    index: DistanceOracle, source: int, targets: Sequence[int]
) -> List[float]:
    """Distances from ``source`` to each target as a list, via one batch call."""
    if len(targets) == 0:  # len, not truthiness: numpy arrays are ambiguous
        return []
    return index.one_to_many(source, targets).tolist()
