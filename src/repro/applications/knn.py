"""k-nearest point-of-interest queries on top of a distance index.

The paper's introduction cites k-nearest POI recommendation as one of the
query-heavy applications that need microsecond distance lookups.  Given a
set of POI vertices and any distance index (HC2L or a baseline), the class
below answers "which k POIs are closest to this vertex" by evaluating one
distance query per POI - exactly the access pattern whose per-query cost
the paper optimises.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence, Tuple

from repro.core.oracle import DistanceOracle

#: Backwards-compatible alias - the applications used to declare their own
#: minimal scalar protocol; everything now speaks the batch-first one.
DistanceIndex = DistanceOracle


class KNearestNeighbours:
    """k-nearest-POI queries over a fixed POI set.

    Parameters
    ----------
    index:
        A distance index (e.g. :class:`repro.HC2LIndex`).
    pois:
        The candidate vertices (taxis, restaurants, charging stations, ...).
    """

    def __init__(self, index: DistanceOracle, pois: Iterable[int]) -> None:
        self.index = index
        self.pois: List[int] = list(dict.fromkeys(pois))
        if not self.pois:
            raise ValueError("at least one POI is required")

    def _poi_distances(self, vertex: int) -> List[float]:
        from repro.applications.batching import one_to_many_distances

        return one_to_many_distances(self.index, vertex, self.pois)

    def query(self, vertex: int, k: int = 1) -> List[Tuple[int, float]]:
        """The ``k`` POIs nearest to ``vertex`` as ``(poi, distance)`` pairs.

        All POI distances are evaluated in one batched call when the index
        supports it.  Unreachable POIs (infinite distance) are excluded;
        fewer than ``k`` results are returned when not enough POIs are
        reachable.
        """
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        distances = zip(self._poi_distances(vertex), self.pois)
        reachable = [(d, poi) for d, poi in distances if d != float("inf")]
        nearest = heapq.nsmallest(k, reachable)
        return [(poi, d) for d, poi in nearest]

    def within_radius(self, vertex: int, radius: float) -> List[Tuple[int, float]]:
        """All POIs within ``radius`` of ``vertex``, nearest first."""
        hits = zip(self._poi_distances(vertex), self.pois)
        selected = sorted((d, poi) for d, poi in hits if d <= radius)
        return [(poi, d) for d, poi in selected]

    def batch_query(self, vertices: Sequence[int], k: int = 1) -> List[List[Tuple[int, float]]]:
        """k-nearest POIs for every vertex in ``vertices`` (one list per vertex)."""
        return [self.query(vertex, k) for vertex in vertices]
