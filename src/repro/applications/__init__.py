"""Application-level helpers built on top of distance indexes.

The paper motivates HC2L with latency-critical applications that issue
huge batches of distance queries: ride hailing (match thousands of cars to
customers each second), k-nearest point-of-interest recommendation and
delivery-route planning.  This package provides those building blocks on
top of any :class:`repro.core.oracle.DistanceOracle` - HC2L, every
baseline, and the serving wrappers all qualify, and each workload is
evaluated through the batch interface in as few calls as possible:

* :class:`KNearestNeighbours` - k nearest POIs to a query vertex,
* :func:`distance_matrix` / :func:`nearest_assignment` - many-to-many
  batches such as the "1k cars x 10k customers" workload of the
  introduction,
* :class:`RoutePlanner` - greedy multi-stop route planning over an index.
"""

from repro.applications.knn import KNearestNeighbours
from repro.applications.matrix import distance_matrix, nearest_assignment
from repro.applications.routing import RoutePlanner

__all__ = [
    "KNearestNeighbours",
    "distance_matrix",
    "nearest_assignment",
    "RoutePlanner",
]
