"""Multi-stop route planning on top of a distance index.

Another application the paper's introduction motivates: optimising
delivery routes with multiple pick-up and drop-off points that change
dynamically.  The planner below solves the classic "visit all stops,
return (optionally) to the depot" problem with the nearest-neighbour
heuristic plus 2-opt improvement - every evaluation is a distance-index
query, so better indexes directly translate into faster planning.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.applications.batching import batch_distances, one_to_many_distances
from repro.core.oracle import DistanceOracle

INF = float("inf")


class RoutePlanner:
    """Heuristic multi-stop route planning over a distance index."""

    def __init__(self, index: DistanceOracle) -> None:
        self.index = index

    # ------------------------------------------------------------------ #
    def route(
        self,
        depot: int,
        stops: Sequence[int],
        return_to_depot: bool = True,
        two_opt_rounds: int = 2,
    ) -> Tuple[List[int], float]:
        """Plan a route from ``depot`` through every stop.

        Returns ``(ordered_vertices, total_length)``; the route starts at
        the depot and ends at the depot when ``return_to_depot`` is set.
        Unreachable stops raise ``ValueError`` - the caller should filter
        them out (e.g. with :class:`KNearestNeighbours.within_radius`).
        """
        unique_stops = [s for s in dict.fromkeys(stops) if s != depot]
        if not unique_stops:
            path = [depot, depot] if return_to_depot else [depot]
            return path, 0.0
        order = self._nearest_neighbour_order(depot, unique_stops)
        for _ in range(max(0, two_opt_rounds)):
            improved, order = self._two_opt_pass(depot, order, return_to_depot)
            if not improved:
                break
        route = [depot] + order + ([depot] if return_to_depot else [])
        return route, self.route_length(route)

    def route_length(self, route: Sequence[int]) -> float:
        """Total length of a vertex sequence under the index's metric.

        All legs are evaluated in one batched call when the index supports
        the batch API.
        """
        legs = batch_distances(self.index, list(zip(route, route[1:])))
        total = 0.0
        for (a, b), leg in zip(zip(route, route[1:]), legs):
            if leg == INF:
                raise ValueError(f"stop {b} is unreachable from {a}")
            total += leg
        return total

    # ------------------------------------------------------------------ #
    def _nearest_neighbour_order(self, depot: int, stops: Sequence[int]) -> List[int]:
        remaining = list(stops)
        order: List[int] = []
        current = depot
        while remaining:
            best: Optional[Tuple[float, int]] = None
            for d, stop in zip(one_to_many_distances(self.index, current, remaining), remaining):
                if best is None or d < best[0]:
                    best = (d, stop)
            assert best is not None
            if best[0] == INF:
                raise ValueError(f"stop {best[1]} is unreachable from {current}")
            order.append(best[1])
            remaining.remove(best[1])
            current = best[1]
        return order

    def _two_opt_pass(
        self, depot: int, order: List[int], return_to_depot: bool
    ) -> Tuple[bool, List[int]]:
        """One pass of 2-opt segment reversal; returns (improved, new order)."""
        route = [depot] + order + ([depot] if return_to_depot else [])
        best_length = self.route_length(route)
        n = len(order)
        improved = False
        for i in range(n - 1):
            for j in range(i + 1, n):
                candidate = order[:i] + list(reversed(order[i : j + 1])) + order[j + 1 :]
                candidate_route = [depot] + candidate + ([depot] if return_to_depot else [])
                length = self.route_length(candidate_route)
                if length + 1e-12 < best_length:
                    order = candidate
                    best_length = length
                    improved = True
        return improved, order
