"""Algorithm 1 - BalancedPartition.

Splits a (sub)graph into two initial partitions ``P'_A`` and ``P'_B`` and a
*cut region* ``C`` such that the initial partitions each hold roughly a
``beta`` fraction of the vertices and are as far apart as possible.  The
actual minimum vertex cut is found inside the cut region by Algorithm 2
(:mod:`repro.partition.cut`).

The implementation follows the paper's pseudo-code closely:

1. Disconnected inputs are handled first: if the largest component is small
   enough the split is already balanced with an empty cut; otherwise the
   partitioning happens inside the largest component and every other
   component joins the cut region.
2. Two seed vertices ``v_A`` (far from an arbitrary vertex) and ``v_B``
   (far from ``v_A``) are chosen; every vertex receives a partition weight
   ``pw(v) = d(v_A, v) - d(v_B, v)``.
3. The ``beta * |V|`` vertices with the smallest / largest partition
   weights seed ``P'_A`` / ``P'_B``.  When the two boundary weights
   coincide a *bottleneck* vertex funnels too many equivalence classes
   through itself; it is removed temporarily, the partition recomputed on
   the remainder and the bottleneck finally added to the cut region.
4. Otherwise each initial partition is closed under its boundary weight so
   whole equivalence classes stay together.

All searches run over a CSR snapshot
(:class:`~repro.core.flat.FlatWorkingGraph`) through the pluggable
:class:`~repro.core.backends.ShortestPathBackend` seam - the same seam the
labelling and shortcut passes use - so the seed selection is one batched
scipy call per source under the ``csr`` backend and the reference heap
Dijkstra under ``heap``, with bit-identical distances either way.  The
seed searches share a per-call memo of distance rows: the third search
(from ``v_B``) frequently lands back on the arbitrary start vertex, in
which case the first search's distance array is reused instead of being
recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.backends import BackendSpec, ShortestPathBackend, resolve_backend
from repro.core.flat import FlatWorkingGraph
from repro.partition.working_graph import WorkingAdjacency
from repro.utils.validation import check_balance_parameter

INF = float("inf")


@dataclass
class BalancedPartitionResult:
    """Outcome of Algorithm 1.

    ``initial_a`` and ``initial_b`` are the two initial partitions
    (``P'_A`` / ``P'_B``); ``cut_region`` is the set of vertices between
    them inside which Algorithm 2 searches for a minimum vertex cut.
    The three lists partition the vertex set of the input subgraph.
    """

    initial_a: List[int]
    cut_region: List[int]
    initial_b: List[int]

    def sizes(self) -> Tuple[int, int, int]:
        """Sizes ``(|P'_A|, |C|, |P'_B|)``."""
        return len(self.initial_a), len(self.cut_region), len(self.initial_b)


def balanced_partition(
    adjacency: Optional[WorkingAdjacency] = None,
    beta: float = 0.2,
    _depth: int = 0,
    flat: Optional[FlatWorkingGraph] = None,
    backend: BackendSpec = None,
) -> BalancedPartitionResult:
    """Compute a balanced partition of a working subgraph (Algorithm 1).

    Parameters
    ----------
    adjacency:
        Working adjacency of the subgraph to split (not modified).  May be
        omitted when ``flat`` is given.
    beta:
        Balance parameter from Definition 4.1, ``0 < beta <= 0.5``.
    flat:
        Pre-built CSR snapshot of ``adjacency``; the hierarchy builder
        passes the per-node snapshot it shares with the labelling pass.
    backend:
        The :class:`~repro.core.backends.ShortestPathBackend` running the
        seed searches and component scans (name, instance, or ``None``
        for the default).

    Returns
    -------
    BalancedPartitionResult
        The two initial partitions and the cut region.
    """
    check_balance_parameter(beta)
    if flat is None:
        if adjacency is None:
            raise ValueError("provide the subgraph as 'adjacency' or 'flat'")
        flat = FlatWorkingGraph(adjacency)
    search = resolve_backend(backend)

    vertices = flat.vertices  # sorted ascending, dense id == rank
    n = len(vertices)
    if n == 0:
        return BalancedPartitionResult([], [], [])
    if n == 1:
        return BalancedPartitionResult([], list(vertices), [])

    # Lines 11-12: pick seeds as far apart as possible.  Distance rows are
    # memoised by source so the third search can reuse the first one when
    # the farthest vertex from v_A turns out to be the arbitrary start.
    rows: Dict[int, np.ndarray] = {}

    def distance_row(source: int) -> np.ndarray:
        row = rows.get(source)
        if row is None:
            row = search.sssp_array(flat, source)
            rows[source] = row
        return row

    # connectivity falls out of the first seed search for free (every
    # vertex reached from the arbitrary start == one component), so the
    # common connected case never pays for a separate component scan
    if np.isinf(distance_row(0).max()):
        components = search.components(flat)
        return _partition_disconnected(flat, components, beta, n, _depth, search)

    # --- connected case ----------------------------------------------- #
    seed_a = _farthest_dense(distance_row(0), 0)
    dist_a = distance_row(seed_a)
    seed_b = _farthest_dense(dist_a, seed_a)
    dist_b = distance_row(seed_b)

    # Line 13: partition weights (dense order == ascending vertex id; the
    # subgraph is connected here, so every entry is finite).
    pw = dist_a - dist_b
    ordered = np.argsort(pw, kind="stable")  # ties break on the dense id

    # Lines 14-15: initial partitions of size beta * |V|.
    k = max(1, int(beta * n))
    w_a = float(pw[ordered[:k]].max())
    w_b = float(pw[ordered[-k:]].min())

    if w_a == w_b:
        # Lines 16-22: bottleneck handling - one equivalence class spans
        # both boundaries; remove its member closest to seed_a and retry.
        equivalence_class = np.nonzero(pw == w_a)[0]
        # np.argmin keeps the first minimum, i.e. the smallest vertex id
        bottleneck = int(equivalence_class[np.argmin(dist_a[equivalence_class])])
        keep = np.ones(n, dtype=bool)
        keep[bottleneck] = False
        remaining = [vertices[i] for i in np.nonzero(keep)[0].tolist()]
        reduced = flat.induce(remaining)
        inner = balanced_partition(
            beta=beta, _depth=_depth + 1, flat=reduced, backend=search
        )
        return BalancedPartitionResult(
            initial_a=inner.initial_a,
            cut_region=sorted(inner.cut_region + [vertices[bottleneck]]),
            initial_b=inner.initial_b,
        )

    # Lines 23-25: close the initial partitions under their boundary weight
    # so equivalence classes are never split.
    mask_a = pw <= w_a
    mask_b = pw >= w_b
    initial_a = [vertices[i] for i in np.nonzero(mask_a)[0].tolist()]
    initial_b = [vertices[i] for i in np.nonzero(mask_b)[0].tolist()]
    cut_region = [vertices[i] for i in np.nonzero(~mask_a & ~mask_b)[0].tolist()]
    return BalancedPartitionResult(initial_a, cut_region, initial_b)


def _farthest_dense(row: np.ndarray, source: int) -> int:
    """Dense id of the vertex farthest from ``source`` in a distance row.

    Ties break on the smaller vertex id (dense ids are ascending original
    ids); unreachable vertices are ignored, and an isolated source is its
    own farthest vertex - the exact contract of the historical
    :func:`~repro.partition.working_graph.farthest_vertex_adjacency`.
    """
    finite = np.isfinite(row)
    if not finite.any():
        return source
    best = float(row[finite].max())
    if best <= 0.0:
        return source
    return int(np.nonzero(finite & (row == best))[0][0])


def _partition_disconnected(
    flat: FlatWorkingGraph,
    components: List[List[int]],
    beta: float,
    n: int,
    depth: int,
    search: ShortestPathBackend,
) -> BalancedPartitionResult:
    """Lines 2-10 of Algorithm 1: the input graph is disconnected."""
    components = sorted(components, key=lambda c: (-len(c), c[0]))
    largest = components[0]
    if len(largest) > (1.0 - beta) * n:
        # Partition inside the largest component; all other components join
        # the cut region (they are cheap to separate later).
        sub = flat.induce(largest)
        inner = balanced_partition(beta=beta, _depth=depth + 1, flat=sub, backend=search)
        others = [v for comp in components[1:] for v in comp]
        return BalancedPartitionResult(
            initial_a=inner.initial_a,
            cut_region=sorted(inner.cut_region + others),
            initial_b=inner.initial_b,
        )
    second = components[1] if len(components) > 1 else []
    used = set(largest) | set(second)
    rest = sorted(v for v in flat.vertices if v not in used)
    return BalancedPartitionResult(
        initial_a=sorted(largest),
        cut_region=rest,
        initial_b=sorted(second),
    )
