"""Algorithm 1 - BalancedPartition.

Splits a (sub)graph into two initial partitions ``P'_A`` and ``P'_B`` and a
*cut region* ``C`` such that the initial partitions each hold roughly a
``beta`` fraction of the vertices and are as far apart as possible.  The
actual minimum vertex cut is found inside the cut region by Algorithm 2
(:mod:`repro.partition.cut`).

The implementation follows the paper's pseudo-code closely:

1. Disconnected inputs are handled first: if the largest component is small
   enough the split is already balanced with an empty cut; otherwise the
   partitioning happens inside the largest component and every other
   component joins the cut region.
2. Two seed vertices ``v_A`` (far from an arbitrary vertex) and ``v_B``
   (far from ``v_A``) are chosen; every vertex receives a partition weight
   ``pw(v) = d(v_A, v) - d(v_B, v)``.
3. The ``beta * |V|`` vertices with the smallest / largest partition
   weights seed ``P'_A`` / ``P'_B``.  When the two boundary weights
   coincide a *bottleneck* vertex funnels too many equivalence classes
   through itself; it is removed temporarily, the partition recomputed on
   the remainder and the bottleneck finally added to the cut region.
4. Otherwise each initial partition is closed under its boundary weight so
   whole equivalence classes stay together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.partition.working_graph import (
    WorkingAdjacency,
    dijkstra_adjacency,
    farthest_vertex_adjacency,
    restrict_adjacency,
)
from repro.graph.components import components_of_adjacency
from repro.utils.validation import check_balance_parameter

INF = float("inf")


@dataclass
class BalancedPartitionResult:
    """Outcome of Algorithm 1.

    ``initial_a`` and ``initial_b`` are the two initial partitions
    (``P'_A`` / ``P'_B``); ``cut_region`` is the set of vertices between
    them inside which Algorithm 2 searches for a minimum vertex cut.
    The three lists partition the vertex set of the input subgraph.
    """

    initial_a: List[int]
    cut_region: List[int]
    initial_b: List[int]

    def sizes(self) -> Tuple[int, int, int]:
        """Sizes ``(|P'_A|, |C|, |P'_B|)``."""
        return len(self.initial_a), len(self.cut_region), len(self.initial_b)


def balanced_partition(
    adjacency: WorkingAdjacency,
    beta: float = 0.2,
    _depth: int = 0,
) -> BalancedPartitionResult:
    """Compute a balanced partition of a working adjacency (Algorithm 1).

    Parameters
    ----------
    adjacency:
        Working adjacency of the subgraph to split (not modified).
    beta:
        Balance parameter from Definition 4.1, ``0 < beta <= 0.5``.

    Returns
    -------
    BalancedPartitionResult
        The two initial partitions and the cut region.
    """
    check_balance_parameter(beta)
    vertices = sorted(adjacency)
    n = len(vertices)
    if n == 0:
        return BalancedPartitionResult([], [], [])
    if n == 1:
        return BalancedPartitionResult([], list(vertices), [])

    components = components_of_adjacency(adjacency)
    if len(components) > 1:
        return _partition_disconnected(adjacency, components, beta, n, _depth)

    # --- connected case ----------------------------------------------- #
    # Lines 11-12: pick seeds as far apart as possible.
    arbitrary = vertices[0]
    seed_a, _, _ = farthest_vertex_adjacency(adjacency, arbitrary)
    seed_b, _, dist_a = farthest_vertex_adjacency(adjacency, seed_a)
    dist_b = dijkstra_adjacency(adjacency, seed_b)

    # Line 13: partition weights.
    pw: Dict[int, float] = {v: dist_a.get(v, INF) - dist_b.get(v, INF) for v in vertices}
    ordered = sorted(vertices, key=lambda v: (pw[v], v))

    # Lines 14-15: initial partitions of size beta * |V|.
    k = max(1, int(beta * n))
    head = ordered[:k]
    tail = ordered[-k:]
    w_a = max(pw[v] for v in head)
    w_b = min(pw[v] for v in tail)

    if w_a == w_b:
        # Lines 16-22: bottleneck handling - one equivalence class spans
        # both boundaries; remove its member closest to seed_a and retry.
        equivalence_class = [v for v in vertices if pw[v] == w_a]
        bottleneck = min(equivalence_class, key=lambda v: (dist_a.get(v, INF), v))
        remaining = [v for v in vertices if v != bottleneck]
        reduced = restrict_adjacency(adjacency, remaining)
        inner = balanced_partition(reduced, beta, _depth + 1)
        return BalancedPartitionResult(
            initial_a=inner.initial_a,
            cut_region=sorted(inner.cut_region + [bottleneck]),
            initial_b=inner.initial_b,
        )

    # Lines 23-25: close the initial partitions under their boundary weight
    # so equivalence classes are never split.
    initial_a = sorted(v for v in vertices if pw[v] <= w_a)
    initial_b = sorted(v for v in vertices if pw[v] >= w_b)
    in_a = set(initial_a)
    in_b = set(initial_b)
    cut_region = sorted(v for v in vertices if v not in in_a and v not in in_b)
    return BalancedPartitionResult(initial_a, cut_region, initial_b)


def _partition_disconnected(
    adjacency: WorkingAdjacency,
    components: List[List[int]],
    beta: float,
    n: int,
    depth: int,
) -> BalancedPartitionResult:
    """Lines 2-10 of Algorithm 1: the input graph is disconnected."""
    components = sorted(components, key=lambda c: (-len(c), c[0]))
    largest = components[0]
    if len(largest) > (1.0 - beta) * n:
        # Partition inside the largest component; all other components join
        # the cut region (they are cheap to separate later).
        sub = restrict_adjacency(adjacency, largest)
        inner = balanced_partition(sub, beta, depth + 1)
        others = [v for comp in components[1:] for v in comp]
        return BalancedPartitionResult(
            initial_a=inner.initial_a,
            cut_region=sorted(inner.cut_region + others),
            initial_b=inner.initial_b,
        )
    second = components[1] if len(components) > 1 else []
    used = set(largest) | set(second)
    rest = sorted(v for v in adjacency if v not in used)
    return BalancedPartitionResult(
        initial_a=sorted(largest),
        cut_region=rest,
        initial_b=sorted(second),
    )
