"""Algorithm 2 - BalancedCut.

Takes the initial partitions produced by Algorithm 1, contracts them into
virtual terminals, finds a minimum s-t vertex cut inside the cut region via
the split-vertex max-flow reduction, and finally re-assigns the connected
components of ``G \\ V_cut`` to the two sides while maximising balance.

The paper extracts two canonical minimum cuts from the maximal flow (the
one closest to ``S`` and the one closest to ``T``) and keeps whichever
yields the more balanced final partition; this module does the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.flow.vertex_cut import minimum_st_vertex_cut
from repro.graph.components import components_of_adjacency
from repro.partition.partition import balanced_partition
from repro.partition.working_graph import WorkingAdjacency, restrict_adjacency


@dataclass
class BalancedCutResult:
    """Outcome of Algorithm 2: a balanced cut ``(P_A, V_cut, P_B)``.

    ``part_a`` and ``part_b`` are the final partitions, ``cut`` the vertex
    cut separating them.  The three lists partition the vertex set of the
    input subgraph; either partition may be empty for degenerate inputs
    (very small subgraphs), in which case the caller typically stops
    recursing and turns the remainder into a leaf node.
    """

    part_a: List[int]
    cut: List[int]
    part_b: List[int]

    def balance(self) -> float:
        """Size of the larger side divided by the number of non-cut vertices."""
        total = len(self.part_a) + len(self.part_b)
        if total == 0:
            return 1.0
        return max(len(self.part_a), len(self.part_b)) / total


def balanced_cut(adjacency: WorkingAdjacency, beta: float = 0.2) -> BalancedCutResult:
    """Compute a balanced vertex cut of a working adjacency (Algorithm 2)."""
    partition = balanced_partition(adjacency, beta)
    initial_a, cut_region, initial_b = (
        partition.initial_a,
        partition.cut_region,
        partition.initial_b,
    )
    set_a, set_b, set_c = set(initial_a), set(initial_b), set(cut_region)

    if not set_a or not set_b:
        # Degenerate split (tiny or pathological subgraph): report the whole
        # cut region as the cut so the caller can decide to stop recursing.
        return BalancedCutResult(sorted(set_a), sorted(set_c), sorted(set_b))

    # Lines 3-4: vertices incident to a cross-partition edge.
    border_a = {v for v in set_a if any(w in set_b for w in adjacency[v])}
    border_b = {v for v in set_b if any(w in set_a for w in adjacency[v])}

    # Lines 5-11: build the flow subgraph over C union C_A union C_B and the
    # terminal attachment sets N_S / N_T.
    flow_vertices = set_c | border_a | border_b
    flow_adjacency = restrict_adjacency(adjacency, flow_vertices)
    attach_s = set(border_a)
    attach_t = set(border_b)
    interior_a = set_a - border_a
    interior_b = set_b - border_b
    for v in set_c:
        neighbours = adjacency[v]
        if any(w in interior_a for w in neighbours):
            attach_s.add(v)
        if any(w in interior_b for w in neighbours):
            attach_t.add(v)

    # Line 12: minimum s-t vertex cut via Dinitz on the split graph.
    result = minimum_st_vertex_cut(flow_adjacency, attach_s, attach_t)

    # Lines 13-15 for each canonical cut, then keep the more balanced one.
    best: BalancedCutResult | None = None
    for cut in result.candidate_cuts():
        assignment = _assign_components(adjacency, cut, set_a, set_b)
        if best is None or assignment.balance() < best.balance():
            best = assignment
    assert best is not None
    return best


def _assign_components(
    adjacency: WorkingAdjacency,
    cut: Sequence[int],
    seed_a: Set[int],
    seed_b: Set[int],
) -> BalancedCutResult:
    """Assign the components of ``G \\ cut`` to the two sides, maximising balance.

    Following the paper, components are processed in order of decreasing
    size and each is appended to the currently smaller side.  Components
    containing seed vertices of both sides cannot occur (the cut separates
    them); a component containing seeds of exactly one side is still
    assigned purely by balance, as in the paper's pseudo-code.
    """
    cut_set = set(cut)
    remaining = [v for v in adjacency if v not in cut_set]
    sub = restrict_adjacency(adjacency, remaining)
    components = components_of_adjacency(sub)
    components.sort(key=lambda c: (-len(c), c[0]))

    part_a: List[int] = []
    part_b: List[int] = []
    for component in components:
        if len(part_a) <= len(part_b):
            part_a.extend(component)
        else:
            part_b.extend(component)
    return BalancedCutResult(sorted(part_a), sorted(cut_set), sorted(part_b))


def cut_statistics(results: List[BalancedCutResult]) -> Dict[str, float]:
    """Aggregate cut-size statistics used by the Figure 7 reproduction."""
    sizes = [len(r.cut) for r in results]
    if not sizes:
        return {"max": 0.0, "avg": 0.0, "count": 0.0}
    return {
        "max": float(max(sizes)),
        "avg": sum(sizes) / len(sizes),
        "count": float(len(sizes)),
    }


def separates(adjacency: WorkingAdjacency, result: BalancedCutResult) -> bool:
    """Whether ``result.cut`` disconnects ``part_a`` from ``part_b`` (test helper)."""
    cut_set = set(result.cut)
    target = set(result.part_b)
    if not result.part_a or not target:
        return True
    seen = set(result.part_a)
    stack = list(result.part_a)
    while stack:
        v = stack.pop()
        if v in target:
            return False
        for w in adjacency[v]:
            if w in cut_set or w in seen:
                continue
            seen.add(w)
            stack.append(w)
    return True

