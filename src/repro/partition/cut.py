"""Algorithm 2 - BalancedCut.

Takes the initial partitions produced by Algorithm 1, contracts them into
virtual terminals, finds a minimum s-t vertex cut inside the cut region via
the split-vertex max-flow reduction, and finally re-assigns the connected
components of ``G \\ V_cut`` to the two sides while maximising balance.

The paper extracts two canonical minimum cuts from the maximal flow (the
one closest to ``S`` and the one closest to ``T``) and keeps whichever
yields the more balanced final partition; this module does the same.

Everything graph-shaped runs on the node's CSR snapshot
(:class:`~repro.core.flat.FlatWorkingGraph`): border and terminal
attachment sets are computed with vectorised edge-mask scans, the flow
region is carved out of the CSR arrays without materialising a dict, and
the component re-assignment uses the
:class:`~repro.core.backends.ShortestPathBackend` component scan.  The
backend also selects the max-flow solver (the compact Edmonds-Karp for
the pure-python backends vs the scipy/numpy ``matrix`` path under csr);
the canonical cuts are unique across all maximum flows, so every backend
produces bit-identical cuts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.backends import BackendSpec, ShortestPathBackend, resolve_backend
from repro.core.flat import FlatWorkingGraph
from repro.flow.vertex_cut import check_flow_method, minimum_vertex_cut_region
from repro.partition.partition import balanced_partition
from repro.partition.working_graph import WorkingAdjacency
from repro.utils.validation import check_balance_parameter


@dataclass
class BalancedCutResult:
    """Outcome of Algorithm 2: a balanced cut ``(P_A, V_cut, P_B)``.

    ``part_a`` and ``part_b`` are the final partitions, ``cut`` the vertex
    cut separating them.  The three lists partition the vertex set of the
    input subgraph; either partition may be empty for degenerate inputs
    (very small subgraphs), in which case the caller typically stops
    recursing and turns the remainder into a leaf node.
    """

    part_a: List[int]
    cut: List[int]
    part_b: List[int]

    def balance(self) -> float:
        """Size of the larger side divided by the number of non-cut vertices."""
        total = len(self.part_a) + len(self.part_b)
        if total == 0:
            return 1.0
        return max(len(self.part_a), len(self.part_b)) / total


def balanced_cut(
    adjacency: Optional[WorkingAdjacency] = None,
    beta: float = 0.2,
    flat: Optional[FlatWorkingGraph] = None,
    backend: BackendSpec = None,
    flow_method: Optional[str] = None,
) -> BalancedCutResult:
    """Compute a balanced vertex cut of a working subgraph (Algorithm 2).

    ``adjacency`` may be omitted when a pre-built CSR snapshot is passed
    as ``flat`` (the hierarchy builder shares one snapshot per node with
    the ranking and labelling passes); ``backend`` selects the
    :class:`~repro.core.backends.ShortestPathBackend` running the seed
    searches, component scans and the max-flow solver.  ``flow_method``
    pins the max-flow solver to one of
    :data:`repro.flow.vertex_cut.FLOW_METHODS`; ``None`` (or ``"auto"``)
    defers to the backend's per-backend default - either way the cuts
    are bit-identical, only the speed differs.  ``beta`` must lie in
    ``(0, 0.5]`` (Definition 4.1) - validated here so an invalid balance
    parameter fails loudly before any search runs.
    """
    check_balance_parameter(beta)
    if flat is None:
        if adjacency is None:
            raise ValueError("provide the subgraph as 'adjacency' or 'flat'")
        flat = FlatWorkingGraph(adjacency)
    search = resolve_backend(backend)
    if flow_method is None or flow_method == "auto":
        flow_method = search.flow_method
    else:
        check_flow_method(flow_method, allow_auto=False)

    partition = balanced_partition(beta=beta, flat=flat, backend=search)
    initial_a, cut_region, initial_b = (
        partition.initial_a,
        partition.cut_region,
        partition.initial_b,
    )

    if not initial_a or not initial_b:
        # Degenerate split (tiny or pathological subgraph): report the whole
        # cut region as the cut so the caller can decide to stop recursing.
        return BalancedCutResult(sorted(initial_a), sorted(cut_region), sorted(initial_b))

    n = len(flat.vertices)
    indptr, indices, _ = flat.csr_arrays()
    tails = flat.tails()

    # side of each dense vertex: 0 = P'_A, 1 = P'_B, 2 = cut region C
    side = np.full(n, 2, dtype=np.int8)
    side[flat.dense_ids(initial_a)] = 0
    side[flat.dense_ids(initial_b)] = 1

    # Lines 3-4: vertices incident to a cross-partition edge.
    tail_side = side[tails]
    head_side = side[indices]
    border_a = np.zeros(n, dtype=bool)
    border_a[tails[(tail_side == 0) & (head_side == 1)]] = True
    border_b = np.zeros(n, dtype=bool)
    border_b[tails[(tail_side == 1) & (head_side == 0)]] = True

    # Lines 5-11: the flow subgraph over C union C_A union C_B and the
    # terminal attachment sets N_S / N_T.
    in_cut = side == 2
    flow_mask = in_cut | border_a | border_b
    interior_a = (side == 0) & ~border_a
    interior_b = (side == 1) & ~border_b
    attach_s = border_a.copy()
    attach_t = border_b.copy()
    touches_interior_a = np.zeros(n, dtype=bool)
    touches_interior_a[tails[interior_a[indices]]] = True
    touches_interior_b = np.zeros(n, dtype=bool)
    touches_interior_b[tails[interior_b[indices]]] = True
    attach_s |= in_cut & touches_interior_a
    attach_t |= in_cut & touches_interior_b

    # Carve the flow region out of the CSR arrays: local ids are ascending
    # dense ids, matching the sorted-vertex numbering of the dict path.
    local = np.full(n, -1, dtype=np.int64)
    region_dense = np.nonzero(flow_mask)[0]
    local[region_dense] = np.arange(len(region_dense), dtype=np.int64)
    edge_keep = flow_mask[tails] & flow_mask[indices]
    region_vertices = [flat.vertices[i] for i in region_dense.tolist()]

    # Line 12: minimum s-t vertex cut via the backend-selected solver.
    result = minimum_vertex_cut_region(
        region_vertices,
        local[tails[edge_keep]],
        local[indices[edge_keep]],
        local[np.nonzero(attach_s)[0]],
        local[np.nonzero(attach_t)[0]],
        method=flow_method,
    )

    # Lines 13-15 for each canonical cut, then keep the more balanced one.
    best: BalancedCutResult | None = None
    for cut in result.candidate_cuts():
        assignment = _assign_components(flat, cut, search)
        if best is None or assignment.balance() < best.balance():
            best = assignment
    assert best is not None
    return best


def _assign_components(
    flat: FlatWorkingGraph,
    cut: Sequence[int],
    search: ShortestPathBackend,
) -> BalancedCutResult:
    """Assign the components of ``G \\ cut`` to the two sides, maximising balance.

    Following the paper, components are processed in order of decreasing
    size and each is appended to the currently smaller side.  Components
    containing seed vertices of both sides cannot occur (the cut separates
    them); a component containing seeds of exactly one side is still
    assigned purely by balance, as in the paper's pseudo-code.
    """
    cut_set = set(cut)
    keep = np.ones(len(flat.vertices), dtype=bool)
    keep[flat.dense_ids(cut)] = False
    components = search.components_masked(flat, keep)
    components.sort(key=lambda c: (-len(c), c[0]))

    part_a: List[int] = []
    part_b: List[int] = []
    for component in components:
        if len(part_a) <= len(part_b):
            part_a.extend(component)
        else:
            part_b.extend(component)
    return BalancedCutResult(sorted(part_a), sorted(cut_set), sorted(part_b))


def cut_statistics(results: List[BalancedCutResult]) -> Dict[str, float]:
    """Aggregate cut-size statistics used by the Figure 7 reproduction."""
    sizes = [len(r.cut) for r in results]
    if not sizes:
        return {"max": 0.0, "avg": 0.0, "count": 0.0}
    return {
        "max": float(max(sizes)),
        "avg": sum(sizes) / len(sizes),
        "count": float(len(sizes)),
    }


def separates(adjacency: WorkingAdjacency, result: BalancedCutResult) -> bool:
    """Whether ``result.cut`` disconnects ``part_a`` from ``part_b`` (test helper)."""
    cut_set = set(result.cut)
    target = set(result.part_b)
    if not result.part_a or not target:
        return True
    seen = set(result.part_a)
    stack = list(result.part_a)
    while stack:
        v = stack.pop()
        if v in target:
            return False
        for w in adjacency[v]:
            if w in cut_set or w in seen:
                continue
            seen.add(w)
            stack.append(w)
    return True
