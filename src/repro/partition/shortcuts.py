"""Algorithm 3 - AddShortcuts (distance preservation).

After a balanced cut ``(P_A, V_cut, P_B)``, the induced subgraphs on the
two partitions are not necessarily distance preserving: a shortest path
between two vertices of ``P_A`` may travel through the cut.  Lemma 4.8
shows that such paths always enter and leave the partition through *border
vertices* (vertices of the partition adjacent to the cut), so it suffices
to add shortcut edges between border vertices whose true distance is
shorter than their within-partition distance.  Lemma 4.11 identifies
redundant shortcuts (those realisable through a third border vertex),
which this module eliminates to keep the working graphs sparse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.partition.working_graph import (
    WorkingAdjacency,
    dijkstra_adjacency,
    restrict_adjacency,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.flat import FlatWorkingGraph

INF = float("inf")

#: Relative tolerance used when comparing alternative path lengths; two
#: floating point sums of the same edge weights can differ by a few ulps
#: depending on the order of addition.
_REL_EPS = 1e-9


@dataclass(frozen=True)
class Shortcut:
    """A shortcut edge ``(u, v)`` carrying the true graph distance."""

    u: int
    v: int
    weight: float


def border_vertices(
    adjacency: WorkingAdjacency, partition: Iterable[int], cut: Iterable[int]
) -> List[int]:
    """Vertices of ``partition`` adjacent to at least one cut vertex (Definition 4.7)."""
    cut_set = set(cut)
    return sorted(v for v in partition if any(w in cut_set for w in adjacency[v]))


def border_vertices_flat(
    flat: "FlatWorkingGraph", partition: Iterable[int], cut: Iterable[int]
) -> List[int]:
    """CSR counterpart of :func:`border_vertices`: one edge-mask scan.

    Same set in the same (sorted) order - dense ids ascend with original
    ids - so the downstream shortcut enumeration is bit-identical to the
    dict path.
    """
    indptr, indices, _ = flat.csr_arrays()
    n = len(flat.vertices)
    part_mask = np.zeros(n, dtype=bool)
    part_mask[flat.dense_ids(partition)] = True
    cut_mask = np.zeros(n, dtype=bool)
    cut_mask[flat.dense_ids(cut)] = True
    tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    border_dense = np.unique(tails[part_mask[tails] & cut_mask[indices]])
    return [flat.vertices[i] for i in border_dense.tolist()]


def compute_shortcuts(
    adjacency: Optional[WorkingAdjacency],
    cut: Sequence[int],
    partition: Sequence[int],
    cut_distances: Mapping[int, Mapping[int, float]],
    backend: object = None,
    flat: "FlatWorkingGraph | None" = None,
    within_flat: "FlatWorkingGraph | None" = None,
) -> List[Shortcut]:
    """Compute the non-redundant shortcuts for one partition (Algorithm 3).

    Parameters
    ----------
    adjacency:
        Working adjacency of the *parent* subgraph (partition + cut + the
        other partition), which is distance preserving by induction.  May
        be ``None`` when the parent's CSR snapshot is passed as ``flat``
        instead (the dict-free construction path).
    cut:
        The cut vertices separating the partitions.
    partition:
        The partition (list of vertices) receiving the shortcuts.
    cut_distances:
        For each cut vertex, its single-source distances over the parent
        subgraph.  The labelling step computes these anyway (Algorithm 5),
        so the caller passes them in rather than recomputing.
    backend:
        The :class:`~repro.core.backends.ShortestPathBackend` running the
        per-border searches (name, instance, or ``None`` for the default).
    flat:
        Optional CSR snapshot of the parent subgraph.  When given, the
        borders come from one vectorised edge scan and the
        within-partition subgraph is derived with
        :meth:`~repro.core.flat.FlatWorkingGraph.induce` instead of a dict
        restriction - same searches, same shortcuts, no dict churn.
    within_flat:
        Optional pre-induced snapshot of ``partition`` (must equal
        ``flat.induce(partition)``).  The construction passes it in and
        reuses the same snapshot for the child overlay, so each child is
        induced exactly once.

    Returns
    -------
    list of Shortcut
        Shortcuts to add to the child working graph for ``partition``.
    """
    if flat is not None:
        borders = border_vertices_flat(flat, partition, cut)
    elif adjacency is not None:
        borders = border_vertices(adjacency, partition, cut)
    else:
        raise ValueError("provide the parent subgraph as 'adjacency' or 'flat'")
    if len(borders) < 2:
        return []

    # Lines 3-6: within-partition distances between border vertices.  The
    # partition subgraph is flattened once (CSR, dense ids) and the
    # backend searches from every border over it - same distances as
    # searching the parent adjacency restricted to the partition, without
    # per-edge membership checks or vertex-id hashing (and one batched
    # scipy call for all borders under the csr backend).
    from repro.core.backends import resolve_backend
    from repro.core.flat import FlatWorkingGraph

    if within_flat is None:
        if flat is not None:
            within_flat = flat.induce(partition)
        else:
            within_flat = FlatWorkingGraph(restrict_adjacency(adjacency, partition))
    border_dense = within_flat.dense_ids(borders)
    rows = resolve_backend(backend).sssp_many(within_flat, border_dense)
    within: Dict[int, Sequence[float]] = dict(zip(borders, rows))
    dense_of = dict(zip(borders, border_dense))

    # Lines 7-8: true distances, allowing travel through the cut.
    true_distance: Dict[Tuple[int, int], float] = {}
    for i, b1 in enumerate(borders):
        for b2 in borders[i + 1 :]:
            d_in_partition = within[b1][dense_of[b2]]
            d_via_cut = INF
            for c in cut:
                dist_c = cut_distances[c]
                candidate = dist_c.get(b1, INF) + dist_c.get(b2, INF)
                if candidate < d_via_cut:
                    d_via_cut = candidate
            true_distance[(b1, b2)] = min(d_in_partition, d_via_cut)

    def lookup(a: int, b: int) -> float:
        if a == b:
            return 0.0
        return true_distance[(a, b)] if a < b else true_distance[(b, a)]

    # Lines 9-16: keep only non-redundant shortcuts (Lemma 4.11).
    shortcuts: List[Shortcut] = []
    for (b1, b2), d_true in true_distance.items():
        if d_true == INF:
            continue
        d_in_partition = within[b1][dense_of[b2]]
        if d_true >= d_in_partition:
            continue  # condition (1): the partition already realises it
        tolerance = _REL_EPS * max(1.0, d_true)
        redundant = False
        for b3 in borders:
            if b3 == b1 or b3 == b2:
                continue
            if lookup(b1, b3) + lookup(b3, b2) <= d_true + tolerance:
                redundant = True
                break
        if not redundant:
            shortcuts.append(Shortcut(b1, b2, d_true))
    return shortcuts


def apply_shortcuts(child: WorkingAdjacency, shortcuts: Iterable[Shortcut]) -> int:
    """Add ``shortcuts`` to a child working adjacency (keeping minima).

    Returns the number of shortcut edges that actually changed the child
    graph (new edge or improved weight), which the construction statistics
    report.
    """
    added = 0
    for shortcut in shortcuts:
        u, v, weight = shortcut.u, shortcut.v, shortcut.weight
        if u not in child or v not in child:
            continue
        current = child[u].get(v)
        if current is None or weight < current:
            child[u][v] = weight
            child[v][u] = weight
            added += 1
    return added


def is_distance_preserving(
    parent: WorkingAdjacency,
    child: WorkingAdjacency,
    sample_vertices: Sequence[int] | None = None,
    tolerance: float = 1e-6,
) -> bool:
    """Check Definition 4.5 on a child subgraph (test helper).

    For every (sampled) vertex, distances inside the child must match the
    distances in the parent working graph restricted to child vertices.
    """
    vertices = sorted(child)
    sources = vertices if sample_vertices is None else [v for v in sample_vertices if v in child]
    for source in sources:
        in_child = dijkstra_adjacency(child, source)
        in_parent = dijkstra_adjacency(parent, source)
        for v in vertices:
            dc = in_child.get(v, INF)
            dp = in_parent.get(v, INF)
            if dp == INF and dc == INF:
                continue
            if abs(dc - dp) > tolerance * max(1.0, abs(dp)):
                return False
    return True


def child_adjacency(
    adjacency: WorkingAdjacency,
    partition: Sequence[int],
    shortcuts: Iterable[Shortcut],
) -> WorkingAdjacency:
    """Build the shortcut-enhanced child working graph ``G<P>`` (Definition 4.9)."""
    child = restrict_adjacency(adjacency, partition)
    apply_shortcuts(child, shortcuts)
    return child
