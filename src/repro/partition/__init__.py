"""Balanced partitioning, balanced vertex cuts and distance preservation.

This package implements Section 4.1 of the paper:

* :mod:`repro.partition.working_graph` - working subgraphs: the mutable
  dict-of-dict maps child graphs are assembled in, plus the CSR snapshot
  (:data:`~repro.partition.working_graph.CSRSnapshot`) every construction
  search runs over through the shortest-path backend seam,
* :mod:`repro.partition.partition` - Algorithm 1 (BalancedPartition),
* :mod:`repro.partition.cut` - Algorithm 2 (BalancedCut), and
* :mod:`repro.partition.shortcuts` - Algorithm 3 (AddShortcuts) together
  with the redundancy elimination of Lemma 4.11.
"""

from repro.partition.working_graph import (
    CSRSnapshot,
    WorkingAdjacency,
    dijkstra_adjacency,
    farthest_vertex_adjacency,
    restrict_adjacency,
    working_graph_from,
)
from repro.partition.partition import BalancedPartitionResult, balanced_partition
from repro.partition.cut import BalancedCutResult, balanced_cut
from repro.partition.shortcuts import Shortcut, compute_shortcuts, is_distance_preserving

__all__ = [
    "CSRSnapshot",
    "WorkingAdjacency",
    "working_graph_from",
    "restrict_adjacency",
    "dijkstra_adjacency",
    "farthest_vertex_adjacency",
    "balanced_partition",
    "BalancedPartitionResult",
    "balanced_cut",
    "BalancedCutResult",
    "compute_shortcuts",
    "Shortcut",
    "is_distance_preserving",
]
