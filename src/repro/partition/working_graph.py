"""Working subgraphs used during hierarchy construction.

The recursive bisection repeatedly (a) restricts the graph to one side of a
cut and (b) adds shortcut edges to keep it distance preserving.  Two
representations cooperate:

* the *mutable* ``dict[vertex, dict[neighbour, weight]]`` adjacency maps
  keyed by original vertex ids (``WorkingAdjacency``) remain the format
  child subgraphs are assembled in - shortcut edges are added in place -
  and the reference the dict-based helpers here operate on;
* the *search* side runs on an immutable CSR snapshot
  (:class:`~repro.core.flat.FlatWorkingGraph`, re-exported here as
  :data:`CSRSnapshot`): the hierarchy builder flattens each node's
  adjacency once and the partition, ranking, labelling and shortcut
  passes all search that snapshot through the pluggable
  :class:`~repro.core.backends.ShortestPathBackend` seam.  Snapshots
  restrict with numpy array operations
  (:meth:`~repro.core.flat.FlatWorkingGraph.induce`) instead of dict
  comprehensions.

The dict-based searches below are kept as the bit-identical reference
(and for callers that hold plain adjacency maps); the snapshot paths
perform the same float64 relaxations, so distances agree exactly.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.flat import FlatWorkingGraph
from repro.graph.graph import Graph

WorkingAdjacency = Dict[int, Dict[int, float]]

#: The CSR-snapshot representation of a working subgraph (see module docs).
CSRSnapshot = FlatWorkingGraph

INF = float("inf")


def working_graph_from(graph: Graph, vertices: Optional[Iterable[int]] = None) -> WorkingAdjacency:
    """Build a working adjacency map from a :class:`Graph` (optionally induced)."""
    return graph.adjacency_dict(vertices)


def adjacency_from_csr(snapshot: FlatWorkingGraph) -> WorkingAdjacency:
    """Rebuild a mutable working adjacency from a CSR snapshot.

    The inverse of flattening: per-vertex neighbour dicts are populated in
    CSR edge order, so re-flattening the result reproduces the snapshot
    exactly (dict insertion order is the edge order).  Lets dict-based
    helpers and tests consume subgraphs produced by the dict-free paths
    (:meth:`~repro.core.flat.FlatWorkingGraph.induce` /
    :meth:`~repro.core.flat.FlatWorkingGraph.induce_with_shortcuts`).
    """
    vertices = snapshot.vertices
    indptr, indices, weights = snapshot.indptr, snapshot.indices, snapshot.weights
    adjacency: WorkingAdjacency = {v: {} for v in vertices}
    for dense, v in enumerate(vertices):
        neighbours = adjacency[v]
        for i in range(indptr[dense], indptr[dense + 1]):
            neighbours[vertices[indices[i]]] = weights[i]
    return adjacency


def restrict_adjacency(adjacency: WorkingAdjacency, vertices: Iterable[int]) -> WorkingAdjacency:
    """Induce a working adjacency on ``vertices`` (new dicts, originals untouched)."""
    member = set(vertices)
    return {
        v: {w: weight for w, weight in adjacency[v].items() if w in member}
        for v in member
        if v in adjacency
    }


def add_edge(adjacency: WorkingAdjacency, u: int, v: int, weight: float) -> None:
    """Add an undirected edge to a working adjacency, keeping the minimum weight."""
    if u == v:
        return
    current = adjacency[u].get(v)
    if current is None or weight < current:
        adjacency[u][v] = weight
        adjacency[v][u] = weight


def num_edges(adjacency: WorkingAdjacency) -> int:
    """Number of undirected edges in a working adjacency."""
    return sum(len(nbrs) for nbrs in adjacency.values()) // 2


def dijkstra_adjacency(
    adjacency: WorkingAdjacency,
    source: int,
    allowed: Optional[Iterable[int]] = None,
) -> Dict[int, float]:
    """Dijkstra on a working adjacency; returns a dict of reached distances.

    Vertices not present in the result are unreachable.  ``allowed``
    restricts the search to a vertex subset (the source must belong to it).
    """
    allowed_set = None if allowed is None else set(allowed)
    dist: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist.get(v, INF):
            continue
        for w, weight in adjacency[v].items():
            if allowed_set is not None and w not in allowed_set:
                continue
            nd = d + weight
            if nd < dist.get(w, INF):
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return dist


def farthest_vertex_adjacency(
    adjacency: WorkingAdjacency, source: int
) -> Tuple[int, float, Dict[int, float]]:
    """Vertex farthest from ``source`` within the working adjacency.

    Ties break on the smaller vertex id for determinism.  Unreachable
    vertices are ignored.  Returns ``(vertex, distance, dist_map)``.
    """
    dist = dijkstra_adjacency(adjacency, source)
    best_v, best_d = source, 0.0
    for v, d in dist.items():
        if d > best_d or (d == best_d and d > 0 and v < best_v):
            best_v, best_d = v, d
    return best_v, best_d, dist
