"""Request coalescing: concurrent scalar queries become one batch call.

A serving process handles many concurrent clients, each asking for a
single ``distance(s, t)``.  Answering them one by one wastes the batch
engine the flat label storage exists for; :class:`CoalescingServer`
gathers the scalar requests that arrive within a short window and
evaluates them with **one** vectorised :meth:`DistanceOracle.distances`
call, then hands each caller its value.

The design is leader-based and needs no background thread: the first
thread to enqueue a request becomes the *leader*, sleeps for the
collection window (more requests pile up meanwhile), drains the queue,
runs the batch, and publishes the results.  Followers simply wait on
their request's event.  Because batch results are bit-identical to the
scalar path (a protocol guarantee every oracle is tested for), coalescing
is invisible to clients except for latency.

This is the *thread-per-client* coalescer.  Its asyncio successor is the
fleet front door, :class:`repro.serving.fleet.frontdoor.FleetServer`,
which parks concurrent scalars on ``asyncio.Future``\\ s instead of
events and places the drained batch onto worker processes; prefer it
when serving from an event loop or across processes, and this class when
clients are plain threads sharing one in-process oracle.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.oracle import DistanceOracle

INF = float("inf")


class _PendingRequest:
    """One enqueued (s, t) query waiting for a batch to resolve it."""

    __slots__ = ("s", "t", "event", "value", "error")

    def __init__(self, s: int, t: int) -> None:
        self.s = s
        self.t = t
        self.event = threading.Event()
        self.value: float = INF
        self.error: Optional[BaseException] = None

    def result(self) -> float:
        """Block until the batch containing this request ran."""
        self.event.wait()
        if self.error is not None:
            raise self.error
        return self.value


class CoalescingServer:
    """Batches concurrent single-pair requests into vectorised calls.

    Parameters
    ----------
    oracle:
        Any :class:`DistanceOracle`; its ``distances`` must be safe to
        call from multiple threads (the engines here only read numpy
        buffers once warmed, which the constructor does).
    window_seconds:
        How long a leader waits for followers before draining the queue.
        0 disables the wait (useful for tests; coalescing then only
        happens when requests already queued up while a batch ran).
    max_batch:
        Upper bound on requests drained into one batch call.

    Both knobs are validated loudly at construction (the
    :class:`~repro.core.parameters.HC2LParameters` style): a serving tier
    configured with ``window_seconds=inf`` or ``max_batch=0`` must refuse
    to start, not stall or spin at runtime.

    Notes
    -----
    If the inner oracle rejects a batch (e.g. one request carries an
    out-of-range vertex), every request of that batch observes the same
    exception - the failure unit is the batch, as in any shared-fate
    batching server.
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        window_seconds: float = 0.001,
        max_batch: int = 4096,
    ) -> None:
        if not isinstance(window_seconds, (int, float)) or isinstance(window_seconds, bool):
            raise ValueError(f"window_seconds must be a number, got {window_seconds!r}")
        if not math.isfinite(window_seconds) or window_seconds < 0:
            raise ValueError(
                f"window_seconds must be finite and >= 0, got {window_seconds}"
            )
        if isinstance(max_batch, bool) or not isinstance(max_batch, int):
            raise ValueError(f"max_batch must be an int, got {max_batch!r}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.oracle = oracle
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self._lock = threading.Lock()
        self._pending: List[_PendingRequest] = []
        self._leader_active = False
        # lifetime stats
        self.num_requests = 0
        self.num_batches = 0
        self.largest_batch = 0
        # warm lazily-built query state (e.g. HC2L's flat-label engine) so
        # concurrent first batches don't race its construction
        self.oracle.distances(np.empty((0, 2), dtype=np.int64))

    # ------------------------------------------------------------------ #
    # client API
    # ------------------------------------------------------------------ #
    def distance(self, s: int, t: int) -> float:
        """Exact distance; may be served by another thread's batch."""
        request = self.submit(s, t)
        if self._become_leader():
            if self.window_seconds:
                time.sleep(self.window_seconds)
            self.flush()
        return request.result()

    def distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Already-batched work bypasses the queue entirely."""
        return self.oracle.distances(pairs)

    def submit(self, s: int, t: int) -> _PendingRequest:
        """Enqueue a query without driving a batch (test/async entry point)."""
        request = _PendingRequest(int(s), int(t))
        with self._lock:
            self._pending.append(request)
            self.num_requests += 1
        return request

    def flush(self) -> int:
        """Drain the queue and resolve it with batched calls.

        Returns the number of requests resolved.  Called automatically by
        the per-request leader; also usable directly after :meth:`submit`.
        """
        resolved = 0
        while True:
            with self._lock:
                batch = self._pending[: self.max_batch]
                del self._pending[: len(batch)]
                self._leader_active = False
            if not batch:
                return resolved
            self._run_batch(batch)
            resolved += len(batch)

    @property
    def pending(self) -> int:
        """Number of queued requests not yet resolved by a batch."""
        with self._lock:
            return len(self._pending)

    def stats(self) -> Dict[str, float]:
        """Lifetime coalescing statistics."""
        batches = self.num_batches
        return {
            "requests": self.num_requests,
            "batches": batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.num_requests / batches if batches else 0.0,
        }

    # ------------------------------------------------------------------ #
    def _become_leader(self) -> bool:
        with self._lock:
            if self._leader_active:
                return False
            self._leader_active = True
            return True

    def _run_batch(self, batch: List[_PendingRequest]) -> None:
        pairs = [(request.s, request.t) for request in batch]
        try:
            values = self.oracle.distances(pairs)
        except BaseException as error:  # shared fate: the whole batch fails
            for request in batch:
                request.error = error
                request.event.set()
            return
        self.num_batches += 1
        self.largest_batch = max(self.largest_batch, len(batch))
        for request, value in zip(batch, values.tolist()):
            request.value = value
            request.event.set()
