"""Shard-owning worker processes and their parent-side handles.

One worker = one long-lived process running :func:`worker_main`: it opens
a :class:`~repro.serving.shards.ShardRouter` over the sharded layout
(read-only mmaps - co-located workers share label pages through the
page cache), pins every shard of the adopted generation, and then
answers a simple request/response loop over a ``multiprocessing`` pipe.
Ownership is a placement concept, not a correctness one: every worker
maps all shards and can answer every query bit-identically -
locality-aware placement just makes the cross-worker path the rare one.
Pinning all shards up front also keeps the adopted generation fully
servable while a newer generation is being written to disk (a lazy load
would refuse to mix generations).

The pipe speaks the fleet's pipe codec
(:func:`repro.serving.fleet.protocol.encode_pipe_message`): a
``distances`` request's pair array and its ndarray reply travel as raw
binary frames via ``send_bytes`` - no pickling of numeric payloads -
while control ops and error replies fall back to pickle.  When the
front door created a :class:`~repro.serving.shm_cache.SharedPairCache`,
every worker attaches to it and answers ``distances`` through it:
shared-memory hits skip the router's label min-plus entirely, misses
are computed once and published for every sibling worker.

The parent side is :class:`WorkerHandle`: requests are queued and driven
by one dispatcher thread per worker (send, blocking recv, resolve the
caller's ``asyncio`` future via ``call_soon_threadsafe``).  The
dispatcher is also the crash boundary - when the pipe breaks it restarts
the process in place and **retries the in-flight request** on the fresh
worker; a request that keeps crashing workers fails loudly with
``WorkerCrashError`` after its retry budget, and is never silently
dropped.
"""

from __future__ import annotations

import asyncio
import os
import queue
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.serving.fleet.protocol import decode_pipe_message, encode_pipe_message
from repro.serving.shards import ShardRouter
from repro.serving.shm_cache import SharedPairCache

#: ops a worker understands; anything else is answered with a ValueError
WORKER_OPS = (
    "distances",
    "distance",
    "hub_count",
    "ping",
    "stats",
    "reload",
    "shutdown",
    "__crash__",
)


class WorkerCrashError(RuntimeError):
    """A request failed because its worker crashed and retries ran out."""


def worker_main(
    path: str,
    worker_id: int,
    conn,
    owned_shards: Sequence[int],
    mmap: bool = True,
    cache_name: Optional[str] = None,
) -> None:
    """Entry point of one worker process.

    Opens the router (and the shared pair cache, when the front door
    created one), pins every shard, then serves requests until
    the pipe closes or a ``shutdown`` op arrives.  Every exception
    raised by the router is caught and shipped back to the parent as an
    error reply - the worker never dies because a *query* was bad, only
    the asking request fails (and with the original exception type).
    """
    router = ShardRouter(path, mmap=mmap)
    cache = (
        SharedPairCache.attach(cache_name, counter_row=worker_id)
        if cache_name
        else None
    )
    # Pin every shard, not just the owned ones (mmap cost: file handles,
    # not resident pages).  Owned shards are where this worker's batches
    # land, but a split batch can target any shard, and lazily loading
    # one after a newer generation was written to disk would (correctly)
    # refuse to mix generations - the adopted generation must stay fully
    # servable until the reload lands.
    for shard_id in range(router.num_shards):
        router._shard(shard_id)

    def send(reply: dict) -> None:
        conn.send_bytes(encode_pipe_message(reply))

    while True:
        try:
            request = decode_pipe_message(conn.recv_bytes())
        except (EOFError, OSError):
            break  # parent went away; nothing left to serve
        op = request.get("op")
        if op == "shutdown":
            send({"ok": True, "value": None})
            break
        if op == "__crash__":
            # test hook: simulate a hard worker crash mid-request (the
            # parent sees the pipe break with the request in flight)
            os._exit(13)
        try:
            if op == "distances":
                if cache is not None:
                    value = cache.cached_distances(router, request["pairs"])
                else:
                    value = router.distances(request["pairs"])
            elif op == "distance":
                value = router.distance(request["s"], request["t"])
            elif op == "hub_count":
                value = router.distance_with_hub_count(request["s"], request["t"])
            elif op == "ping":
                value = {
                    "worker_id": worker_id,
                    "pid": os.getpid(),
                    "loaded_shards": router.loaded_shard_ids,
                    "owned_shards": [int(s) for s in owned_shards],
                }
            elif op == "stats":
                value = router.stats.as_dict()
            elif op == "reload":
                # hot-swap onto the generation currently on disk, then
                # re-pin every shard so no post-swap query pays the mmap
                # cost or races the next generation's disk write
                generation = router.reload_generation()
                for shard_id in range(router.num_shards):
                    router._shard(shard_id)
                value = {"worker_id": worker_id, "generation": generation}
            else:
                raise ValueError(f"unknown worker op {op!r}; expected one of {WORKER_OPS}")
        except BaseException as error:  # noqa: BLE001 - shipped to the caller
            try:
                send({"ok": False, "error": error})
            except Exception:
                # unpicklable exception: degrade to a picklable summary
                send(
                    {"ok": False, "error": RuntimeError(f"{type(error).__name__}: {error}")}
                )
        else:
            try:
                send({"ok": True, "value": value})
            except ValueError as error:
                # the result itself broke the pipe codec (e.g. an ndarray
                # over the frame cap): fail the request, keep the worker
                send({"ok": False, "error": error})
    conn.close()
    if cache is not None:
        cache.close()
    router.close()


@dataclass
class _Item:
    """One queued request with its waiting asyncio future."""

    request: dict
    future: asyncio.Future
    loop: asyncio.AbstractEventLoop
    retries_left: int


_SHUTDOWN = object()


@dataclass
class WorkerHandleStats:
    """Parent-side accounting for one worker (feeds the fleet stats)."""

    requests: int = 0
    pairs: int = 0
    retries: int = 0
    restarts: int = 0
    owned_shards: List[int] = field(default_factory=list)


class WorkerHandle:
    """Parent-side handle of one worker process.

    ``submit`` may be called from any thread holding a running event
    loop; results land on the caller's future via
    ``call_soon_threadsafe``, so the handle composes with the asyncio
    front door without the front door ever blocking on a pipe.
    """

    def __init__(
        self,
        path: str,
        worker_id: int,
        owned_shards: Sequence[int],
        ctx,
        mmap: bool = True,
        max_retries: int = 1,
        cache_name: Optional[str] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.path = str(path)
        self.worker_id = int(worker_id)
        self.stats = WorkerHandleStats(owned_shards=[int(s) for s in owned_shards])
        self.max_retries = int(max_retries)
        self.cache_name = cache_name
        self._ctx = ctx
        self._mmap = mmap
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._busy = False  # set by the dispatcher around one request
        self._lock = threading.Lock()
        self.process = None
        self.conn = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the worker process and its dispatcher thread."""
        self._spawn()
        self._thread = threading.Thread(
            target=self._dispatch_loop,
            name=f"fleet-worker-{self.worker_id}-dispatch",
            daemon=True,
        )
        self._thread.start()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=worker_main,
            args=(
                self.path,
                self.worker_id,
                child_conn,
                list(self.stats.owned_shards),
                self._mmap,
                self.cache_name,
            ),
            name=f"fleet-worker-{self.worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # the child holds its own copy
        self.conn = parent_conn

    def kill(self) -> None:
        """Hard-kill the worker process (tests, unhealthy-worker recovery).

        The dispatcher notices on the next request and restarts the
        process in place; nothing queued is lost.
        """
        if self.process is not None and self.process.is_alive():
            self.process.kill()

    def close(self, timeout: float = 10.0) -> None:
        """Graceful drain: finish queued work, stop the worker, join.

        The shutdown sentinel rides the same queue as requests, so every
        request submitted before ``close`` is answered before the worker
        is told to exit - the no-silently-dropped-requests rule.
        """
        if self._thread is None:
            return
        self._queue.put(_SHUTDOWN)
        self._thread.join(timeout=timeout)
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=2.0)
        if self.conn is not None:
            self.conn.close()
        self._thread = None

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        """Requests queued or in flight on this worker right now."""
        return self._queue.qsize() + (1 if self._busy else 0)

    def submit(
        self, request: dict, future: asyncio.Future, loop: asyncio.AbstractEventLoop
    ) -> None:
        """Enqueue one request; the future resolves on ``loop``."""
        self._queue.put(_Item(request, future, loop, self.max_retries))

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._graceful_stop()
                return
            self._busy = True
            try:
                self._serve_item(item)
            finally:
                self._busy = False

    def _serve_item(self, item: _Item) -> None:
        """Send one request, blocking-recv the reply, resolve the future.

        A broken pipe means the worker died with this request in flight:
        restart the process and retry the request on the fresh worker
        until its retry budget runs out, then fail it loudly.
        """
        while True:
            try:
                payload = encode_pipe_message(item.request)
            except ValueError as error:
                # the request can't be encoded (e.g. a pair batch over the
                # frame cap): the worker is fine, only this request fails -
                # never let a codec error kill the dispatcher thread
                self._resolve(item, exception=error)
                return
            try:
                self.conn.send_bytes(payload)
                reply_bytes = self.conn.recv_bytes()
            except (EOFError, OSError, BrokenPipeError) as error:
                with self._lock:
                    self.stats.restarts += 1
                self._restart()
                if item.retries_left > 0:
                    item.retries_left -= 1
                    with self._lock:
                        self.stats.retries += 1
                    continue
                crash = WorkerCrashError(
                    f"worker {self.worker_id} crashed serving "
                    f"{item.request.get('op')!r} and retries are exhausted "
                    f"(max_retries={self.max_retries}): {error!r}"
                )
                self._resolve(item, exception=crash)
                return
            try:
                reply = decode_pipe_message(reply_bytes)
            except ValueError as error:
                # a corrupt reply frame; the pipe itself framed the message,
                # so the stream is still in sync - fail only this request
                self._resolve(item, exception=error)
                return
            with self._lock:
                self.stats.requests += 1
                pairs = item.request.get("pairs")
                if pairs is not None:
                    self.stats.pairs += len(pairs)
            if reply["ok"]:
                self._resolve(item, value=reply["value"])
            else:
                self._resolve(item, exception=reply["error"])
            return

    def _restart(self) -> None:
        if self.conn is not None:
            self.conn.close()
        if self.process is not None:
            if self.process.is_alive():  # pipe broke but the process lingers
                self.process.kill()
            self.process.join(timeout=5.0)
        self._spawn()

    def _graceful_stop(self) -> None:
        try:
            self.conn.send_bytes(encode_pipe_message({"op": "shutdown"}))
            decode_pipe_message(self.conn.recv_bytes())
        except (EOFError, OSError, BrokenPipeError, ValueError):
            pass  # already dead; close() reaps the process
        if self.process is not None:
            self.process.join(timeout=5.0)

    @staticmethod
    def _resolve(item: _Item, value=None, exception: Optional[BaseException] = None) -> None:
        def _set() -> None:
            if item.future.done():  # e.g. cancelled by a gather sibling
                return
            if exception is not None:
                item.future.set_exception(exception)
            else:
                item.future.set_result(value)

        try:
            item.loop.call_soon_threadsafe(_set)
        except RuntimeError:
            pass  # the loop is gone (interpreter shutdown); nothing to tell
