"""The fleet front door: asyncio request plane over the worker pool.

:class:`FleetServer` is the asyncio successor of the thread-based
:class:`~repro.serving.coalesce.CoalescingServer`: concurrent scalar
``distance`` calls park on ``asyncio.Future``\\ s, a single flusher task
drains them after a coalescing window into one placed batch, and batch
calls go straight to placement - no leader election, no condition
variables, one event loop.  Answers are **bit-identical** to the
monolithic :class:`~repro.core.engine.QueryEngine`: placement only
decides *which worker* runs the exact same routed min-plus.

Requests enter three ways, all meeting in :meth:`FleetServer.distances`:

* in-process ``await server.distance(s, t)`` / ``server.distances(pairs)``;
* over TCP via the length-prefixed JSON frames of
  :mod:`repro.serving.fleet.protocol` (see :class:`FleetClient`);
* through the synchronous :class:`~repro.serving.fleet.oracle.FleetOracle`
  facade, which gives the fleet the ordinary ``DistanceOracle`` shape.

Failure contract: a crashed worker is restarted and the in-flight batch
retried (bounded by ``max_retries``); an exhausted retry budget or an
oracle error resolves the awaiting futures with the exception - a
request is *never* silently dropped, and shutdown drains in-flight work
before stopping the pool.
"""

from __future__ import annotations

import asyncio
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.oracle import as_pair_array, as_vertex_ids, pairs_from_source
from repro.core.persistence import load_sharded_components
from repro.serving.fleet.placement import BatchPlacer, owner_shard_by_original
from repro.serving.fleet.pool import WorkerPool
from repro.serving.fleet.protocol import (
    KIND_REQUEST,
    KIND_RESPONSE,
    MAX_FRAME_BYTES,
    BinaryMessage,
    encode_binary_frame,
    encode_frame,
    error_to_wire,
    read_frame,
    wire_to_error,
    write_frame,
)
from repro.serving.shm_cache import SharedPairCache

INF = float("inf")

#: wire modes a fleet endpoint can speak (see protocol module docs)
WIRE_MODES = ("json", "binary")

#: most pairs one worker pipe message may carry: a distances request is
#: 16 bytes per pair (the reply only 8) plus a small header, so the
#: request side hits the frame cap first - batches above this are
#: chunked in the front door, never refused at the pipe
_PIPE_PAIR_CHUNK = (MAX_FRAME_BYTES - 1024) // 16


def _validate_wire(wire) -> str:
    if not isinstance(wire, str) or wire not in WIRE_MODES:
        raise ValueError(f"wire must be one of {WIRE_MODES}, got {wire!r}")
    return wire


class FleetStats:
    """Aggregate accounting of one fleet (mirrors ``RouterStats.as_dict``)."""

    def __init__(self, server: "FleetServer") -> None:
        self._server = server

    def as_dict(self) -> Dict[str, object]:
        server = self._server
        batches = server._batches
        hit_rate = server._whole_batches / batches if batches else 0.0
        workers = server.pool.worker_stats()
        cache = server.shared_cache
        if cache is not None:
            shared_cache: Dict[str, object] = {"enabled": True}
            shared_cache.update(cache.counters_dict())
            for row in workers:
                row["shared_cache"] = cache.counter_row_dict(int(row["worker_id"]))
        else:
            shared_cache = {"enabled": False}
        return {
            "num_workers": server.pool.num_workers,
            "wire": server.wire,
            "generation": server.generation,
            "reloads": server._reloads,
            "shared_cache": shared_cache,
            "batches": batches,
            "whole_batches": server._whole_batches,
            "split_batches": server._split_batches,
            "majority_hit_rate": round(hit_rate, 4),
            "scalar_requests": server._scalar_requests,
            "coalesce_flushes": server._coalesce_flushes,
            "retries": sum(row["retries"] for row in workers),
            "restarts": sum(row["restarts"] for row in workers),
            "workers": workers,
        }


class FleetServer:
    """Asyncio front door over a pool of shard-owning worker processes.

    Parameters
    ----------
    path:
        The sharded index path (anything
        :func:`~repro.core.persistence.load_sharded_components` accepts).
    num_workers:
        Size of the worker pool; must not exceed the layout's shard count.
    window_seconds:
        Scalar coalescing window.  ``0`` still coalesces whatever arrived
        in the same event-loop tick.
    max_batch:
        Cap on how many coalesced scalars one flush drains into a single
        placed batch (same knob as ``CoalescingServer.max_batch``).
    majority_threshold:
        See :class:`~repro.serving.fleet.placement.BatchPlacer`.
    max_retries:
        Crash-retry budget per request (see
        :class:`~repro.serving.fleet.worker.WorkerHandle`).
    wire:
        TCP response framing for the array ops: ``"binary"`` (default)
        answers binary requests in kind, ``"json"`` forces JSON replies
        even for binary requests (the negotiated fallback).  JSON
        requests always get JSON replies in either mode.
    shared_cache_slots:
        Capacity of the cross-worker shared-memory pair cache
        (:class:`~repro.serving.shm_cache.SharedPairCache`); ``0``
        disables it.  Helps skewed/repeating traffic, pure overhead on
        uniform-random pairs.
    """

    def __init__(
        self,
        path: Union[str, Path],
        num_workers: int = 2,
        window_seconds: float = 0.0005,
        max_batch: int = 4096,
        majority_threshold: float = 0.75,
        max_retries: int = 1,
        mmap: bool = True,
        wire: str = "binary",
        shared_cache_slots: int = 0,
    ) -> None:
        # loud validation, HC2LParameters style: a serving tier must refuse
        # a nonsensical configuration at construction, not degrade at 3am
        if isinstance(num_workers, bool) or not isinstance(num_workers, int):
            raise ValueError(f"num_workers must be an int, got {num_workers!r}")
        if not isinstance(window_seconds, (int, float)) or isinstance(window_seconds, bool):
            raise ValueError(f"window_seconds must be a number, got {window_seconds!r}")
        if not math.isfinite(window_seconds) or window_seconds < 0:
            raise ValueError(
                f"window_seconds must be finite and >= 0, got {window_seconds}"
            )
        if isinstance(max_batch, bool) or not isinstance(max_batch, int) or max_batch < 1:
            raise ValueError(f"max_batch must be an int >= 1, got {max_batch!r}")
        if isinstance(max_retries, bool) or not isinstance(max_retries, int) or max_retries < 0:
            raise ValueError(f"max_retries must be an int >= 0, got {max_retries!r}")
        self.wire = _validate_wire(wire)
        if (
            isinstance(shared_cache_slots, bool)
            or not isinstance(shared_cache_slots, (int, np.integer))
            or shared_cache_slots < 0
        ):
            raise ValueError(
                f"shared_cache_slots must be an int >= 0, got {shared_cache_slots!r}"
            )

        components, manifest, shard_dir = load_sharded_components(path)
        self.path = shard_dir
        self.manifest = manifest
        self.graph = components["graph"]
        self.parameters = components["parameters"]
        self.contraction = components["contraction"]
        self.hierarchy = components["hierarchy"]
        self.construction_seconds = components["construction_seconds"]
        self.num_original = self.contraction.num_original
        self.window_seconds = float(window_seconds)
        self.max_batch = int(max_batch)

        num_shards = len(manifest["boundaries"]) - 1
        self.shared_cache: Optional[SharedPairCache] = None
        if shared_cache_slots:
            self.shared_cache = SharedPairCache.create(
                int(shared_cache_slots), counter_rows=max(int(num_workers), 1)
            )
        try:
            self.pool = WorkerPool(
                shard_dir,
                num_shards=num_shards,
                num_workers=num_workers,
                mmap=mmap,
                max_retries=max_retries,
                cache_name=self.shared_cache.name if self.shared_cache else None,
            )
        except BaseException:
            if self.shared_cache is not None:
                self.shared_cache.close()
            raise
        owner_shard = owner_shard_by_original(
            self.contraction,
            self.hierarchy,
            manifest["boundaries"],
            manifest.get("vertex_order", "identity"),
        )
        self.placer = BatchPlacer(
            owner_shard, self.pool.worker_of_shard, majority_threshold=majority_threshold
        )
        self.stats = FleetStats(self)

        self._batches = 0
        self._whole_batches = 0
        self._split_batches = 0
        self._scalar_requests = 0
        self._coalesce_flushes = 0

        self._pending: List[Tuple[int, int, asyncio.Future]] = []
        self._flusher: Optional[asyncio.Task] = None
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        # generation hot-swap: reload() closes the gate, drains _inflight
        # to zero, fans the swap to the workers, then reopens the gate -
        # queries arriving mid-swap queue behind the gate, never error
        self._reload_lock = asyncio.Lock()
        self._reload_gate = asyncio.Event()
        self._reload_gate.set()
        self._reloads = 0
        self._closed = False
        self._started = False
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()

    # ------------------------------------------------------------------ #
    # protocol metadata (mirrors ShardRouter)
    # ------------------------------------------------------------------ #
    @property
    def supports_batch(self) -> bool:
        return True

    @property
    def index_size_bytes(self) -> int:
        """Total label bytes across shards plus contracted-vertex records
        (same manifest arithmetic as ``ShardRouter.index_size_bytes``)."""
        total = 0
        for shard in self.manifest["shards"]:
            total += (
                int(shard["num_entries"]) * 8
                + 2 * int(shard["num_levels"])
                + 8 * int(shard["num_vertices"])
            )
        return total + self.contraction.num_contracted * 16

    def label_size_bytes(self) -> int:
        return self.index_size_bytes

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, timeout: float = 60.0) -> "FleetServer":
        """Spawn the pool and wait until every worker answers a ping."""
        if self._started:
            return self
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.start)
        self._started = True
        await self.pool.ping_all(timeout=timeout)
        return self

    async def aclose(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: drain in-flight requests, stop the pool.

        New requests are refused immediately; everything already accepted
        - parked scalars, placed batches, TCP requests mid-serve - runs to
        completion and resolves its futures before the workers exit.
        """
        if self._closed:
            return
        self._closed = True
        flusher = self._flusher
        if flusher is not None:
            await flusher
        await self._idle.wait()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: self.pool.shutdown(timeout=timeout))
        if self.shared_cache is not None:
            self.shared_cache.close()

    async def __aenter__(self) -> "FleetServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("FleetServer is closed")
        if not self._started:
            raise RuntimeError("FleetServer is not started; await server.start()")

    # ------------------------------------------------------------------ #
    # query plane
    # ------------------------------------------------------------------ #
    async def distance(self, s: int, t: int) -> float:
        """Exact distance, coalesced with concurrent scalar requests.

        The request parks on a future; one flusher task drains everything
        that arrived within ``window_seconds`` into a single placed batch
        (``max_batch`` at a time).  Bad vertex ids raise here, eagerly -
        they never poison a coalesced batch.
        """
        self._check_open()
        self._validate_vertex(s, "s")
        self._validate_vertex(t, "t")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._scalar_requests += 1
        self._pending.append((int(s), int(t), future))
        if self._flusher is None:
            self._flusher = loop.create_task(self._flush_scalars())
        return await future

    async def _flush_scalars(self) -> None:
        await asyncio.sleep(self.window_seconds)
        pending, self._pending = self._pending, []
        self._flusher = None
        for at in range(0, len(pending), self.max_batch):
            chunk = pending[at : at + self.max_batch]
            self._coalesce_flushes += 1
            pair_array = np.asarray([(s, t) for s, t, _ in chunk], dtype=np.int64)
            try:
                values = await self._dispatch_batch(pair_array)
            except BaseException as error:  # noqa: BLE001 - shared fate
                for _, _, future in chunk:
                    if not future.done():
                        future.set_exception(error)
            else:
                for (_, _, future), value in zip(chunk, values):
                    if not future.done():
                        future.set_result(float(value))

    async def distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Exact distances for a batch, placed by its majority shard."""
        self._check_open()
        pair_array = as_pair_array(pairs)
        if pair_array.size == 0:
            return np.empty(0, dtype=np.float64)
        self._validate_pairs(pair_array)
        return await self._dispatch_batch(pair_array)

    async def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Distances from ``s`` to every target (a maximally local batch)."""
        self._check_open()
        self._validate_vertex(s, "s")
        return await self.distances(pairs_from_source(int(s), targets))

    async def many_to_many(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> np.ndarray:
        """The ``len(sources) x len(targets)`` distance matrix."""
        source_ids = as_vertex_ids(np.asarray(sources), "sources")
        target_ids = as_vertex_ids(np.asarray(targets), "targets")
        if len(source_ids) == 0 or len(target_ids) == 0:
            return np.empty((len(source_ids), len(target_ids)), dtype=np.float64)
        grid_s = np.repeat(source_ids, len(target_ids))
        grid_t = np.tile(target_ids, len(source_ids))
        flat = await self.distances(np.column_stack([grid_s, grid_t]))
        return flat.reshape(len(source_ids), len(target_ids))

    async def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus hub count, routed to the source's owning worker."""
        self._check_open()
        self._validate_vertex(s, "s")
        self._validate_vertex(t, "t")
        worker = int(self.placer.owner_workers(np.asarray([int(s)], dtype=np.int64))[0])
        await self._reload_gate.wait()
        self._inflight += 1
        self._idle.clear()
        try:
            value, hubs = await self.pool.submit(
                worker, {"op": "hub_count", "s": int(s), "t": int(t)}
            )
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
        return float(value), int(hubs)

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch_batch(self, pair_array: np.ndarray) -> np.ndarray:
        """Place one validated batch and return its distances in order."""
        await self._reload_gate.wait()
        self._inflight += 1
        self._idle.clear()
        try:
            plan = self.placer.plan(pair_array)
            self._batches += 1
            if plan.whole is not None:
                self._whole_batches += 1
                return await self._submit_distances(plan.whole, pair_array)
            self._split_batches += 1
            futures = [
                self._submit_distances(worker, pair_array[rows])
                for worker, rows in plan.parts
            ]
            parts = await asyncio.gather(*futures)
            out = np.empty(len(pair_array), dtype=np.float64)
            for (_, rows), values in zip(plan.parts, parts):
                out[rows] = values
            return out
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _submit_distances(self, worker: int, pair_array: np.ndarray) -> np.ndarray:
        """Ship one placed batch to its worker, chunked under the pipe cap.

        The chunks queue back to back on the worker's dispatcher, so a
        giant ``many_to_many`` grid degrades to a few pipe round trips
        instead of a frame-cap error.
        """
        if len(pair_array) <= _PIPE_PAIR_CHUNK:
            result = await self.pool.submit(
                worker, {"op": "distances", "pairs": pair_array}
            )
            return np.asarray(result, dtype=np.float64)
        futures = [
            self.pool.submit(
                worker, {"op": "distances", "pairs": pair_array[at : at + _PIPE_PAIR_CHUNK]}
            )
            for at in range(0, len(pair_array), _PIPE_PAIR_CHUNK)
        ]
        parts = await asyncio.gather(*futures)
        return np.concatenate([np.asarray(part, dtype=np.float64) for part in parts])

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def _validate_vertex(self, v, name: str) -> None:
        if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
            raise TypeError(f"{name} must be an integer vertex id, got {v!r}")
        if not 0 <= int(v) < self.num_original:
            raise ValueError(
                f"{name}={int(v)} is outside the vertex range [0, {self.num_original})"
            )

    def _validate_pairs(self, pair_array: np.ndarray) -> None:
        if pair_array.size and (
            pair_array.min() < 0 or pair_array.max() >= self.num_original
        ):
            bad = pair_array[
                (pair_array < 0).any(axis=1) | (pair_array >= self.num_original).any(axis=1)
            ][0]
            raise ValueError(
                f"pair ({int(bad[0])}, {int(bad[1])}) is outside the vertex "
                f"range [0, {self.num_original})"
            )

    # ------------------------------------------------------------------ #
    # fleet management
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """Index generation the fleet is currently serving."""
        return int(self.manifest.get("generation", 0))

    async def reload(self, timeout: float = 120.0) -> Dict[str, object]:
        """Hot-swap the whole fleet onto the generation currently on disk.

        The zero-downtime sequence: close the admission gate (new queries
        queue, none are refused), drain in-flight batches, fan a
        ``reload`` to every worker (each drains and remaps its own
        router), bump the shared pair cache epoch so no stale cached
        distance survives, refresh the front door's placement state, then
        reopen the gate.  Returns the new generation and per-worker
        replies.  Concurrent reload calls serialise.
        """
        self._check_open()
        async with self._reload_lock:
            self._reload_gate.clear()
            try:
                # parked scalars are safe: their flusher dispatches through
                # _dispatch_batch, which queues behind the gate and gets
                # post-swap answers
                await self._idle.wait()  # drain in-flight placed batches
                replies = await self.pool.reload_all(timeout=timeout)
                if self.shared_cache is not None:
                    self.shared_cache.advance_epoch()
                components, manifest, _ = load_sharded_components(self.path)
                if len(manifest["boundaries"]) - 1 != len(self.pool.worker_of_shard):
                    raise RuntimeError(
                        f"{self.path} was re-sharded to "
                        f"{len(manifest['boundaries']) - 1} shards; the pool "
                        f"owns {len(self.pool.worker_of_shard)} - restart the "
                        f"fleet instead of reloading"
                    )
                self.manifest = manifest
                self.graph = components["graph"]
                self.parameters = components["parameters"]
                self.contraction = components["contraction"]
                self.hierarchy = components["hierarchy"]
                self.construction_seconds = components["construction_seconds"]
                self.num_original = self.contraction.num_original
                owner_shard = owner_shard_by_original(
                    self.contraction,
                    self.hierarchy,
                    manifest["boundaries"],
                    manifest.get("vertex_order", "identity"),
                )
                self.placer = BatchPlacer(
                    owner_shard,
                    self.pool.worker_of_shard,
                    majority_threshold=self.placer.majority_threshold,
                )
                self._reloads += 1
            finally:
                self._reload_gate.set()
        return {
            "generation": self.generation,
            "workers": [dict(reply) for reply in replies],
        }

    async def health(
        self, timeout: float = 5.0, restart_unhealthy: bool = False
    ) -> Dict[str, List[int]]:
        """Ping every worker; optionally kick unresponsive ones.

        A kicked worker's dispatcher restarts the process and *retries the
        ping*, so with ``restart_unhealthy=True`` a hung-but-recoverable
        worker comes back healthy within one call.
        """
        self._check_open()
        healthy: List[int] = []
        unhealthy: List[int] = []
        for worker_id in range(self.pool.num_workers):
            future = self.pool.submit(worker_id, {"op": "ping"})
            try:
                await asyncio.wait_for(asyncio.shield(future), timeout=timeout)
            except asyncio.TimeoutError:
                if restart_unhealthy:
                    self.pool.kill_worker(worker_id)
                    try:
                        await asyncio.wait_for(future, timeout=timeout)
                        healthy.append(worker_id)
                        continue
                    except asyncio.TimeoutError:
                        pass
                unhealthy.append(worker_id)
            else:
                healthy.append(worker_id)
        return {"healthy": healthy, "unhealthy": unhealthy}

    def reset_stats(self) -> None:
        """Zero the placement/coalescing counters and per-worker tallies."""
        self._batches = 0
        self._whole_batches = 0
        self._split_batches = 0
        self._scalar_requests = 0
        self._coalesce_flushes = 0
        self.pool.reset_stats()
        if self.shared_cache is not None:
            self.shared_cache.reset_counters()

    # ------------------------------------------------------------------ #
    # TCP plane
    # ------------------------------------------------------------------ #
    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Serve the wire protocol; returns the bound ``(host, port)``."""
        self._check_open()
        if self._tcp_server is not None:
            raise RuntimeError("the TCP listener is already running")
        self._tcp_server = await asyncio.start_server(self._handle_connection, host, port)
        bound = self._tcp_server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # one write lock per connection: concurrent request tasks must not
        # interleave their frames on the shared stream
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except (ConnectionError, ValueError):
                    break  # peer vanished mid-frame or spoke garbage
                if request is None:
                    break
                # each request runs as its own task so one connection can
                # multiplex - and so scalars from different connections
                # land in the same coalescing window
                task = asyncio.ensure_future(
                    self._serve_request(request, writer, write_lock)
                )
                self._conn_tasks.add(task)
                task.add_done_callback(self._conn_tasks.discard)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(
        self,
        request: Union[dict, BinaryMessage],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        if isinstance(request, BinaryMessage):
            request_id = request.request_id
        else:
            request_id = request.get("id")
        try:
            if isinstance(request, BinaryMessage):
                frame = await self._serve_binary(request)
            else:
                try:
                    value = await self._apply(request)
                    # the ok-reply encode sits *inside* this try: a value
                    # over the frame cap must come back as an error frame,
                    # not strand the peer's pending future
                    frame = encode_frame({"id": request_id, "ok": True, "value": value})
                except BaseException as error:  # noqa: BLE001 - shipped to the peer
                    frame = encode_frame(
                        {"id": request_id, "ok": False, "error": error_to_wire(error)}
                    )
        except BaseException as error:  # noqa: BLE001 - last resort
            # a fire-and-forget task must never swallow a request: if even
            # the error reply can't be encoded, drop the connection so the
            # client fails its pending futures instead of hanging
            try:
                frame = encode_frame(
                    {"id": request_id, "ok": False, "error": error_to_wire(error)}
                )
            except Exception:
                writer.close()
                return
        try:
            async with write_lock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer gone; nothing to tell

    async def _serve_binary(self, request: BinaryMessage) -> bytes:
        """Serve one binary request; errors always fall back to JSON.

        In ``wire="binary"`` mode the ok-reply is a binary frame viewing
        the result buffer; in ``wire="json"`` mode (the negotiated
        fallback) the same request gets an ordinary JSON reply.  Reply
        encoding happens inside the same try as the query, so a result
        over the frame cap answers with a JSON error frame.
        """
        try:
            if request.kind != KIND_REQUEST:
                raise ValueError("expected a binary request frame, got a response kind")
            value = await self._apply_binary(request)
            if self.wire == "binary":
                return encode_binary_frame(
                    KIND_RESPONSE, request.op, request.request_id, [value]
                )
            return encode_frame(
                {"id": request.request_id, "ok": True, "value": value.tolist()}
            )
        except BaseException as error:  # noqa: BLE001 - shipped to the peer
            return encode_frame(
                {"id": request.request_id, "ok": False, "error": error_to_wire(error)}
            )

    async def _apply_binary(self, request: BinaryMessage) -> np.ndarray:
        """Execute one binary request; returns the raw ndarray result."""
        arrays = request.arrays
        if request.op == "distances":
            if len(arrays) != 1 or arrays[0].ndim != 2 or arrays[0].shape[1] != 2:
                raise ValueError("binary 'distances' expects one (N, 2) int64 array")
            return await self.distances(arrays[0])
        if request.op == "one_to_many":
            if len(arrays) != 2 or arrays[0].size != 1:
                raise ValueError(
                    "binary 'one_to_many' expects a one-element source array "
                    "and a target array"
                )
            return await self.one_to_many(
                int(arrays[0].reshape(-1)[0]), arrays[1].reshape(-1)
            )
        if request.op == "many_to_many":
            if len(arrays) != 2:
                raise ValueError(
                    "binary 'many_to_many' expects a source array and a target array"
                )
            return await self.many_to_many(arrays[0].reshape(-1), arrays[1].reshape(-1))
        raise ValueError(f"op {request.op!r} has no binary form")

    async def _apply(self, request: dict):
        """Execute one wire request and return a JSON-serialisable value."""
        op = request.get("op")
        if op == "distance":
            return await self.distance(request["s"], request["t"])
        if op == "distances":
            values = await self.distances(request["pairs"])
            return [float(v) for v in values]
        if op == "one_to_many":
            values = await self.one_to_many(request["s"], request["targets"])
            return [float(v) for v in values]
        if op == "many_to_many":
            matrix = await self.many_to_many(request["sources"], request["targets"])
            return [[float(v) for v in row] for row in matrix]
        if op == "hub_count":
            value, hubs = await self.distance_with_hub_count(request["s"], request["t"])
            return [value, hubs]
        if op == "stats":
            return self.stats.as_dict()
        if op == "reload":
            return await self.reload()
        if op == "health":
            return await self.health(
                restart_unhealthy=bool(request.get("restart_unhealthy", False))
            )
        if op == "ping":
            return {"num_workers": self.pool.num_workers, "num_original": self.num_original}
        raise ValueError(f"unknown op {op!r}")


class FleetClient:
    """Async TCP client of a :class:`FleetServer`.

    One connection multiplexes concurrent requests by id; remote errors
    re-raise as their original builtin exception type (see
    :func:`~repro.serving.fleet.protocol.wire_to_error`).

    ``wire="binary"`` sends the array ops (``distances`` /
    ``one_to_many`` / ``many_to_many``) as binary frames; the reply may
    come back binary (server in binary mode) or JSON (negotiated
    fallback) - both resolve to the same float64 arrays.  Control ops
    are always JSON.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        wire: str = "json",
    ) -> None:
        self.wire = _validate_wire(wire)
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int, wire: str = "json") -> "FleetClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, wire=wire)

    async def _read_loop(self) -> None:
        try:
            while True:
                reply = await read_frame(self._reader)
                if reply is None:
                    break
                if isinstance(reply, BinaryMessage):
                    future = self._pending.pop(reply.request_id, None)
                    if future is None or future.done():
                        continue
                    future.set_result(reply.arrays[0] if reply.arrays else None)
                    continue
                future = self._pending.pop(reply.get("id"), None)
                if future is None or future.done():
                    continue
                if reply.get("ok"):
                    future.set_result(reply.get("value"))
                else:
                    future.set_exception(wire_to_error(reply.get("error", {})))
        except (ConnectionError, ValueError, OSError) as error:
            self._fail_pending(error)
        else:
            self._fail_pending(ConnectionError("fleet connection closed"))

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    def _register(self) -> Tuple[int, asyncio.Future]:
        loop = asyncio.get_running_loop()
        request_id = self._next_id
        self._next_id += 1
        future = loop.create_future()
        self._pending[request_id] = future
        return request_id, future

    async def request(self, op: str, **arguments):
        """Send one JSON request and await its reply value."""
        request_id, future = self._register()
        message = {"id": request_id, "op": op, **arguments}
        async with self._write_lock:
            await write_frame(self._writer, message)
        return await future

    async def _request_binary(self, op: str, arrays: List[np.ndarray]):
        """Send one binary request; the reply may be binary or JSON."""
        request_id, future = self._register()
        frame = encode_binary_frame(KIND_REQUEST, op, request_id, arrays)
        async with self._write_lock:
            self._writer.write(frame)
            await self._writer.drain()
        return await future

    async def distance(self, s: int, t: int) -> float:
        return float(await self.request("distance", s=int(s), t=int(t)))

    async def distances(self, pairs) -> np.ndarray:
        pair_array = np.ascontiguousarray(
            np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        )
        if self.wire == "binary":
            values = await self._request_binary("distances", [pair_array])
            return np.asarray(values, dtype=np.float64).reshape(-1)
        wire_pairs = [[int(s), int(t)] for s, t in pair_array]
        values = await self.request("distances", pairs=wire_pairs)
        return np.asarray(values, dtype=np.float64)

    async def one_to_many(self, s: int, targets) -> np.ndarray:
        target_array = np.ascontiguousarray(
            np.asarray(targets, dtype=np.int64).reshape(-1)
        )
        if self.wire == "binary":
            values = await self._request_binary(
                "one_to_many", [np.asarray([int(s)], dtype=np.int64), target_array]
            )
            return np.asarray(values, dtype=np.float64).reshape(-1)
        values = await self.request(
            "one_to_many", s=int(s), targets=[int(t) for t in target_array]
        )
        return np.asarray(values, dtype=np.float64)

    async def many_to_many(self, sources, targets) -> np.ndarray:
        source_array = np.ascontiguousarray(
            np.asarray(sources, dtype=np.int64).reshape(-1)
        )
        target_array = np.ascontiguousarray(
            np.asarray(targets, dtype=np.int64).reshape(-1)
        )
        if self.wire == "binary":
            matrix = await self._request_binary(
                "many_to_many", [source_array, target_array]
            )
            return np.asarray(matrix, dtype=np.float64).reshape(
                len(source_array), len(target_array)
            )
        matrix = await self.request(
            "many_to_many",
            sources=[int(s) for s in source_array],
            targets=[int(t) for t in target_array],
        )
        return np.asarray(matrix, dtype=np.float64).reshape(
            len(source_array), len(target_array)
        )

    async def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        value, hubs = await self.request("hub_count", s=int(s), t=int(t))
        return float(value), int(hubs)

    async def stats(self) -> Dict[str, object]:
        return await self.request("stats")

    async def reload(self) -> Dict[str, object]:
        """Ask the fleet to hot-swap onto the generation currently on disk."""
        return await self.request("reload")

    async def ping(self) -> Dict[str, object]:
        return await self.request("ping")

    async def aclose(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(ConnectionError("fleet connection closed"))

    async def __aenter__(self) -> "FleetClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
