"""Shard-fleet serving: an asyncio front door over worker processes.

The deployment shape of ROADMAP Direction 1: a
:class:`~repro.serving.fleet.frontdoor.FleetServer` accepts scalar and
batch distance requests (in-process async, or over a length-prefixed TCP
protocol), coalesces concurrent scalars with ``asyncio.Future``\\ s, and
places each batch - whole when it has a clear majority shard, split and
gathered when genuinely cross-worker - onto a pool of long-lived worker
processes, each serving shards through the lazy-mmap
:class:`~repro.serving.shards.ShardRouter`.  Answers stay bit-identical
to the monolithic engine; the fleet only changes *where* they are
computed.
"""

from repro.serving.fleet.frontdoor import FleetClient, FleetServer, FleetStats
from repro.serving.fleet.oracle import FleetOracle
from repro.serving.fleet.placement import BatchPlacer, PlacementPlan, owner_shard_by_original
from repro.serving.fleet.pool import WorkerPool, assign_shards
from repro.serving.fleet.worker import WorkerCrashError, WorkerHandle, worker_main

__all__ = [
    "BatchPlacer",
    "FleetClient",
    "FleetOracle",
    "FleetServer",
    "FleetStats",
    "PlacementPlan",
    "WorkerCrashError",
    "WorkerHandle",
    "WorkerPool",
    "assign_shards",
    "owner_shard_by_original",
    "worker_main",
]
