"""Shard-fleet serving: an asyncio front door over worker processes.

The deployment shape of ROADMAP Direction 1: a
:class:`~repro.serving.fleet.frontdoor.FleetServer` accepts scalar and
batch distance requests (in-process async, or over a length-prefixed TCP
protocol), coalesces concurrent scalars with ``asyncio.Future``\\ s, and
places each batch - whole when it has a clear majority shard, split and
gathered when genuinely cross-worker - onto a pool of long-lived worker
processes, each serving shards through the lazy-mmap
:class:`~repro.serving.shards.ShardRouter`.  Answers stay bit-identical
to the monolithic engine; the fleet only changes *where* they are
computed.

The TCP plane speaks two framings (:mod:`repro.serving.fleet.protocol`):
JSON for control ops and netcat-style clients, and a binary frame type
that moves ``distances`` / ``one_to_many`` / ``many_to_many`` payloads
as raw ndarray bytes.  Workers optionally share one
:class:`~repro.serving.shm_cache.SharedPairCache`, so a hot pair pays
the label min-plus once per *fleet* instead of once per worker.
"""

from repro.serving.fleet.frontdoor import FleetClient, FleetServer, FleetStats
from repro.serving.fleet.oracle import FleetOracle
from repro.serving.fleet.placement import BatchPlacer, PlacementPlan, owner_shard_by_original
from repro.serving.fleet.pool import WorkerPool, assign_shards
from repro.serving.fleet.protocol import (
    BinaryMessage,
    decode_binary_payload,
    encode_binary_frame,
    encode_frame,
)
from repro.serving.fleet.worker import WorkerCrashError, WorkerHandle, worker_main

__all__ = [
    "BatchPlacer",
    "BinaryMessage",
    "decode_binary_payload",
    "encode_binary_frame",
    "encode_frame",
    "FleetClient",
    "FleetOracle",
    "FleetServer",
    "FleetStats",
    "PlacementPlan",
    "WorkerCrashError",
    "WorkerHandle",
    "WorkerPool",
    "assign_shards",
    "owner_shard_by_original",
    "worker_main",
]
