"""Wire protocol of the fleet front door: length-prefixed JSON frames.

The :class:`~repro.serving.fleet.frontdoor.FleetServer` speaks a
deliberately small protocol over TCP so that any client - another Python
process, a load generator, ``netcat`` plus a JSON encoder - can talk to
it without importing this package:

* every message is one **frame**: a 4-byte big-endian unsigned length
  followed by that many bytes of UTF-8 JSON;
* requests carry an ``id`` (echoed back verbatim, so one connection can
  multiplex concurrent requests), an ``op`` and the op's arguments;
* responses carry the same ``id`` plus either ``{"ok": true, "value": ...}``
  or ``{"ok": false, "error": {"type": ..., "message": ...}}``.

Distances may be infinite (disconnected pairs), so frames use Python's
JSON dialect in which ``Infinity`` is a valid literal - the same
extension every ``json.loads`` accepts by default.

The ops mirror the :class:`~repro.core.oracle.DistanceOracle` surface:
``distance``, ``distances``, ``one_to_many``, ``many_to_many``,
``hub_count`` plus the fleet-management ops ``stats``, ``health`` and
``ping``.  Errors re-raise client-side as the same builtin exception
type where possible (``ValueError`` for a bad vertex id stays a
``ValueError``), so a remote fleet behaves like an in-process oracle.
"""

from __future__ import annotations

import asyncio
import builtins
import json
import struct
from typing import Optional

#: frames above this size are refused - a corrupt length prefix must not
#: make the reader allocate gigabytes
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def encode_frame(message: dict) -> bytes:
    """Serialise one message as a length-prefixed JSON frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES} byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one frame; ``None`` on a clean EOF between frames.

    A connection dropped mid-frame raises ``ConnectionError`` - a half
    message must never be silently treated as a clean shutdown.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ConnectionError("connection closed mid-frame (length prefix)") from error
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ValueError(
            f"peer announced a {length} byte frame, above the "
            f"{MAX_FRAME_BYTES} byte limit"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ConnectionError("connection closed mid-frame (payload)") from error
    message = json.loads(payload.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError(f"expected a JSON object frame, got {type(message).__name__}")
    return message


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one frame and flush it."""
    writer.write(encode_frame(message))
    await writer.drain()


# --------------------------------------------------------------------- #
# error marshalling
# --------------------------------------------------------------------- #
def error_to_wire(error: BaseException) -> dict:
    """Flatten an exception for the wire (type name + message)."""
    return {"type": type(error).__name__, "message": str(error)}


def wire_to_error(wire: dict) -> Exception:
    """Rebuild a client-side exception from a wire error.

    Builtin exception types round-trip as themselves (so a remote
    ``ValueError`` still ``raises ValueError`` at the client); anything
    else degrades to ``RuntimeError`` with the original type in the
    message.
    """
    name = str(wire.get("type", "RuntimeError"))
    message = str(wire.get("message", ""))
    candidate = getattr(builtins, name, None)
    if (
        isinstance(candidate, type)
        and issubclass(candidate, Exception)
        and not issubclass(candidate, (SystemExit, KeyboardInterrupt))
    ):
        return candidate(message)
    return RuntimeError(f"{name}: {message}")
