"""Wire protocol of the fleet front door: length-prefixed JSON + binary frames.

The :class:`~repro.serving.fleet.frontdoor.FleetServer` speaks a
deliberately small protocol over TCP so that any client - another Python
process, a load generator, ``netcat`` plus a JSON encoder - can talk to
it without importing this package:

* every message is one **frame**: a 4-byte big-endian unsigned length
  followed by that many payload bytes;
* a payload whose first byte is ``{`` (any valid JSON object) is a
  **JSON frame**: requests carry an ``id`` (echoed back verbatim, so one
  connection can multiplex concurrent requests), an ``op`` and the op's
  arguments; responses carry the same ``id`` plus either
  ``{"ok": true, "value": ...}`` or
  ``{"ok": false, "error": {"type": ..., "message": ...}}``;
* a payload whose first byte is ``0xB1`` is a **binary frame**: a small
  fixed header (kind, op code, request id, array count) followed by raw
  little-endian ndarray bytes, so numeric batches move as
  ``np.frombuffer`` views with no per-float boxing.  Only the
  array-valued ops (``distances``, ``one_to_many``, ``many_to_many``)
  have a binary form; control ops (``ping``, ``stats``, ``health``,
  ``reload``) and
  every error reply stay JSON, and a server may always answer a binary
  request with a JSON frame (the negotiated fallback), so JSON-only
  clients keep working unchanged.

Binary frame byte layout (everything after the 4-byte length prefix,
header fields big-endian, array data little-endian)::

    offset 0   u8   magic   = 0xB1
    offset 1   u8   version = 1
    offset 2   u8   kind    (1 = request, 2 = ok-response)
    offset 3   u8   op code (1 = distances, 2 = one_to_many, 3 = many_to_many)
    offset 4   u64  request id
    offset 12  u8   number of arrays
    then per array:
        u8  dtype code (1 = little-endian int64, 2 = little-endian float64)
        u8  ndim (<= 8)
        u32 * ndim  shape
        raw C-order array bytes
    (arrays back to back; no padding; no trailing bytes allowed)

Distances may be infinite (disconnected pairs), so JSON frames use
Python's JSON dialect in which ``Infinity`` is a valid literal - the same
extension every ``json.loads`` accepts by default - and binary frames
simply carry the IEEE-754 ``inf`` bit pattern.

The ops mirror the :class:`~repro.core.oracle.DistanceOracle` surface:
``distance``, ``distances``, ``one_to_many``, ``many_to_many``,
``hub_count`` plus the fleet-management ops ``stats``, ``health``,
``ping`` and ``reload`` (hot-swap every worker onto the index generation
currently on disk; always JSON, answers with the new generation and the
per-worker replies).  Errors re-raise client-side as the same builtin exception
type where possible (``ValueError`` for a bad vertex id stays a
``ValueError``), so a remote fleet behaves like an in-process oracle.

This module also provides the **pipe codec** used on the
worker <-> dispatcher hop (:mod:`repro.serving.fleet.worker`): ndarray
payloads ship as the same binary layout via ``Connection.send_bytes``
(no pickling of numeric data), everything else falls back to pickle -
pickle streams start with ``0x80``, so the magic byte disambiguates.
"""

from __future__ import annotations

import asyncio
import builtins
import json
import math
import pickle
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

#: frames above this size are refused - a corrupt length prefix must not
#: make the reader allocate gigabytes.  The cap applies to *both* frame
#: kinds through :func:`check_frame_length`.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: first payload byte of a binary frame; JSON object frames start with
#: ``{`` (0x7B) and pickle streams with 0x80, so the three never collide
BINARY_MAGIC = 0xB1
BINARY_VERSION = 1

KIND_REQUEST = 1
KIND_RESPONSE = 2

#: ops with a binary form; everything else travels as JSON
OP_CODES = {"distances": 1, "one_to_many": 2, "many_to_many": 3}
OP_NAMES = {code: name for name, code in OP_CODES.items()}

#: wire dtype codes; array bytes are always little-endian on the wire
DTYPE_CODES = {1: np.dtype("<i8"), 2: np.dtype("<f8")}
_DTYPE_OF_KIND = {"i": 1, "f": 2}

_BINARY_HEAD = struct.Struct(">BBBBQB")
_ARRAY_HEAD = struct.Struct(">BB")
_MAX_NDIM = 8


def check_frame_length(length) -> int:
    """Validate a frame/payload length against the shared 64MB cap.

    One helper for both frame kinds, so a binary frame can never bypass
    the cap the JSON encoder enforces.  Non-numbers, non-finite values
    and negative lengths are rejected with the same loud ``ValueError``
    as an oversized frame.
    """
    if isinstance(length, bool) or not isinstance(
        length, (int, float, np.integer, np.floating)
    ):
        raise ValueError(f"frame length must be a number, got {length!r}")
    if not math.isfinite(length):
        raise ValueError(f"frame length must be finite, got {length!r}")
    if length < 0:
        raise ValueError(f"frame length must be >= 0, got {length!r}")
    if length > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {int(length)} bytes exceeds the {MAX_FRAME_BYTES} byte limit"
        )
    return int(length)


def _frame(payload: bytes) -> bytes:
    """Length-prefix one payload (shared by both frame kinds)."""
    check_frame_length(len(payload))
    return _LENGTH.pack(len(payload)) + payload


def encode_frame(message: dict) -> bytes:
    """Serialise one message as a length-prefixed JSON frame."""
    return _frame(json.dumps(message, separators=(",", ":")).encode("utf-8"))


# --------------------------------------------------------------------- #
# binary frames
# --------------------------------------------------------------------- #
@dataclass
class BinaryMessage:
    """One decoded binary frame (request or ok-response)."""

    kind: int
    op: str
    request_id: int
    arrays: List[np.ndarray]


def _wire_array(array: np.ndarray) -> np.ndarray:
    """Canonicalise one array for the wire (C-contiguous, little-endian)."""
    arr = np.ascontiguousarray(array)
    code = _DTYPE_OF_KIND.get(arr.dtype.kind)
    if code is None or arr.dtype.itemsize != 8:
        raise ValueError(
            f"binary frames carry int64/float64 arrays only, got dtype {arr.dtype}"
        )
    return arr.astype(DTYPE_CODES[code], copy=False)


def encode_binary_payload(
    kind: int, op: str, request_id: int, arrays: Sequence[np.ndarray]
) -> bytes:
    """Encode one binary payload (header + raw array bytes, no length prefix).

    The total size is computed *before* any bytes are assembled and
    checked against the shared cap, so an oversized batch is refused
    without first materialising a giant buffer.
    """
    if kind not in (KIND_REQUEST, KIND_RESPONSE):
        raise ValueError(f"unknown binary frame kind {kind!r}")
    op_code = OP_CODES.get(op)
    if op_code is None:
        raise ValueError(f"op {op!r} has no binary form; expected one of {list(OP_CODES)}")
    if not isinstance(request_id, (int, np.integer)) or isinstance(request_id, bool):
        raise ValueError(f"request id must be an integer, got {request_id!r}")
    wire_arrays = [_wire_array(array) for array in arrays]
    if len(wire_arrays) > 255:
        raise ValueError(f"binary frames carry at most 255 arrays, got {len(wire_arrays)}")
    total = _BINARY_HEAD.size
    for arr in wire_arrays:
        if arr.ndim > _MAX_NDIM:
            raise ValueError(f"binary arrays are limited to {_MAX_NDIM} dims, got {arr.ndim}")
        for dim in arr.shape:
            # a dim can exceed u32 while total bytes stay tiny, e.g. (2**32, 0)
            if dim >= 1 << 32:
                raise ValueError(
                    f"binary array dim {dim} does not fit the u32 shape field"
                )
        total += _ARRAY_HEAD.size + 4 * arr.ndim + arr.nbytes
    check_frame_length(total)
    parts = [
        _BINARY_HEAD.pack(
            BINARY_MAGIC, BINARY_VERSION, kind, op_code, int(request_id), len(wire_arrays)
        )
    ]
    for arr in wire_arrays:
        code = _DTYPE_OF_KIND[arr.dtype.kind]
        parts.append(_ARRAY_HEAD.pack(code, arr.ndim))
        parts.append(struct.pack(f">{arr.ndim}I", *arr.shape))
        parts.append(arr.data if arr.nbytes else b"")
    return b"".join(parts)


def decode_binary_payload(payload) -> BinaryMessage:
    """Decode one binary payload into arrays that *view* the input buffer.

    Every malformed input - truncated header, unknown dtype code, a
    declared shape larger than the remaining bytes, trailing garbage -
    raises ``ValueError``; nothing is ever silently zero-filled or
    truncated.
    """
    view = memoryview(payload)
    size = len(view)
    if size < _BINARY_HEAD.size:
        raise ValueError(
            f"truncated binary frame header: {size} bytes, need {_BINARY_HEAD.size}"
        )
    magic, version, kind, op_code, request_id, num_arrays = _BINARY_HEAD.unpack_from(view, 0)
    if magic != BINARY_MAGIC:
        raise ValueError(f"bad binary frame magic 0x{magic:02X}")
    if version != BINARY_VERSION:
        raise ValueError(f"unsupported binary frame version {version}")
    if kind not in (KIND_REQUEST, KIND_RESPONSE):
        raise ValueError(f"unknown binary frame kind {kind}")
    op = OP_NAMES.get(op_code)
    if op is None:
        raise ValueError(f"unknown binary op code {op_code}")
    offset = _BINARY_HEAD.size
    arrays: List[np.ndarray] = []
    for _ in range(num_arrays):
        if size - offset < _ARRAY_HEAD.size:
            raise ValueError("truncated binary frame: array header cut short")
        dtype_code, ndim = _ARRAY_HEAD.unpack_from(view, offset)
        offset += _ARRAY_HEAD.size
        dtype = DTYPE_CODES.get(dtype_code)
        if dtype is None:
            raise ValueError(f"unknown wire dtype code {dtype_code}")
        if ndim > _MAX_NDIM:
            raise ValueError(f"binary arrays are limited to {_MAX_NDIM} dims, got {ndim}")
        if size - offset < 4 * ndim:
            raise ValueError("truncated binary frame: shape cut short")
        shape = struct.unpack_from(f">{ndim}I", view, offset)
        offset += 4 * ndim
        count = 1
        for dim in shape:
            count *= dim
        nbytes = count * dtype.itemsize
        if nbytes > size - offset:
            raise ValueError(
                f"declared shape {tuple(shape)} needs {nbytes} bytes but only "
                f"{size - offset} remain in the frame"
            )
        arrays.append(
            np.frombuffer(view, dtype=dtype, count=count, offset=offset).reshape(shape)
        )
        offset += nbytes
    if offset != size:
        raise ValueError(f"{size - offset} trailing bytes after the last binary array")
    return BinaryMessage(kind=kind, op=op, request_id=int(request_id), arrays=arrays)


def encode_binary_frame(
    kind: int, op: str, request_id: int, arrays: Sequence[np.ndarray]
) -> bytes:
    """Serialise one binary message as a length-prefixed frame."""
    return _frame(encode_binary_payload(kind, op, request_id, arrays))


# --------------------------------------------------------------------- #
# stream I/O (both frame kinds)
# --------------------------------------------------------------------- #
async def read_frame(reader: asyncio.StreamReader) -> Optional[Union[dict, BinaryMessage]]:
    """Read one frame; ``None`` on a clean EOF between frames.

    Returns a ``dict`` for JSON frames and a :class:`BinaryMessage` for
    binary frames (dispatched on the first payload byte).  A connection
    dropped mid-frame raises ``ConnectionError`` - a half message must
    never be silently treated as a clean shutdown.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ConnectionError("connection closed mid-frame (length prefix)") from error
    (length,) = _LENGTH.unpack(prefix)
    check_frame_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ConnectionError("connection closed mid-frame (payload)") from error
    if payload and payload[0] == BINARY_MAGIC:
        return decode_binary_payload(payload)
    message = json.loads(payload.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError(f"expected a JSON object frame, got {type(message).__name__}")
    return message


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one JSON frame and flush it."""
    writer.write(encode_frame(message))
    await writer.drain()


# --------------------------------------------------------------------- #
# pipe codec (worker <-> dispatcher hop)
# --------------------------------------------------------------------- #
def encode_pipe_message(message: dict) -> bytes:
    """Encode one pipe message: ndarray payloads binary, the rest pickle.

    A ``distances`` request's pair array and an ok-reply's ndarray value
    travel as raw buffer bytes (the same layout as the TCP binary frame,
    minus the length prefix - the pipe frames messages itself); control
    ops, error replies and non-array values fall back to pickle.
    """
    if message.get("op") == "distances" and isinstance(message.get("pairs"), np.ndarray):
        return encode_binary_payload(KIND_REQUEST, "distances", 0, [message["pairs"]])
    if message.get("ok") is True and isinstance(message.get("value"), np.ndarray):
        return encode_binary_payload(KIND_RESPONSE, "distances", 0, [message["value"]])
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def decode_pipe_message(data: bytes) -> dict:
    """Decode one pipe message (binary or pickle, by magic byte)."""
    if data and data[0] == BINARY_MAGIC:
        frame = decode_binary_payload(data)
        if len(frame.arrays) != 1:
            raise ValueError(
                f"pipe frames carry exactly one array, got {len(frame.arrays)}"
            )
        if frame.kind == KIND_REQUEST:
            return {"op": frame.op, "pairs": frame.arrays[0]}
        return {"ok": True, "value": frame.arrays[0]}
    return pickle.loads(data)


# --------------------------------------------------------------------- #
# error marshalling
# --------------------------------------------------------------------- #
def error_to_wire(error: BaseException) -> dict:
    """Flatten an exception for the wire (type name + message)."""
    return {"type": type(error).__name__, "message": str(error)}


def wire_to_error(wire: dict) -> Exception:
    """Rebuild a client-side exception from a wire error.

    Builtin exception types round-trip as themselves (so a remote
    ``ValueError`` still ``raises ValueError`` at the client); anything
    else degrades to ``RuntimeError`` with the original type in the
    message.
    """
    name = str(wire.get("type", "RuntimeError"))
    message = str(wire.get("message", ""))
    candidate = getattr(builtins, name, None)
    if (
        isinstance(candidate, type)
        and issubclass(candidate, Exception)
        and not issubclass(candidate, (SystemExit, KeyboardInterrupt))
    ):
        return candidate(message)
    return RuntimeError(f"{name}: {message}")
