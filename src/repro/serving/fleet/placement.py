"""Locality-aware batch placement for the shard fleet.

PR 5 made shard boundaries follow the hierarchy's own cuts
(:func:`repro.hierarchy.tree.derive_shard_boundaries`): labels are stored
in DFS order, subtrees are contiguous, and on neighbourhood-style traffic
the cross-shard pair fraction drops below 0.1 at 4 shards.  This module
is where that locality finally pays off at *placement* time: instead of
splitting every batch by source vertex (what a naive scatter would do),
the :class:`BatchPlacer` computes the **majority worker** of a batch -
the worker owning the shard that most of the batch's source vertices live
in - and routes the batch there *whole* whenever the majority is clear
enough.  The owning worker lazily mmaps any foreign shard the minority
pairs touch (shared pages, no copies), so answers stay bit-identical
while the common case becomes a single-worker round trip.

Only a *genuinely cross-worker* batch - one with no sufficiently large
majority - falls back to split-and-gather across the owning workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.contraction import ContractedGraph
from repro.hierarchy.tree import BalancedTreeHierarchy


def owner_shard_by_original(
    contraction: ContractedGraph,
    hierarchy: BalancedTreeHierarchy,
    boundaries: List[int],
    vertex_order: str,
) -> np.ndarray:
    """Owning shard of every *original* vertex id, as one int64 array.

    A vertex's owner is the shard storing its core label block: contracted
    vertices are attributed to their attachment root's core vertex, core
    ids are translated to storage positions when the layout stores labels
    in hierarchy DFS order, and positions map to shards through the
    manifest's boundary edges - the exact arithmetic the
    :class:`~repro.serving.shards.ShardRouter` uses, precomputed once so
    the front door can place batches with two gathers and a searchsorted.
    """
    root = np.asarray(contraction.root, dtype=np.int64)
    original_to_core = np.asarray(contraction.original_to_core, dtype=np.int64)
    # a contracted vertex hangs off its attachment root, which is core
    core_of = original_to_core[root]
    if vertex_order == "hierarchy":
        positions = np.asarray(hierarchy.subtree_ranges(), dtype=np.int64)[core_of]
    else:
        positions = core_of
    edges = np.asarray(boundaries, dtype=np.int64)
    return np.searchsorted(edges, positions, side="right") - 1


@dataclass
class PlacementPlan:
    """Where one batch goes.

    Exactly one of the two shapes is set:

    * ``whole`` - the whole batch rides to this worker (majority
      placement hit; ``majority_fraction`` says how clear the call was);
    * ``parts`` - split-and-gather: ``(worker_id, row_indices)`` per
      owning worker, re-assembled in input order by the caller.
    """

    whole: Optional[int]
    parts: List[Tuple[int, np.ndarray]]
    majority_fraction: float


class BatchPlacer:
    """Routes pair batches to workers by their majority shard.

    Parameters
    ----------
    owner_shard:
        Owning shard per original vertex id (see
        :func:`owner_shard_by_original`).
    worker_of_shard:
        Worker id owning each shard (contiguous assignment from the
        :class:`~repro.serving.fleet.pool.WorkerPool`).
    majority_threshold:
        A batch routes whole to its majority worker when that worker owns
        at least this fraction of the batch's source vertices; below it
        the batch is considered genuinely cross-worker and is split.
        ``1.0`` demands unanimity; the default 0.75 keeps locality
        batches whole while scatter traffic still fans out.
    """

    def __init__(
        self,
        owner_shard: np.ndarray,
        worker_of_shard: np.ndarray,
        majority_threshold: float = 0.75,
    ) -> None:
        if not 0.0 < majority_threshold <= 1.0:
            raise ValueError(
                f"majority_threshold must be in (0, 1], got {majority_threshold}"
            )
        self._owner_worker = np.asarray(worker_of_shard, dtype=np.int64)[
            np.asarray(owner_shard, dtype=np.int64)
        ]
        self.num_workers = int(np.asarray(worker_of_shard).max()) + 1
        self.majority_threshold = float(majority_threshold)

    def owner_workers(self, sources: np.ndarray) -> np.ndarray:
        """Owning worker of each source vertex (original ids)."""
        return self._owner_worker[sources]

    def plan(self, pair_array: np.ndarray) -> PlacementPlan:
        """Compute the placement of one ``(n, 2)`` pair batch."""
        owners = self._owner_worker[pair_array[:, 0]]
        counts = np.bincount(owners, minlength=self.num_workers)
        leader = int(counts.argmax())
        fraction = counts[leader] / len(owners) if len(owners) else 1.0
        if fraction >= self.majority_threshold:
            return PlacementPlan(whole=leader, parts=[], majority_fraction=float(fraction))
        parts = [
            (int(worker), np.nonzero(owners == worker)[0])
            for worker in np.unique(owners).tolist()
        ]
        return PlacementPlan(whole=None, parts=parts, majority_fraction=float(fraction))
