"""Synchronous ``DistanceOracle`` facade over the asyncio fleet.

:class:`FleetOracle` runs a private event loop in a daemon thread, starts
a :class:`~repro.serving.fleet.frontdoor.FleetServer` on it, and exposes
the ordinary blocking oracle surface - so the conformance suite, the
benchmark harness and any synchronous caller can drive a multi-process
fleet exactly like the in-process :class:`~repro.core.index.HC2LIndex`
or :class:`~repro.serving.shards.ShardRouter`.  Calls from *different*
threads coalesce on the shared loop just like concurrent async callers.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serving.fleet.frontdoor import FleetServer


class FleetOracle:
    """Blocking facade: a shard fleet with the ``DistanceOracle`` shape.

    Construction is synchronous and *started*: when ``__init__`` returns,
    the loop thread is running, every worker process has answered a ping,
    and the oracle is ready to serve.  ``close()`` drains and stops
    everything; the instance also works as a context manager.

    Server options pass through ``**server_options`` - notably
    ``wire="json"|"binary"`` (TCP response framing) and
    ``shared_cache_slots`` (cross-worker shared-memory pair cache; the
    in-process oracle surface benefits from it too, since workers consult
    the cache on every ``distances`` batch regardless of how the request
    arrived).
    """

    def __init__(
        self,
        path: Union[str, Path],
        num_workers: int = 2,
        start_timeout: float = 60.0,
        **server_options,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="fleet-oracle-loop", daemon=True
        )
        self._thread.start()
        self._closed = False
        try:
            self.server = FleetServer(path, num_workers=num_workers, **server_options)
            self._run(self.server.start(timeout=start_timeout))
        except BaseException:
            self._stop_loop()
            raise

    def _run(self, coroutine):
        """Run one coroutine on the fleet loop and block for its result."""
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    # ------------------------------------------------------------------ #
    # DistanceOracle protocol
    # ------------------------------------------------------------------ #
    @property
    def supports_batch(self) -> bool:
        return True

    @property
    def wire(self) -> str:
        """TCP response framing of the underlying server."""
        return self.server.wire

    @property
    def index_size_bytes(self) -> int:
        return self.server.index_size_bytes

    def label_size_bytes(self) -> int:
        return self.server.index_size_bytes

    @property
    def construction_seconds(self) -> float:
        return self.server.construction_seconds

    def distance(self, s: int, t: int) -> float:
        return self._run(self.server.distance(s, t))

    def distances(self, pairs) -> np.ndarray:
        return self._run(self.server.distances(pairs))

    def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        return self._run(self.server.one_to_many(s, targets))

    def many_to_many(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        return self._run(self.server.many_to_many(sources, targets))

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        return self._run(self.server.distance_with_hub_count(s, t))

    # ------------------------------------------------------------------ #
    # fleet management
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        return self.server.stats.as_dict()

    def reset_stats(self) -> None:
        self.server.reset_stats()

    def health(self, timeout: float = 5.0, restart_unhealthy: bool = False) -> Dict:
        return self._run(
            self.server.health(timeout=timeout, restart_unhealthy=restart_unhealthy)
        )

    @property
    def generation(self) -> int:
        """Index generation the fleet is currently serving."""
        return self.server.generation

    def reload(self, timeout: float = 120.0) -> Dict[str, object]:
        """Hot-swap every worker onto the generation currently on disk.

        Blocks until the drain + swap completes; concurrent queries from
        other threads queue behind the swap instead of erroring.  Returns
        the new generation and the per-worker replies.
        """
        return self._run(self.server.reload(timeout=timeout))

    def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Expose the fleet's TCP plane; returns the bound ``(host, port)``."""
        return self._run(self.server.start_tcp(host, port))

    def kill_worker(self, worker_id: int) -> None:
        """Hard-kill one worker (failure testing; it restarts on demand)."""
        self.server.pool.kill_worker(worker_id)

    def close(self, timeout: float = 10.0) -> None:
        """Drain in-flight requests, stop the pool, stop the loop thread."""
        if self._closed:
            return
        self._closed = True
        try:
            self._run(self.server.aclose(timeout=timeout))
        finally:
            self._stop_loop()

    def __enter__(self) -> "FleetOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"FleetOracle(path={str(self.server.path)!r}, "
            f"num_workers={self.server.pool.num_workers})"
        )
