"""The fleet's worker pool: shard ownership, lifecycle, aggregate stats.

A :class:`WorkerPool` owns N :class:`~repro.serving.fleet.worker.WorkerHandle`
instances and the **shard assignment**: shards are dealt to workers in
contiguous runs (``np.array_split`` over shard ids), which composes with
the hierarchy-aligned boundaries of PR 5 - contiguous shards are
contiguous DFS ranges, so one worker owns one connected slice of the
hierarchy and neighbourhood traffic stays on it.

The pool's blocking calls (``start``, ``shutdown``, ``health``) are meant
to run in an executor when driven from the asyncio front door; the
per-request path (:meth:`submit`) never blocks - it queues onto the
worker's dispatcher thread and returns a future on the caller's loop.
"""

from __future__ import annotations

import asyncio
import multiprocessing
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.serving.fleet.worker import WorkerHandle


def assign_shards(num_shards: int, num_workers: int) -> List[List[int]]:
    """Contiguous shard runs per worker (worker ``w`` owns run ``w``).

    Contiguity is deliberate: under hierarchy-aligned boundaries adjacent
    shards are adjacent DFS ranges, so a contiguous run is one connected
    slice of the hierarchy.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if num_workers > num_shards:
        raise ValueError(
            f"num_workers ({num_workers}) exceeds num_shards ({num_shards}); "
            f"a worker owning zero shards would never be placed - re-shard "
            f"the layout or reduce the pool"
        )
    return [
        part.tolist()
        for part in np.array_split(np.arange(num_shards, dtype=np.int64), num_workers)
    ]


class WorkerPool:
    """N shard-owning worker processes behind one submit interface."""

    def __init__(
        self,
        path: Union[str, Path],
        num_shards: int,
        num_workers: int,
        mmap: bool = True,
        max_retries: int = 1,
        cache_name: Optional[str] = None,
    ) -> None:
        self.path = str(path)
        self.assignment = assign_shards(num_shards, num_workers)
        #: worker id owning each shard id (placement input)
        self.worker_of_shard = np.empty(num_shards, dtype=np.int64)
        for worker_id, owned in enumerate(self.assignment):
            self.worker_of_shard[owned] = worker_id
        ctx = multiprocessing.get_context("spawn")  # safe with our threads
        self.workers = [
            WorkerHandle(
                self.path,
                worker_id,
                owned,
                ctx=ctx,
                mmap=mmap,
                max_retries=max_retries,
                cache_name=cache_name,
            )
            for worker_id, owned in enumerate(self.assignment)
        ]
        self._started = False

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------ #
    # lifecycle (blocking; run in an executor from async code)
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn every worker process and dispatcher thread."""
        if self._started:
            return
        for worker in self.workers:
            worker.start()
        self._started = True

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful drain: every queued request finishes, then workers exit."""
        if not self._started:
            return
        for worker in self.workers:
            worker.close(timeout=timeout)
        self._started = False

    def kill_worker(self, worker_id: int) -> None:
        """Hard-kill one worker process (tests, unhealthy-worker recovery);
        its dispatcher restarts it on the next request."""
        self.workers[worker_id].kill()

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def submit(self, worker_id: int, request: dict) -> asyncio.Future:
        """Queue ``request`` on ``worker_id``; resolves on the running loop."""
        if not self._started:
            raise RuntimeError("WorkerPool is not started")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self.workers[worker_id].submit(request, future, loop)
        return future

    async def ping_all(self, timeout: float = 30.0) -> List[dict]:
        """Round-trip a ping through every worker (readiness barrier)."""
        replies = await asyncio.wait_for(
            asyncio.gather(
                *(self.submit(w, {"op": "ping"}) for w in range(self.num_workers))
            ),
            timeout=timeout,
        )
        return list(replies)

    async def reload_all(self, timeout: float = 120.0) -> List[dict]:
        """Fan a generation reload out to every worker.

        Each worker hot-swaps its router onto the manifest currently on
        disk and re-pins its owned shards; the caller (the front door's
        :meth:`~repro.serving.fleet.frontdoor.FleetServer.reload`) is
        responsible for draining the query plane first.
        """
        replies = await asyncio.wait_for(
            asyncio.gather(
                *(self.submit(w, {"op": "reload"}) for w in range(self.num_workers))
            ),
            timeout=timeout,
        )
        return list(replies)

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def worker_stats(self) -> List[Dict[str, object]]:
        """Parent-side per-worker accounting (no worker round trip)."""
        rows = []
        for worker in self.workers:
            stats = worker.stats
            rows.append(
                {
                    "worker_id": worker.worker_id,
                    "requests": stats.requests,
                    "pairs": stats.pairs,
                    "queue_depth": worker.queue_depth,
                    "retries": stats.retries,
                    "restarts": stats.restarts,
                    "owned_shards": list(stats.owned_shards),
                }
            )
        return rows

    def reset_stats(self) -> None:
        for worker in self.workers:
            stats = worker.stats
            stats.requests = 0
            stats.pairs = 0
            stats.retries = 0
            stats.restarts = 0
