"""Shard-routed serving over a partitioned label store.

A monolithic :class:`~repro.core.flat.FlatLabelling` caps a deployment at
one process and one memory budget.  The sharded on-disk layout
(:func:`repro.core.persistence.save_index_sharded`) partitions the label
buffers by core vertex range; :class:`ShardRouter` serves queries over
that layout:

* shards are **mmap-loaded lazily** - a worker touching only part of the
  vertex space maps only those shards, and co-located workers mapping the
  same shard share one physical copy through the page cache;
* batches are **split by the shard owning each source vertex**, fanned
  out as one vectorised min-plus call per source shard (targets are
  gathered per-shard inside the call), and re-assembled in input order;
* the graph-level half of a query - contraction bookkeeping and the
  bitstring LCA - reuses the engine's
  :class:`~repro.core.engine.BatchResolver` unchanged.

The router implements the full :class:`~repro.core.oracle.DistanceOracle`
protocol and returns **bit-identical** answers to the monolithic
:class:`~repro.core.engine.QueryEngine`: the fan-out performs exactly the
same float64 additions and minima, only gathered from per-shard buffers.
It therefore composes under :class:`~repro.serving.cache.CachingOracle`
and :class:`~repro.serving.coalesce.CoalescingServer` with zero changes
to either.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.engine import BatchResolver
from repro.core.flat import FlatLabelling
from repro.core.oracle import BatchMixin, as_pair_array, pairs_from_source
from repro.core.persistence import load_manifest, load_shard, load_sharded_components
from repro.core.query import min_plus_prefix
from repro.utils.validation import check_vertex

INF = float("inf")


@dataclass
class RouterStats:
    """Routing accounting for one :class:`ShardRouter`."""

    batches: int = 0
    core_pairs: int = 0
    cross_shard_pairs: int = 0
    fanout_calls: int = 0
    shard_loads: int = 0
    reloads: int = 0
    pairs_per_shard: Dict[int, int] = field(default_factory=dict)

    def cross_shard_fraction(self) -> float:
        """Fraction of core pairs whose endpoints live in different shards.

        The locality metric the shard layouts compete on: hierarchy-aligned
        boundaries exist to push this down for subtree-local traffic.
        """
        if self.core_pairs == 0:
            return 0.0
        return self.cross_shard_pairs / self.core_pairs

    def as_dict(self) -> Dict[str, float]:
        """Flatten for benchmark/report rows."""
        return {
            "batches": self.batches,
            "core_pairs": self.core_pairs,
            "cross_shard_pairs": self.cross_shard_pairs,
            "cross_shard_fraction": round(self.cross_shard_fraction(), 4),
            "fanout_calls": self.fanout_calls,
            "shard_loads": self.shard_loads,
            "reloads": self.reloads,
        }


class ShardRouter(BatchMixin):
    """A :class:`DistanceOracle` over a sharded on-disk label layout.

    Parameters
    ----------
    path:
        The index path, its ``<path>.shards/`` layout directory, or the
        ``manifest.json`` inside it.
    mmap:
        Map each shard's label buffers read-only from ``.npy`` sidecars
        (the default; co-located workers share pages) instead of copying
        them into the process.
    preload:
        Load every shard eagerly instead of on first touch.
    """

    def __init__(
        self, path: Union[str, Path], mmap: bool = True, preload: bool = False
    ) -> None:
        components, manifest, shard_dir = load_sharded_components(path)
        self.path = shard_dir
        self._mmap = mmap
        self.stats = RouterStats()
        # guards lazy shard loading and the stats counters: the router is
        # documented to sit under the thread-based CoalescingServer, so
        # concurrent distances() calls must not double-load a shard or
        # lose counter increments (the numpy reads themselves are safe)
        self._lock = threading.Lock()
        # hot-swap coordination: queries register in _active between
        # _begin_query/_end_query; reload_generation raises _reloading,
        # waits on _swap for the in-flight count to drain, flips every
        # generation-dependent field, then wakes the queries queued behind
        # the swap - no request is ever dropped, only briefly delayed
        self._swap = threading.Condition(self._lock)
        self._active = 0
        self._reloading = False
        self._closed = False
        self._adopt(components, manifest)
        if preload:
            for shard_id in range(self.num_shards):
                self._shard(shard_id)

    def _adopt(self, components: dict, manifest: dict) -> None:
        """Point the router at one generation's components (caller holds the
        lock when swapping a live router; construction runs unlocked)."""
        self.manifest = manifest
        self.graph = components["graph"]
        self.parameters = components["parameters"]
        self.contraction = components["contraction"]
        self.hierarchy = components["hierarchy"]
        self.construction_seconds = components["construction_seconds"]
        self.resolver = BatchResolver(self.contraction, self.hierarchy)
        #: how label rows are ordered on disk: "identity" (classic core-id
        #: ranges) or "hierarchy" (DFS subtree ranges)
        self.vertex_order: str = manifest.get("vertex_order", "identity")
        if self.vertex_order == "hierarchy":
            # storage position of each core vertex; the base archive of a
            # hierarchy layout persists the DFS walk, so these are exactly
            # the positions the labels were reordered by at save time
            self._position: Optional[np.ndarray] = np.asarray(
                self.hierarchy.subtree_ranges(), dtype=np.int64
            )
        else:
            self._position = None
        #: shard edge sequence over storage positions ([0, b1, ..., m])
        self._edges = np.asarray(manifest["boundaries"], dtype=np.int64)
        self._shards: List[Optional[FlatLabelling]] = [None] * (len(self._edges) - 1)

    # ------------------------------------------------------------------ #
    # shard management
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Number of shards in the layout."""
        return len(self._shards)

    @property
    def loaded_shard_ids(self) -> List[int]:
        """Ids of the shards this router has loaded so far."""
        return [k for k, shard in enumerate(self._shards) if shard is not None]

    @property
    def generation(self) -> int:
        """Generation of the layout this router is currently serving."""
        return int(self.manifest.get("generation", 0))

    def reload_generation(self) -> int:
        """Hot-swap onto the generation currently on disk; returns it.

        Reads the new manifest and base components *outside* the router
        lock (the slow part), then drains in-flight batches off the old
        mmaps and flips every generation-dependent field - graph,
        contraction, hierarchy, resolver, boundaries, shard table -
        atomically behind the lock.  Queries arriving during the flip
        queue behind it instead of erroring; the old shard mappings are
        closed only after the swap, so the drained batches finished on a
        consistent snapshot.  Concurrent reloads serialise; a reload that
        lost the race to a newer generation is a no-op.
        """
        components, manifest, _ = load_sharded_components(self.path)
        with self._swap:
            while self._reloading:
                self._swap.wait()
            if self._closed:
                raise RuntimeError(f"ShardRouter over {self.path} is closed")
            if int(manifest.get("generation", 0)) < self.generation:
                return self.generation  # raced with a newer reload
            old_shards: List[Optional[FlatLabelling]] = []
            self._reloading = True
            try:
                while self._active > 0:  # drain in-flight batches
                    self._swap.wait()
                old_shards = self._shards
                self._adopt(components, manifest)
                self.stats.reloads += 1
            finally:
                self._reloading = False
                self._swap.notify_all()
        for shard in old_shards:
            if shard is not None:
                shard.close()
        return self.generation

    def _begin_query(self) -> None:
        with self._swap:
            while self._reloading:
                self._swap.wait()
            if self._closed:
                raise RuntimeError(f"ShardRouter over {self.path} is closed")
            self._active += 1

    def _end_query(self) -> None:
        with self._swap:
            self._active -= 1
            if self._active == 0:
                self._swap.notify_all()

    def close(self) -> None:
        """Release every loaded shard, closing mmap handles deterministically.

        Fleet workers recycle routers on restart; waiting for GC to drop
        the last reference keeps label files mapped (and on some platforms
        their descriptors open) for an unbounded time.  After ``close``
        the router raises ``RuntimeError`` on any further query.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            shards, self._shards = self._shards, [None] * self.num_shards
        for shard in shards:
            if shard is not None:
                shard.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _shard(self, shard_id: int) -> FlatLabelling:
        if self._closed:
            raise RuntimeError(f"ShardRouter over {self.path} is closed")
        shard = self._shards[shard_id]
        if shard is None:
            with self._lock:
                shard = self._shards[shard_id]
                if shard is not None:  # lost the race; another thread loaded it
                    return shard
                # the router's local-id arithmetic and label snapshot are
                # pinned to the manifest read at construction (or the last
                # reload); if the layout was re-sharded or a new generation
                # was written since, lazily loading a rewritten shard would
                # silently mix two generations - fail loudly instead
                _, manifest = load_manifest(self.path)
                if manifest["boundaries"] != self.manifest["boundaries"]:
                    raise RuntimeError(
                        f"{self.path} was re-sharded (boundaries "
                        f"{manifest['boundaries']} != {self.manifest['boundaries']}) "
                        f"since this router opened; re-open the ShardRouter"
                    )
                if int(manifest.get("generation", 0)) != self.generation:
                    raise RuntimeError(
                        f"{self.path} moved to generation "
                        f"{manifest.get('generation', 0)} since this router "
                        f"adopted generation {self.generation}; call "
                        f"reload_generation() to hot-swap"
                    )
                shard = load_shard(self.path, shard_id, mmap=self._mmap)
                self._shards[shard_id] = shard
                self.stats.shard_loads += 1
        return shard

    def positions_of(self, core_vertices: np.ndarray) -> np.ndarray:
        """Storage position of each core vertex (identity unless the layout
        stores labels in hierarchy DFS order)."""
        if self._position is None:
            return core_vertices
        return self._position[core_vertices]

    def _shards_of_positions(self, positions: np.ndarray) -> np.ndarray:
        """Shard id owning each storage position (single home of the
        ``side='right'`` boundary convention)."""
        return np.searchsorted(self._edges, positions, side="right") - 1

    def shard_of(self, core_vertices: np.ndarray) -> np.ndarray:
        """Shard id owning each core vertex (vectorised range lookup)."""
        return self._shards_of_positions(self.positions_of(core_vertices))

    # ------------------------------------------------------------------ #
    # protocol metadata
    # ------------------------------------------------------------------ #
    @property
    def supports_batch(self) -> bool:
        """The fan-out performs the engine's vectorised min-plus per shard."""
        return True

    @property
    def index_size_bytes(self) -> int:
        """Total label bytes across shards plus contracted-vertex records.

        Computed from the manifest's per-shard sizes, so it matches the
        monolithic index without loading a single shard.
        """
        total = 0
        for shard in self.manifest["shards"]:
            total += (
                int(shard["num_entries"]) * 8
                + 2 * int(shard["num_levels"])
                + 8 * int(shard["num_vertices"])
            )
        return total + self.contraction.num_contracted * 16

    def label_size_bytes(self) -> int:
        """Alias for :attr:`index_size_bytes` (harness compatibility)."""
        return self.index_size_bytes

    # ------------------------------------------------------------------ #
    # scalar path
    # ------------------------------------------------------------------ #
    def distance(self, s: int, t: int) -> float:
        """Exact distance between ``s`` and ``t`` (original ids)."""
        self._begin_query()
        try:
            n = self.contraction.num_original
            check_vertex(s, n, "s")
            check_vertex(t, n, "t")
            resolved, core_s, core_t, offset = self.contraction.resolve_query(s, t)
            if resolved is not None:
                return resolved
            return offset + self._core_scalar(core_s, core_t)[0]
        finally:
            self._end_query()

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus the number of label entries inspected."""
        self._begin_query()
        try:
            n = self.contraction.num_original
            check_vertex(s, n, "s")
            check_vertex(t, n, "t")
            resolved, core_s, core_t, offset = self.contraction.resolve_query(s, t)
            if resolved is not None:
                return resolved, 0
            value, hubs = self._core_scalar(core_s, core_t)
            return offset + value, hubs
        finally:
            self._end_query()

    def _core_scalar(self, core_s: int, core_t: int) -> Tuple[float, int]:
        """Min-plus over the (possibly distinct) shards of two core vertices."""
        depth = self.hierarchy.lca_depth(core_s, core_t)
        return min_plus_prefix(
            self._level_list(core_s, depth), self._level_list(core_t, depth)
        )

    def _level_list(self, core_vertex: int, depth: int) -> List[float]:
        position = self.positions_of(np.asarray([core_vertex], dtype=np.int64))
        shard_id = int(self._shards_of_positions(position)[0])
        local = int(position[0]) - int(self._edges[shard_id])
        return self._shard(shard_id).level_array(local, depth)

    # ------------------------------------------------------------------ #
    # batch path
    # ------------------------------------------------------------------ #
    def distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Exact distances for a batch of ``(s, t)`` pairs, fanned out by
        the shard owning each source vertex and re-assembled in input
        order; bit-identical to the monolithic engine.
        """
        self._begin_query()
        try:
            pair_array = as_pair_array(pairs)
            if pair_array.size == 0:
                return np.empty(0, dtype=np.float64)
            s = np.ascontiguousarray(pair_array[:, 0])
            t = np.ascontiguousarray(pair_array[:, 1])
            self.resolver.validate_vertices(s, t)
            out, core_mask, cs, ct, offsets = self.resolver.resolve(s, t)
            with self._lock:
                self.stats.batches += 1
            if core_mask.any():
                out[core_mask] = offsets + self._core_distances(cs, ct)
            return out
        finally:
            self._end_query()

    def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Distances from ``s`` to every vertex of ``targets`` (one source
        shard, targets gathered per shard).

        Overrides the mixin only to range-check the source up front (like
        the engine does), even when ``targets`` is empty.
        """
        if isinstance(s, np.integer):
            s = int(s)
        check_vertex(s, self.contraction.num_original, "s")
        return self.distances(pairs_from_source(s, targets))

    # many_to_many: inherited from BatchMixin, which builds the pair grid
    # and evaluates it through the routed ``distances`` above.

    # ------------------------------------------------------------------ #
    def _core_distances(self, cs: np.ndarray, ct: np.ndarray) -> np.ndarray:
        """Route core pairs to per-source-shard fan-out calls."""
        result = np.full(len(cs), INF, dtype=np.float64)
        equal = cs == ct
        result[equal] = 0.0
        work = ~equal
        if not work.any():
            with self._lock:
                self.stats.core_pairs += len(cs)
            return result

        depth = self.resolver.lca_depths(cs, ct)
        # all storage arithmetic below runs on positions (== core ids for
        # the identity layout); the LCA above always uses core ids
        ps = self.positions_of(cs)
        pt = self.positions_of(ct)
        source_shard = self._shards_of_positions(ps)
        target_shard = self._shards_of_positions(pt)
        fanout_calls = 0
        pairs_per_shard: Dict[int, int] = {}
        for shard_id in np.unique(source_shard[work]).tolist():
            mask = work & (source_shard == shard_id)
            result[mask] = self._fanout(
                int(shard_id), ps[mask], pt[mask], target_shard[mask], depth[mask]
            )
            fanout_calls += 1
            pairs_per_shard[int(shard_id)] = int(mask.sum())
        with self._lock:
            stats = self.stats
            stats.core_pairs += len(cs)
            stats.cross_shard_pairs += int((source_shard[work] != target_shard[work]).sum())
            stats.fanout_calls += fanout_calls
            for shard_id, count in pairs_per_shard.items():
                stats.pairs_per_shard[shard_id] = (
                    stats.pairs_per_shard.get(shard_id, 0) + count
                )
        return result

    def _fanout(
        self,
        source_shard_id: int,
        ps: np.ndarray,
        pt: np.ndarray,
        target_shard: np.ndarray,
        depth: np.ndarray,
    ) -> np.ndarray:
        """One vectorised min-plus call for the pairs of one source shard.

        ``ps`` / ``pt`` are storage positions (core ids under the identity
        layout, DFS positions under the hierarchy layout).  The source
        side gathers from a single shard buffer; the target side is
        gathered per target shard (cross-shard pairs are the point of the
        router).  Performs exactly the engine's grouped gather +
        ``minimum.reduceat``, so results are bit-identical.
        """
        source = self._shard(source_shard_id)
        k_s = source.vertex_indptr[ps - self._edges[source_shard_id]] + depth
        start_s = source.level_indptr[k_s]
        len_s = source.level_indptr[k_s + 1] - start_s

        start_t = np.empty(len(pt), dtype=np.int64)
        len_t = np.empty(len(pt), dtype=np.int64)
        for shard_id in np.unique(target_shard).tolist():
            shard = self._shard(int(shard_id))
            mask = target_shard == shard_id
            k_t = shard.vertex_indptr[pt[mask] - self._edges[shard_id]] + depth[mask]
            start_t[mask] = shard.level_indptr[k_t]
            len_t[mask] = shard.level_indptr[k_t + 1] - start_t[mask]

        lengths = np.minimum(len_s, len_t)
        result = np.full(len(ps), INF, dtype=np.float64)
        total = int(lengths.sum())
        if total == 0:
            return result

        group_starts = np.cumsum(lengths) - lengths
        within = np.arange(total, dtype=np.int64) - np.repeat(group_starts, lengths)
        source_values = source.values[np.repeat(start_s, lengths) + within]
        idx_t = np.repeat(start_t, lengths) + within
        target_values = np.empty(total, dtype=np.float64)
        element_shard = np.repeat(target_shard, lengths)
        for shard_id in np.unique(target_shard).tolist():
            selection = element_shard == shard_id
            if selection.any():
                target_values[selection] = self._shard(int(shard_id)).values[
                    idx_t[selection]
                ]
        sums = source_values + target_values

        nonempty = lengths > 0
        result[nonempty] = np.minimum.reduceat(sums, group_starts[nonempty])
        return result

    def __repr__(self) -> str:
        return (
            f"ShardRouter(path={str(self.path)!r}, num_shards={self.num_shards}, "
            f"loaded={len(self.loaded_shard_ids)})"
        )
