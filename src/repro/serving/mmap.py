"""Memory-mapped index loading for multi-process serving.

A fleet of serving workers on one machine should not each hold a private
copy of a multi-gigabyte labelling.  The versioned ``.npz`` archive
already stores the labels as flat typed buffers; this module loads them
with ``numpy``'s ``mmap_mode`` so every worker maps the same bytes and
the kernel page cache keeps one physical copy.

Numpy cannot map members of a zip container directly, so the label
buffers are extracted once into ``<path>.mmap/<name>.npy`` sidecar files
(refreshed automatically when the archive is newer) and mapped read-only
from there; see :func:`repro.core.persistence.mmap_label_arrays`.  The
remaining (small) archive members - graph, contraction, hierarchy - are
loaded normally.  Distances from an mmap-loaded index are bit-identical
to an in-memory load: the arrays hold the same bytes and the engine
performs the same operations on them.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, Union

import numpy as np

from repro.core.persistence import load_index, mmap_label_arrays

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.index import HC2LIndex

__all__ = ["load_index_mmap", "shared_label_arrays"]


def load_index_mmap(path: Union[str, Path]) -> "HC2LIndex":
    """Load a saved index with memory-mapped label buffers.

    Equivalent to ``HC2LIndex.load(path, mmap_labels=True)``; the returned
    index answers every query bit-identically to an in-memory load while
    sharing the label bytes with every other process that mapped them.
    """
    return load_index(path, mmap_labels=True)


def shared_label_arrays(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """The raw memory-mapped label buffers of a saved index.

    Returns the three flat label buffers (``label_values``,
    ``label_level_indptr``, ``label_vertex_indptr``) as **read-only**
    ``np.memmap`` arrays (``mmap_mode='r'``): writing through them raises
    rather than silently mutating pages shared with every other process
    mapping the same sidecars.  :class:`~repro.core.flat.FlatLabelling`
    enforces the same contract - constructing it from a *writable* memory
    map is rejected, so no shard can ever scribble on shared label pages.

    ``path`` may be a single index archive or one shard archive of a
    sharded layout (both store the same member names); exposed for shard
    routers and diagnostics that want the buffers without reconstructing
    the full index.
    """
    return mmap_label_arrays(path)
