"""Serving-side building blocks over the :class:`DistanceOracle` protocol.

The ROADMAP's north star is production-scale serving; this package holds
the pieces that turn a built index into a query service:

* :class:`CachingOracle` - LRU caches over ``(s, t)`` pairs and hot
  ``one_to_many`` rows, with hit-rate accounting for skewed workloads.
* :class:`CoalescingServer` - gathers concurrent scalar requests and
  answers them with one vectorised ``distances`` call.
* :func:`load_index_mmap` - memory-mapped label loading so multiple
  serving processes share one physical copy of a large labelling.
* :class:`ShardRouter` - a :class:`DistanceOracle` over the sharded
  on-disk layout (``repro shard``): shards mmap-load lazily, batches are
  split by the shard owning each source vertex and re-assembled in input
  order.
* :mod:`repro.serving.fleet` - the multi-process deployment shape: an
  asyncio :class:`FleetServer` front door (TCP + in-process async +
  the synchronous :class:`FleetOracle` facade) placing batches onto a
  pool of shard-owning worker processes by their majority shard.

All layers compose: a typical fleet shards the index once, and each
worker opens a router (mapping only the shards it is routed), wraps it in
a cache, and fronts it with a coalescer.  Every layer preserves
bit-identical answers - the conformance and serving test suites assert
``==`` against the bare engine, not ``approx``.
"""

from repro.serving.cache import CacheStats, CachingOracle
from repro.serving.coalesce import CoalescingServer
from repro.serving.fleet import (
    BatchPlacer,
    FleetClient,
    FleetOracle,
    FleetServer,
    FleetStats,
    WorkerPool,
)
from repro.serving.mmap import load_index_mmap, shared_label_arrays
from repro.serving.shards import RouterStats, ShardRouter
from repro.serving.shm_cache import SharedPairCache

__all__ = [
    "BatchPlacer",
    "CacheStats",
    "CachingOracle",
    "CoalescingServer",
    "FleetClient",
    "FleetOracle",
    "FleetServer",
    "FleetStats",
    "RouterStats",
    "ShardRouter",
    "SharedPairCache",
    "WorkerPool",
    "load_index_mmap",
    "shared_label_arrays",
]
