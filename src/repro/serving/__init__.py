"""Serving-side building blocks over the :class:`DistanceOracle` protocol.

The ROADMAP's north star is production-scale serving; this package holds
the pieces that turn a built index into a query service:

* :class:`CachingOracle` - LRU caches over ``(s, t)`` pairs and hot
  ``one_to_many`` rows, with hit-rate accounting for skewed workloads.
* :class:`CoalescingServer` - gathers concurrent scalar requests and
  answers them with one vectorised ``distances`` call.
* :func:`load_index_mmap` - memory-mapped label loading so multiple
  serving processes share one physical copy of a large labelling.

All three compose: a typical deployment maps the labels once per machine,
wraps the index in a cache, and fronts it with a coalescer per worker.
Every layer preserves bit-identical answers - the conformance and serving
test suites assert ``==`` against the bare engine, not ``approx``.
"""

from repro.serving.cache import CacheStats, CachingOracle
from repro.serving.coalesce import CoalescingServer
from repro.serving.mmap import load_index_mmap, shared_label_arrays

__all__ = [
    "CacheStats",
    "CachingOracle",
    "CoalescingServer",
    "load_index_mmap",
    "shared_label_arrays",
]
