"""Shared-memory cross-worker pair cache with per-slot seqlocks.

The fleet (:mod:`repro.serving.fleet`) runs one router per worker
process, so before this module each worker paid the hub-label min-plus
for a hot pair once *per worker*.  :class:`SharedPairCache` pools those
hits: one fixed-capacity open-addressed table of ``(u, v) -> distance``
slots in a ``multiprocessing.shared_memory`` segment, created by the
front door and attached by every worker.

Concurrency model - readers never block, writers never lock:

* every slot carries a **sequence counter** (seqlock).  A writer bumps
  it to odd, writes the fields, bumps it back to even; a reader snapshots
  the counter before and after the field reads and discards the slot if
  the counter changed or is odd (write in progress / writer died
  mid-write).  A worker killed mid-write therefore leaves an odd
  counter behind: readers skip the slot forever (a miss, never garbage,
  never a hang) and the next writer reclaims it.
* two *concurrent* writers on one slot can interleave in ways a bare
  seqlock cannot detect (both end on the same even counter with mixed
  fields), so every slot also stores a **checksum** over
  ``(u, v, distance-bits)``; a reader validates it after a stable
  snapshot and treats a mismatch as a miss.  Distances are
  deterministic for a fixed index, so two writers racing on the *same*
  key always write identical bytes - the checksum only has to catch
  cross-key mixes.

Keys are normalised to ``(min(u, v), max(u, v))`` before hashing - valid
for the symmetric oracles this repo serves, and the same contract
:class:`repro.serving.cache.CachingOracle` already documents.

Per-worker counters live in the segment header (one row of
``hits / misses / fills / evictions`` per worker, single-writer so no
atomics needed); the parent sums them for the aggregate
``FleetStats`` section without a round trip to any worker.

Lifecycle note: Python 3.11's ``SharedMemory`` has no ``track=False``.
Fleet workers are ``spawn`` children, so they share the parent's
resource-tracker process and their attach-time registrations simply
de-duplicate against the owner's - the owner's ``unlink`` settles the
one shared entry.  Attaching from an *unrelated* process (its own
tracker) is unsupported on 3.11: that tracker would unlink the segment
out from under the fleet when the foreign process exits.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["SharedPairCache", "SLOT_DTYPE", "PROBE_WINDOW"]

#: one cache slot: seqlock counter, normalised key, value, checksum
SLOT_DTYPE = np.dtype(
    [
        ("seq", "<u8"),
        ("u", "<i8"),
        ("v", "<i8"),
        ("dist", "<f8"),
        ("check", "<u8"),
    ]
)

#: linear-probe window; a full window evicts (bounded work per lookup)
PROBE_WINDOW = 8

_HEADER_DTYPE = np.dtype("<u8")
_HEADER_WORDS = 5  # magic, version, capacity, counter_rows, epoch
_COUNTER_WORDS = 4  # hits, misses, fills, evictions
_MAGIC = 0x48433243_50414952  # "HC2C PAIR"
#: version 2 added the epoch header word (generation hot-swap: bumping it
#: invalidates every published entry at once, see :meth:`advance_epoch`)
_VERSION = 2

_U64 = np.uint64
_ONE = _U64(1)


def _mix(z: np.ndarray) -> np.ndarray:
    """splitmix64 finaliser over a uint64 array (vectorised, wrapping)."""
    z = z ^ (z >> _U64(30))
    z = z * _U64(0xBF58476D1CE4E5B9)
    z = z ^ (z >> _U64(27))
    z = z * _U64(0x94D049BB133111EB)
    return z ^ (z >> _U64(31))


def _pair_hash(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Hash normalised key columns into uint64 slot indices."""
    a = u.astype(_U64) + _U64(0x9E3779B97F4A7C15)
    b = v.astype(_U64) + _U64(0xC2B2AE3D27D4EB4F)
    return _mix(a * _U64(0xFF51AFD7ED558CCD) ^ _mix(b))


def _epoch_salt(epoch: int) -> np.uint64:
    """Mix the cache epoch into a checksum salt.

    Salting the per-slot checksum with the epoch invalidates every
    published entry the instant the epoch advances: old-epoch slots fail
    the checksum and read as misses, with no need to zero the table.
    """
    return _mix(np.asarray([epoch], dtype=_U64) + _U64(0x9E3779B97F4A7C15))[0]


def _slot_checksum(
    u: np.ndarray, v: np.ndarray, dist: np.ndarray, salt: np.uint64 = _U64(0)
) -> np.ndarray:
    """Checksum binding key, value bits and cache epoch within one slot."""
    bits = np.ascontiguousarray(dist, dtype="<f8").view(_U64)
    return _mix(_pair_hash(u, v) ^ bits ^ salt)


def _validate_count(name: str, value, minimum: int = 1) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


class SharedPairCache:
    """Fixed-capacity shared ``(u, v) -> distance`` table (see module doc).

    Construct through :meth:`create` (owner: allocates + unlinks) or
    :meth:`attach` (worker: opens an existing segment by name).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        *,
        owner: bool,
        counter_row: Optional[int],
    ) -> None:
        self._shm = shm
        self._owner = owner
        # read the header through a scoped view: a still-referenced numpy
        # view would make shm.close() on the error paths raise BufferError
        header = np.frombuffer(shm.buf, dtype=_HEADER_DTYPE, count=_HEADER_WORDS)
        magic, version, capacity, counter_rows = (int(x) for x in header[:4])
        del header
        if magic != _MAGIC:
            shm.close()
            raise ValueError(
                f"shared memory segment {shm.name!r} is not a SharedPairCache"
            )
        if version != _VERSION:
            shm.close()
            raise ValueError(f"unsupported SharedPairCache version {version}")
        self._capacity = capacity
        self._counter_rows = counter_rows
        if counter_row is not None:
            try:
                counter_row = _validate_count("counter_row", counter_row, minimum=0)
                if counter_row >= self._counter_rows:
                    raise ValueError(
                        f"counter_row {counter_row} out of range for "
                        f"{self._counter_rows} counter rows"
                    )
            except ValueError:
                shm.close()  # every rejection path must release the mapping
                raise
        self._counter_row = counter_row
        # persistent single-word view of the epoch header slot; written
        # only by advance_epoch (front door, while the fleet is drained)
        self._epoch_view = np.frombuffer(
            shm.buf, dtype=_HEADER_DTYPE, count=1, offset=4 * _HEADER_DTYPE.itemsize
        )
        offset = _HEADER_WORDS * _HEADER_DTYPE.itemsize
        self._counters = np.frombuffer(
            shm.buf,
            dtype=_HEADER_DTYPE,
            count=self._counter_rows * _COUNTER_WORDS,
            offset=offset,
        ).reshape(self._counter_rows, _COUNTER_WORDS)
        offset += self._counter_rows * _COUNTER_WORDS * _HEADER_DTYPE.itemsize
        self._slots = np.frombuffer(
            shm.buf, dtype=SLOT_DTYPE, count=self._capacity, offset=offset
        )
        self._closed = False

    # ----------------------------------------------------------------- #
    # lifecycle
    # ----------------------------------------------------------------- #
    @classmethod
    def create(cls, slots: int, counter_rows: int = 1) -> "SharedPairCache":
        """Allocate a fresh segment with ``slots`` capacity.

        ``counter_rows`` is the number of independent stat rows (one per
        attaching worker).  The creator owns the segment: its
        :meth:`close` unlinks the backing file.
        """
        slots = _validate_count("slots", slots)
        counter_rows = _validate_count("counter_rows", counter_rows)
        size = (
            (_HEADER_WORDS + counter_rows * _COUNTER_WORDS) * _HEADER_DTYPE.itemsize
            + slots * SLOT_DTYPE.itemsize
        )
        shm = shared_memory.SharedMemory(create=True, size=size)
        header = np.frombuffer(shm.buf, dtype=_HEADER_DTYPE, count=_HEADER_WORDS)
        header[0] = _MAGIC
        header[1] = _VERSION
        header[2] = slots
        header[3] = counter_rows
        del header
        return cls(shm, owner=True, counter_row=None)

    @classmethod
    def attach(cls, name: str, counter_row: Optional[int] = None) -> "SharedPairCache":
        """Open an existing segment by name (worker side).

        ``counter_row`` selects the stat row this process increments;
        pass ``None`` for a read-only / non-counting attachment.
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"shared cache name must be a non-empty string, got {name!r}")
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, owner=False, counter_row=counter_row)

    @property
    def name(self) -> str:
        """Segment name to hand to :meth:`attach` in other processes."""
        return self._shm.name

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def counter_rows(self) -> int:
        return self._counter_rows

    @property
    def epoch(self) -> int:
        """Current cache epoch (bumped on every index generation swap)."""
        self._check_open()
        return int(self._epoch_view[0])

    def advance_epoch(self) -> int:
        """Invalidate every cached entry by bumping the epoch; returns it.

        Entries published under earlier epochs fail their (epoch-salted)
        checksum and read as misses from then on; their slots are
        reclaimed by the next writer that probes them.  Call from the
        segment owner while the fleet is drained (the front door does this
        during a generation swap) so no lookup races the bump.
        """
        self._check_open()
        self._epoch_view[0] += _ONE
        return int(self._epoch_view[0])

    def _release_views(self) -> None:
        # numpy views keep the shm buffer exported; drop them before close()
        self._header = None
        self._counters = None
        self._slots = None
        self._epoch_view = None

    def close(self) -> None:
        """Detach; the owning side also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        self._release_views()
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedPairCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("SharedPairCache is closed")

    # ----------------------------------------------------------------- #
    # lookups
    # ----------------------------------------------------------------- #
    @staticmethod
    def _normalise(pair_array: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        pairs = np.asarray(pair_array, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"expected an (N, 2) pair array, got shape {pairs.shape}")
        return np.minimum(pairs[:, 0], pairs[:, 1]), np.maximum(pairs[:, 0], pairs[:, 1])

    def _probe_indices(self, h: np.ndarray) -> np.ndarray:
        offsets = np.arange(PROBE_WINDOW, dtype=_U64)
        return ((h[:, None] + offsets[None, :]) % _U64(self._capacity)).astype(np.int64)

    def get_many(self, pair_array) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised lookup of an ``(N, 2)`` batch.

        Returns ``(values, found)``: ``values[i]`` is valid only where
        ``found[i]``.  A lookup is wait-free - unstable slots (odd or
        moving seqlock counters, checksum mismatches) simply count as
        misses after a few whole-batch retries.
        """
        self._check_open()
        u, v = self._normalise(pair_array)
        n = len(u)
        values = np.zeros(n, dtype=np.float64)
        found = np.zeros(n, dtype=bool)
        if n == 0 or self._capacity == 0:
            return values, found
        idx = self._probe_indices(_pair_hash(u, v))
        salt = _epoch_salt(int(self._epoch_view[0]))
        slots = self._slots
        for _ in range(4):
            seq_before = slots["seq"][idx]
            slot_u = slots["u"][idx]
            slot_v = slots["v"][idx]
            slot_dist = slots["dist"][idx]
            slot_check = slots["check"][idx]
            seq_after = slots["seq"][idx]
            stable = (
                (seq_before == seq_after)
                & ((seq_before & _ONE) == _U64(0))
                & (seq_before != _U64(0))
            )
            match = (
                stable
                & (slot_u == u[:, None])
                & (slot_v == v[:, None])
                & (slot_check == _slot_checksum(slot_u, slot_v, slot_dist, salt))
            )
            hit = match.any(axis=1)
            first = np.argmax(match, axis=1)
            newly = hit & ~found
            if newly.any():
                rows = np.nonzero(newly)[0]
                values[rows] = slot_dist[rows, first[rows]]
                found[rows] = True
            # only torn reads warrant a retry; a plain absence is final
            torn = (seq_before != seq_after) | ((seq_before & _ONE) != _U64(0))
            if not (torn.any(axis=1) & ~found).any():
                break
        if self._counter_row is not None:
            hits = int(found.sum())
            row = self._counters[self._counter_row]
            row[0] += _U64(hits)
            row[1] += _U64(n - hits)
        return values, found

    def get(self, u: int, v: int) -> Optional[float]:
        """Scalar lookup; ``None`` on a miss."""
        values, found = self.get_many(np.array([[u, v]], dtype=np.int64))
        return float(values[0]) if bool(found[0]) else None

    # ----------------------------------------------------------------- #
    # publishes
    # ----------------------------------------------------------------- #
    def put_many(self, pair_array, values) -> None:
        """Publish a batch of ``(u, v) -> distance`` entries.

        Slot choice per key: an existing even slot for the same key wins
        (already published - skip), else the first empty slot in the
        probe window, else the first crashed slot (stuck odd counter -
        reclaimed here), else evict the slot at the window head.
        """
        self._check_open()
        u, v = self._normalise(pair_array)
        dist = np.asarray(values, dtype=np.float64).reshape(-1)
        if len(dist) != len(u):
            raise ValueError(
                f"got {len(u)} pairs but {len(dist)} values"
            )
        if len(u) == 0:
            return
        idx = self._probe_indices(_pair_hash(u, v))
        checks = _slot_checksum(u, v, dist, _epoch_salt(int(self._epoch_view[0])))
        slots = self._slots
        fills = 0
        evictions = 0
        for i in range(len(u)):
            ui = np.int64(u[i])
            vi = np.int64(v[i])
            target = -1
            stuck = -1
            duplicate = False
            for k in idx[i]:
                seq = slots["seq"][k]
                if seq == _U64(0):
                    target = k
                    break
                if seq & _ONE:
                    if stuck < 0:
                        stuck = k
                    continue
                if slots["u"][k] == ui and slots["v"][k] == vi:
                    if slots["dist"][k] == dist[i] and slots["check"][k] == checks[i]:
                        duplicate = True
                    else:
                        # a cross-key writer race left mixed fields that
                        # happen to match this key: readers reject the
                        # slot by checksum, so rewrite it instead of
                        # skipping the 'duplicate' forever
                        target = k
                    break
            if duplicate:
                continue
            if target < 0:
                if stuck >= 0:
                    target = stuck
                else:
                    target = idx[i][0]
                    evictions += 1
            seq = slots["seq"][target]
            begin = seq + (_U64(2) if seq & _ONE else _ONE)
            slots["seq"][target] = begin  # odd: readers back off
            slots["u"][target] = ui
            slots["v"][target] = vi
            slots["dist"][target] = dist[i]
            slots["check"][target] = checks[i]
            slots["seq"][target] = begin + _ONE  # even: published
            fills += 1
        if self._counter_row is not None:
            row = self._counters[self._counter_row]
            row[2] += _U64(fills)
            row[3] += _U64(evictions)

    def put(self, u: int, v: int, value: float) -> None:
        """Scalar publish."""
        self.put_many(
            np.array([[u, v]], dtype=np.int64), np.array([value], dtype=np.float64)
        )

    # ----------------------------------------------------------------- #
    # cache-through helper
    # ----------------------------------------------------------------- #
    def cached_distances(self, oracle, pair_array) -> np.ndarray:
        """Answer a pair batch through the cache.

        Hits come straight from shared memory; misses go to
        ``oracle.distances`` as one deduplicated batch of normalised
        keys and are published for every other worker.  Bit-identical to
        ``oracle.distances(pair_array)`` for symmetric oracles.
        """
        pairs = np.asarray(pair_array, dtype=np.int64).reshape(-1, 2)
        values, found = self.get_many(pairs)
        if bool(found.all()):
            return values
        miss_rows = np.nonzero(~found)[0]
        u, v = self._normalise(pairs[miss_rows])
        keys = np.stack([u, v], axis=1)
        unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
        miss_values = np.asarray(oracle.distances(unique_keys), dtype=np.float64)
        values[miss_rows] = miss_values[inverse.reshape(-1)]
        self.put_many(unique_keys, miss_values)
        return values

    # ----------------------------------------------------------------- #
    # stats
    # ----------------------------------------------------------------- #
    def counter_row_dict(self, row: int) -> Dict[str, float]:
        """Stats for one counter row (one worker)."""
        self._check_open()
        row = _validate_count("row", row, minimum=0)
        if row >= self._counter_rows:
            raise ValueError(f"row {row} out of range for {self._counter_rows} rows")
        hits, misses, fills, evictions = (int(x) for x in self._counters[row])
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "fills": fills,
            "evictions": evictions,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        }

    def counters_dict(self) -> Dict[str, float]:
        """Aggregate stats summed over every counter row."""
        self._check_open()
        totals = self._counters.sum(axis=0)
        hits, misses, fills, evictions = (int(x) for x in totals)
        lookups = hits + misses
        return {
            "slots": self._capacity,
            "hits": hits,
            "misses": misses,
            "fills": fills,
            "evictions": evictions,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        }

    def reset_counters(self) -> None:
        """Zero every counter row (call while the fleet is idle)."""
        self._check_open()
        self._counters[:] = 0
