"""LRU result caching in front of any :class:`DistanceOracle`.

Road-network query traffic is heavily skewed: a small set of popular
origins/destinations (airports, stations, city centres) dominates, which
the paper's motivating applications (POI recommendation, ride-hailing
dispatch) amplify.  :class:`CachingOracle` exploits that skew with two
LRU caches layered over an inner oracle:

* a **pair cache** over normalised ``(s, t)`` keys, consulted by
  ``distance`` and ``distances`` (misses of a batch are evaluated in one
  vectorised inner call), and
* a **row cache** over ``one_to_many`` results keyed by
  ``(source, targets)``, which also backs ``many_to_many``, and
* a **matrix cache** over whole ``many_to_many`` results keyed by
  ``(sources, targets)`` - repeated dispatch grids (the ride-hailing
  pattern: the same hot zone queried every tick) skip even the row
  assembly, and duplicate sources *within* one request are assembled
  once.

The wrapper is itself a :class:`DistanceOracle`, so it can be stacked
under the coalescing server or swapped into the experiment harness.
Cached answers are bit-identical to the inner oracle's: values are stored
as Python floats gathered from the inner result arrays, and the
``(min, max)`` key normalisation is safe because every oracle here is
symmetric (undirected graphs; the scalar and batch paths combine the two
label halves with commutative float additions).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.oracle import DistanceOracle, as_pair_array, as_vertex_ids

PairKey = Tuple[int, int]
RowKey = Tuple[int, Tuple[int, ...]]
MatrixKey = Tuple[Tuple[int, ...], Tuple[int, ...]]


@dataclass
class CacheStats:
    """Hit/miss accounting for a :class:`CachingOracle`."""

    pair_hits: int = 0
    pair_misses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    matrix_hits: int = 0
    matrix_misses: int = 0

    @property
    def requests(self) -> int:
        """Total lookups across all three caches."""
        return (
            self.pair_hits
            + self.pair_misses
            + self.row_hits
            + self.row_misses
            + self.matrix_hits
            + self.matrix_misses
        )

    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when idle)."""
        total = self.requests
        if total == 0:
            return 0.0
        return (self.pair_hits + self.row_hits + self.matrix_hits) / total

    def as_dict(self) -> Dict[str, float]:
        """Flatten for benchmark/report rows."""
        return {
            "pair_hits": self.pair_hits,
            "pair_misses": self.pair_misses,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "matrix_hits": self.matrix_hits,
            "matrix_misses": self.matrix_misses,
            "hit_rate": self.hit_rate(),
        }


class CachingOracle:
    """An LRU-caching :class:`DistanceOracle` wrapper.

    Parameters
    ----------
    oracle:
        The inner oracle answering cache misses.  It must be *immutable
        while cached*: the cache has no way to observe label changes, so
        wrapping a mutable oracle (e.g. ``DynamicHC2LIndex``) requires
        calling :meth:`clear` after every applied update - otherwise the
        cache keeps serving pre-update distances.
    max_pairs:
        Capacity of the ``(s, t)`` pair cache (entries).
    max_rows:
        Capacity of the ``one_to_many`` row cache (rows).
    max_matrices:
        Capacity of the ``many_to_many`` matrix cache (matrices).
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        max_pairs: int = 65536,
        max_rows: int = 256,
        max_matrices: int = 64,
    ) -> None:
        if max_pairs < 1:
            raise ValueError(f"max_pairs must be >= 1, got {max_pairs}")
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        if max_matrices < 1:
            raise ValueError(f"max_matrices must be >= 1, got {max_matrices}")
        self.oracle = oracle
        self.max_pairs = max_pairs
        self.max_rows = max_rows
        self.max_matrices = max_matrices
        self.stats = CacheStats()
        self._pairs: "OrderedDict[PairKey, float]" = OrderedDict()
        self._rows: "OrderedDict[RowKey, np.ndarray]" = OrderedDict()
        self._matrices: "OrderedDict[MatrixKey, np.ndarray]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # protocol metadata
    # ------------------------------------------------------------------ #
    @property
    def construction_seconds(self) -> float:
        """Build time of the wrapped oracle."""
        return self.oracle.construction_seconds

    @property
    def supports_batch(self) -> bool:
        """Batch capability of the wrapped oracle."""
        return self.oracle.supports_batch

    @property
    def index_size_bytes(self) -> int:
        """Size of the wrapped index (cache overhead excluded)."""
        return self.oracle.index_size_bytes

    def label_size_bytes(self) -> int:
        """Size of the wrapped index, for harness compatibility."""
        return self.oracle.index_size_bytes

    # ------------------------------------------------------------------ #
    # cache plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(s: int, t: int) -> PairKey:
        # int(2.7) would alias a float query onto vertex 2's cache entry,
        # making it *succeed* on a warm cache where the inner oracle's
        # validation would raise on a cold one; reject before keying so
        # hit and miss behave the same
        if (
            not isinstance(s, (int, np.integer))
            or not isinstance(t, (int, np.integer))
            or isinstance(s, bool)
            or isinstance(t, bool)
        ):
            raise ValueError(f"vertex ids must be integers, got ({s!r}, {t!r})")
        s, t = int(s), int(t)
        # distance is symmetric for every oracle in this package
        return (s, t) if s <= t else (t, s)

    def _pair_lookup(self, key: PairKey) -> Optional[float]:
        value = self._pairs.get(key)
        if value is not None:
            self._pairs.move_to_end(key)
            self.stats.pair_hits += 1
            return value
        self.stats.pair_misses += 1
        return None

    def _pair_insert(self, key: PairKey, value: float) -> None:
        self._pairs[key] = value
        self._pairs.move_to_end(key)
        if len(self._pairs) > self.max_pairs:
            self._pairs.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached value (stats are preserved)."""
        self._pairs.clear()
        self._rows.clear()
        self._matrices.clear()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def distance(self, s: int, t: int) -> float:
        """Exact distance, served from the pair cache when possible."""
        key = self._key(s, t)
        cached = self._pair_lookup(key)
        if cached is not None:
            return cached
        value = float(self.oracle.distance(s, t))
        self._pair_insert(key, value)
        return value

    def distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Batched distances; cache misses go to the inner oracle in one call.

        Duplicate pairs *within* a batch are evaluated once and count as
        hits from the second occurrence on - skewed production traffic is
        full of such repeats, and the inner oracle should not see them.
        """
        pair_array = as_pair_array(pairs)
        out = np.empty(len(pair_array), dtype=np.float64)
        pending: "OrderedDict[PairKey, list]" = OrderedDict()
        for i, (s, t) in enumerate(pair_array.tolist()):
            key = self._key(s, t)
            cached = self._pairs.get(key)
            if cached is not None:
                self._pairs.move_to_end(key)
                self.stats.pair_hits += 1
                out[i] = cached
            elif key in pending:
                self.stats.pair_hits += 1  # coalesced with an in-batch miss
                pending[key].append(i)
            else:
                self.stats.pair_misses += 1
                pending[key] = [i]
        if pending:
            values = self.oracle.distances(list(pending.keys()))
            for (key, rows), value in zip(pending.items(), values.tolist()):
                for i in rows:
                    out[i] = value
                self._pair_insert(key, value)
        return out

    def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """A row of distances, served from the row cache when possible."""
        if not isinstance(s, (int, np.integer)) or isinstance(s, bool):
            # same hit/miss consistency rule as _key: int(2.7) must not
            # alias onto vertex 2's cached row
            raise ValueError(f"s must be an integer vertex id, got {s!r}")
        target_array = as_vertex_ids(np.asarray(targets), "targets")
        key: RowKey = (int(s), tuple(target_array.tolist()))
        row = self._rows.get(key)
        if row is not None:
            self._rows.move_to_end(key)
            self.stats.row_hits += 1
            return row.copy()
        self.stats.row_misses += 1
        row = np.asarray(self.oracle.one_to_many(s, target_array), dtype=np.float64)
        self._rows[key] = row
        self._rows.move_to_end(key)
        if len(self._rows) > self.max_rows:
            self._rows.popitem(last=False)
        return row.copy()

    def many_to_many(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        """Distance matrix, served whole from the matrix cache when possible.

        A miss assembles the matrix from (cacheable) ``one_to_many``
        rows, with in-batch dedup: a source repeated within one request
        is assembled once and counts as a row hit from its second
        occurrence on - mirroring how ``distances`` treats duplicate
        pairs.
        """
        source_array = as_vertex_ids(np.asarray(sources), "sources")
        target_array = as_vertex_ids(np.asarray(targets), "targets")
        key: MatrixKey = (
            tuple(source_array.tolist()),
            tuple(target_array.tolist()),
        )
        matrix = self._matrices.get(key)
        if matrix is not None:
            self._matrices.move_to_end(key)
            self.stats.matrix_hits += 1
            return matrix.copy()
        self.stats.matrix_misses += 1
        out = np.empty((len(source_array), len(target_array)), dtype=np.float64)
        seen: Dict[int, int] = {}
        for i, s in enumerate(source_array.tolist()):
            first = seen.get(s)
            if first is not None:
                self.stats.row_hits += 1  # coalesced with an in-batch row
                out[i, :] = out[first, :]
                continue
            seen[s] = i
            out[i, :] = self.one_to_many(s, target_array)
        self._matrices[key] = out.copy()
        self._matrices.move_to_end(key)
        if len(self._matrices) > self.max_matrices:
            self._matrices.popitem(last=False)
        return out

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Pass-through: the hub count requires an actual label scan."""
        return self.oracle.distance_with_hub_count(s, t)
