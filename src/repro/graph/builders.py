"""Elementary graph builders (grids, paths, random geometric graphs).

These are the building blocks used both by unit tests and by the larger
synthetic road-network generator in :mod:`repro.graph.generators`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.utils.rng import Seed, make_rng

Coordinates = Dict[int, Tuple[float, float]]


def graph_from_edges(edges: Iterable[Tuple[int, int, float]], num_vertices: Optional[int] = None) -> Graph:
    """Build a graph from an iterable of ``(u, v, weight)`` triples.

    When ``num_vertices`` is omitted it is inferred as ``max(id) + 1``.
    """
    edge_list = [(int(u), int(v), float(w)) for u, v, w in edges]
    if num_vertices is None:
        num_vertices = max((max(u, v) for u, v, _ in edge_list), default=-1) + 1
    graph = Graph(num_vertices)
    for u, v, w in edge_list:
        graph.add_edge(u, v, w)
    return graph


def path_graph(n: int, weight: float = 1.0) -> Graph:
    """A path ``0 - 1 - ... - n-1`` with uniform edge weights."""
    graph = Graph(n)
    for i in range(n - 1):
        graph.add_edge(i, i + 1, weight)
    return graph


def cycle_graph(n: int, weight: float = 1.0) -> Graph:
    """A cycle on ``n`` vertices with uniform edge weights."""
    graph = path_graph(n, weight)
    if n > 2:
        graph.add_edge(n - 1, 0, weight)
    return graph


def star_graph(n: int, weight: float = 1.0) -> Graph:
    """A star with centre 0 and leaves ``1..n-1``."""
    graph = Graph(n)
    for i in range(1, n):
        graph.add_edge(0, i, weight)
    return graph


def caterpillar_graph(
    spine: int, legs: int, weight: float = 1.0, leg_weight: Optional[float] = None
) -> Graph:
    """A caterpillar: a path of ``spine`` vertices, each carrying ``legs`` leaves.

    Vertices ``0..spine-1`` form the spine; leaf ``k`` of spine vertex
    ``s`` is ``spine + s * legs + k``.  Every leaf has degree one, so the
    degree-one contraction removes the whole fringe (and, for ``spine``
    small enough, chews into the spine) - the topology that forces the
    same-attachment-tree resolve path of the query engine.
    """
    if spine < 1:
        raise ValueError(f"spine must be at least 1, got {spine}")
    if legs < 0:
        raise ValueError(f"legs must be non-negative, got {legs}")
    graph = Graph(spine + spine * legs)
    for s in range(spine - 1):
        graph.add_edge(s, s + 1, weight)
    leg_w = weight if leg_weight is None else leg_weight
    for s in range(spine):
        for k in range(legs):
            graph.add_edge(s, spine + s * legs + k, leg_w)
    return graph


def complete_graph(n: int, weight: float = 1.0) -> Graph:
    """A complete graph on ``n`` vertices (small n only; used in tests)."""
    graph = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v, weight)
    return graph


def grid_graph(
    rows: int,
    cols: int,
    seed: Seed = None,
    weight_jitter: float = 0.0,
    base_weight: float = 100.0,
) -> Tuple[Graph, Coordinates]:
    """A ``rows x cols`` grid with optional multiplicative weight jitter.

    Grids are the simplest road-network-like topology: planar, low degree,
    high diameter.  ``weight_jitter`` perturbs each edge weight uniformly in
    ``[1 - jitter, 1 + jitter]`` so shortest paths are not massively
    degenerate, which better matches real road networks.

    Returns the graph and a vertex -> (x, y) coordinate map.
    """
    rng = make_rng(seed)
    graph = Graph(rows * cols)
    coords: Coordinates = {}

    def vid(r: int, c: int) -> int:
        return r * cols + c

    def jittered() -> float:
        if weight_jitter <= 0:
            return base_weight
        return base_weight * rng.uniform(1.0 - weight_jitter, 1.0 + weight_jitter)

    for r in range(rows):
        for c in range(cols):
            coords[vid(r, c)] = (float(c) * base_weight, float(r) * base_weight)
            if c + 1 < cols:
                graph.add_edge(vid(r, c), vid(r, c + 1), jittered())
            if r + 1 < rows:
                graph.add_edge(vid(r, c), vid(r + 1, c), jittered())
    return graph, coords


def random_geometric_graph(
    n: int,
    radius: Optional[float] = None,
    seed: Seed = None,
    scale: float = 10_000.0,
) -> Tuple[Graph, Coordinates]:
    """A connected random geometric graph in a square of side ``scale``.

    Vertices are uniform random points; edges connect pairs within
    ``radius`` with Euclidean weights.  Connectivity is enforced afterwards
    by linking each non-primary component to its geometrically nearest
    vertex in the primary component, which mirrors how real road networks
    are connected by a few long links.

    A default radius of ``scale * sqrt(2.2 / n)`` yields average degree
    around 6, close to real road networks after intersection collapsing.
    """
    rng = make_rng(seed)
    if radius is None:
        radius = scale * math.sqrt(2.2 / max(n, 1))
    points = [(rng.uniform(0, scale), rng.uniform(0, scale)) for _ in range(n)]
    coords: Coordinates = {i: p for i, p in enumerate(points)}
    graph = Graph(n)

    cell = radius
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for i, (x, y) in enumerate(points):
        buckets.setdefault((int(x // cell), int(y // cell)), []).append(i)

    for i, (x, y) in enumerate(points):
        bx, by = int(x // cell), int(y // cell)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for j in buckets.get((bx + dx, by + dy), ()):
                    if j <= i:
                        continue
                    d = math.dist(points[i], points[j])
                    if d <= radius:
                        graph.add_edge(i, j, max(d, 1e-9))

    _connect_components_geometrically(graph, points)
    return graph, coords


def _connect_components_geometrically(graph: Graph, points: Sequence[Tuple[float, float]]) -> None:
    """Join all components to the largest one via nearest-point edges."""
    from repro.graph.components import connected_components

    components = connected_components(graph)
    if len(components) <= 1:
        return
    components.sort(key=len, reverse=True)
    primary = list(components[0])
    for other in components[1:]:
        best: Optional[Tuple[float, int, int]] = None
        for u in other:
            for v in primary:
                d = math.dist(points[u], points[v])
                if best is None or d < best[0]:
                    best = (d, u, v)
        assert best is not None
        graph.add_edge(best[1], best[2], max(best[0], 1e-9))
        primary.extend(other)
