"""Shortest-path searches on :class:`repro.graph.Graph`.

These routines are the workhorses of both the baselines (plain and
bidirectional Dijkstra) and the HC2L construction (single-source searches
from cut and border vertices, farthest-vertex selection for the balanced
partitioning seeds).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph

INF = float("inf")


def dijkstra(
    graph: Graph,
    source: int,
    targets: Optional[Iterable[int]] = None,
    allowed: Optional[Iterable[int]] = None,
) -> List[float]:
    """Single-source shortest-path distances from ``source``.

    Parameters
    ----------
    graph:
        The graph to search.
    source:
        The source vertex.
    targets:
        Optional set of targets; the search stops once all have been
        settled.  The full distance array is still returned.
    allowed:
        Optional set of vertices the search may visit (the source must be
        in the set).  Used to search induced subgraphs without copying.

    Returns
    -------
    list of float
        ``dist[v]`` for every vertex, ``inf`` where unreachable.
    """
    n = graph.num_vertices
    dist = [INF] * n
    dist[source] = 0.0
    allowed_set = None if allowed is None else set(allowed)
    remaining = None if targets is None else set(targets)
    indptr, indices, weights = graph.csr().as_lists()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, v = pop(heap)
        if d > dist[v]:
            continue
        if remaining is not None:
            remaining.discard(v)
            if not remaining:
                break
        for i in range(indptr[v], indptr[v + 1]):
            w = indices[i]
            if allowed_set is not None and w not in allowed_set:
                continue
            nd = d + weights[i]
            if nd < dist[w]:
                dist[w] = nd
                push(heap, (nd, w))
    return dist


def dijkstra_predecessors(graph: Graph, source: int) -> Tuple[List[float], List[int]]:
    """Single-source distances and a shortest-path tree.

    Returns ``(dist, parent)`` where ``parent[source] == source`` and
    ``parent[v] == -1`` for unreachable vertices.  Used by the highway
    decomposition in PHL to extract shortest paths.
    """
    n = graph.num_vertices
    dist = [INF] * n
    parent = [-1] * n
    dist[source] = 0.0
    parent[source] = source
    indptr, indices, weights = graph.csr().as_lists()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for i in range(indptr[v], indptr[v + 1]):
            w = indices[i]
            nd = d + weights[i]
            if nd < dist[w]:
                dist[w] = nd
                parent[w] = v
                heapq.heappush(heap, (nd, w))
    return dist, parent


def dijkstra_to_target(graph: Graph, source: int, target: int) -> float:
    """Distance between ``source`` and ``target``; early exit at the target."""
    if source == target:
        return 0.0
    n = graph.num_vertices
    dist = [INF] * n
    dist[source] = 0.0
    indptr, indices, weights = graph.csr().as_lists()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if v == target:
            return d
        if d > dist[v]:
            continue
        for i in range(indptr[v], indptr[v + 1]):
            w = indices[i]
            nd = d + weights[i]
            if nd < dist[w]:
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return INF


def bidirectional_dijkstra(graph: Graph, source: int, target: int) -> float:
    """Bidirectional Dijkstra between ``source`` and ``target``.

    The classic meet-in-the-middle scheme [Pohl 1969] referenced in the
    paper's related-work discussion.  Exact for non-negative weights.
    """
    if source == target:
        return 0.0
    n = graph.num_vertices
    dist_f = [INF] * n
    dist_b = [INF] * n
    dist_f[source] = 0.0
    dist_b[target] = 0.0
    indptr, indices, weights = graph.csr().as_lists()
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]
    settled_f = [False] * n
    settled_b = [False] * n
    best = INF
    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        # expand the side with the smaller frontier distance
        if heap_f[0][0] <= heap_b[0][0]:
            d, v = heapq.heappop(heap_f)
            if settled_f[v] or d > dist_f[v]:
                continue
            settled_f[v] = True
            if dist_b[v] < INF:
                best = min(best, d + dist_b[v])
            for i in range(indptr[v], indptr[v + 1]):
                w = indices[i]
                nd = d + weights[i]
                if nd < dist_f[w]:
                    dist_f[w] = nd
                    heapq.heappush(heap_f, (nd, w))
                if dist_b[w] < INF:
                    best = min(best, nd + dist_b[w])
        else:
            d, v = heapq.heappop(heap_b)
            if settled_b[v] or d > dist_b[v]:
                continue
            settled_b[v] = True
            if dist_f[v] < INF:
                best = min(best, d + dist_f[v])
            for i in range(indptr[v], indptr[v + 1]):
                w = indices[i]
                nd = d + weights[i]
                if nd < dist_b[w]:
                    dist_b[w] = nd
                    heapq.heappush(heap_b, (nd, w))
                if dist_f[w] < INF:
                    best = min(best, nd + dist_f[w])
    return best


def bfs_hops(graph: Graph, source: int, allowed: Optional[Iterable[int]] = None) -> List[int]:
    """Hop counts (unweighted BFS distances) from ``source``; -1 when unreachable."""
    n = graph.num_vertices
    hops = [-1] * n
    allowed_set = None if allowed is None else set(allowed)
    hops[source] = 0
    indptr, indices, _ = graph.csr().as_lists()
    frontier = [source]
    while frontier:
        nxt: List[int] = []
        for v in frontier:
            level = hops[v] + 1
            for i in range(indptr[v], indptr[v + 1]):
                w = indices[i]
                if allowed_set is not None and w not in allowed_set:
                    continue
                if hops[w] == -1:
                    hops[w] = level
                    nxt.append(w)
        frontier = nxt
    return hops


def farthest_vertex(
    graph: Graph, source: int, allowed: Optional[Sequence[int]] = None
) -> Tuple[int, float, List[float]]:
    """The vertex farthest (by weighted distance) from ``source``.

    Restricted to ``allowed`` when given; unreachable vertices are ignored.
    Returns ``(vertex, distance, dist_array)``.  Ties break on the smaller
    vertex id so the hierarchy construction stays deterministic.
    """
    dist = dijkstra(graph, source, allowed=allowed)
    candidates = graph.vertices() if allowed is None else allowed
    best_v, best_d = source, 0.0
    for v in candidates:
        d = dist[v]
        if d == INF:
            continue
        if d > best_d or (d == best_d and v < best_v):
            best_v, best_d = v, d
    return best_v, best_d, dist


def eccentricity_estimate(graph: Graph, seed_vertex: int = 0, sweeps: int = 2) -> float:
    """Estimate the graph diameter by repeated double sweeps.

    Used to populate the "diam." column of the dataset summary table and to
    pick the ``l_max`` bound for the distance-stratified query workloads.
    """
    if graph.num_vertices == 0:
        return 0.0
    v = seed_vertex
    best = 0.0
    for _ in range(max(1, sweeps)):
        v, d, _ = farthest_vertex(graph, v)
        best = max(best, d)
    return best


def all_pairs_dijkstra(graph: Graph, sources: Optional[Iterable[int]] = None) -> Dict[int, List[float]]:
    """Distance arrays from each source (all vertices by default).

    Intended for small graphs in tests and for computing exact workload
    statistics; quadratic in the graph size.
    """
    result: Dict[int, List[float]] = {}
    for s in graph.vertices() if sources is None else sources:
        result[s] = dijkstra(graph, s)
    return result
