"""Weighted undirected graph container used throughout the reproduction.

Road networks in the paper are undirected graphs with positive edge weights
(either physical distances or travel times).  Vertices are integers
``0..n-1``.  Parallel edges collapse to the minimum weight, matching the
behaviour of the DIMACS datasets where duplicate arcs occasionally appear.

The container is adjacency-list based (a list of ``(neighbour, weight)``
lists).  This is the representation every algorithm in the repository works
against; the partitioning code additionally builds lightweight dict-of-dict
"working graphs" when it needs to mutate subgraphs (see
:mod:`repro.partition`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_non_negative_weight, check_vertex

Edge = Tuple[int, int, float]


class CSRAdjacency:
    """Compressed-sparse-row view of a graph's adjacency.

    ``indptr``/``indices``/``weights`` are contiguous typed arrays: the
    neighbours of vertex ``v`` occupy ``indices[indptr[v]:indptr[v + 1]]``
    with matching ``weights``.  The numpy arrays feed vectorised code (the
    batch query engine, scipy interop); :meth:`as_lists` exposes the same
    data as plain Python lists, which the interpreted Dijkstra loops
    iterate faster than either numpy scalars or dict items.

    The view is a snapshot - :class:`Graph` invalidates its cached instance
    on mutation.
    """

    __slots__ = ("indptr", "indices", "weights", "_lists")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._lists: Optional[Tuple[List[int], List[int], List[float]]] = None

    @classmethod
    def from_adjacency(cls, adj: Sequence[Dict[int, float]]) -> "CSRAdjacency":
        """Build from a list of neighbour dicts (the Graph internal form)."""
        indptr: List[int] = [0]
        indices: List[int] = []
        weights: List[float] = []
        for nbrs in adj:
            indices.extend(nbrs.keys())
            weights.extend(nbrs.values())
            indptr.append(len(indices))
        view = cls(
            np.asarray(indptr, dtype=np.int64),
            np.asarray(indices, dtype=np.int64),
            np.asarray(weights, dtype=np.float64),
        )
        # the build already produced the list triple - seed the as_lists
        # cache so the interpreted Dijkstra loops skip a numpy round-trip
        view._lists = (indptr, indices, weights)
        return view

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the view."""
        return len(self.indptr) - 1

    def degree(self, v: int) -> int:
        """Number of neighbours of ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def as_lists(self) -> Tuple[List[int], List[int], List[float]]:
        """The ``(indptr, indices, weights)`` triple as plain Python lists."""
        if self._lists is None:
            self._lists = (
                self.indptr.tolist(),
                self.indices.tolist(),
                self.weights.tolist(),
            )
        return self._lists


class Graph:
    """An undirected, positively weighted graph with integer vertex ids.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0..num_vertices-1``.

    Notes
    -----
    * ``add_edge`` keeps the minimum weight for repeated edges.
    * Self loops are ignored (they never lie on a shortest path).
    * The structure is append-only; algorithms that need to delete vertices
      (partitioning, contraction) operate on copies or on membership masks.
    """

    __slots__ = ("_adj", "_num_edges", "_csr")

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
        self._adj: List[Dict[int, float]] = [dict() for _ in range(num_vertices)]
        self._num_edges = 0
        self._csr: Optional[CSRAdjacency] = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the graph."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def vertices(self) -> range:
        """Iterate over all vertex ids."""
        return range(len(self._adj))

    def degree(self, v: int) -> int:
        """Number of distinct neighbours of ``v``."""
        return len(self._adj[v])

    def neighbors(self, v: int) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(neighbour, weight)`` pairs of ``v``."""
        return iter(self._adj[v].items())

    def neighbor_ids(self, v: int) -> Iterable[int]:
        """Iterate over the neighbour ids of ``v``."""
        return self._adj[v].keys()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge between ``u`` and ``v`` exists."""
        return v in self._adj[u]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of the edge ``(u, v)``.

        Raises ``KeyError`` when the edge does not exist.
        """
        return self._adj[u][v]

    def edges(self) -> Iterator[Edge]:
        """Iterate over undirected edges once each as ``(u, v, weight)`` with u < v."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                if u < v:
                    yield (u, v, w)

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the edge list representation.

        Mirrors the "Memory" column of Table 1 in the paper: each directed
        arc contributes a 4-byte endpoint and an 8-byte weight.
        """
        return self._num_edges * 2 * 12 + self.num_vertices * 8

    def csr(self) -> CSRAdjacency:
        """The CSR view of the adjacency (cached until the next mutation)."""
        # getattr: graphs restored from legacy pickles predate the _csr slot
        csr = getattr(self, "_csr", None)
        if csr is None:
            csr = CSRAdjacency.from_adjacency(self._adj)
            self._csr = csr
        return csr

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add an undirected edge, keeping the minimum weight on duplicates."""
        n = self.num_vertices
        check_vertex(u, n, "u")
        check_vertex(v, n, "v")
        weight = check_non_negative_weight(weight)
        if u == v:
            return
        existing = self._adj[u].get(v)
        if existing is None:
            self._num_edges += 1
            self._adj[u][v] = weight
            self._adj[v][u] = weight
            self._csr = None
        elif weight < existing:
            self._adj[u][v] = weight
            self._adj[v][u] = weight
            self._csr = None

    def add_vertex(self) -> int:
        """Append a fresh isolated vertex and return its id."""
        self._adj.append(dict())
        self._csr = None
        return len(self._adj) - 1

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        other = Graph(self.num_vertices)
        for u, v, w in self.edges():
            other.add_edge(u, v, w)
        return other

    def induced_subgraph(self, vertices: Sequence[int]) -> Tuple["Graph", List[int]]:
        """Return the induced subgraph on ``vertices`` and the id mapping.

        The returned graph uses fresh ids ``0..len(vertices)-1``; the second
        element maps each fresh id back to the original vertex id.
        """
        ordered = list(vertices)
        index = {v: i for i, v in enumerate(ordered)}
        sub = Graph(len(ordered))
        for v in ordered:
            vi = index[v]
            for w, weight in self._adj[v].items():
                wi = index.get(w)
                if wi is not None and vi < wi:
                    sub.add_edge(vi, wi, weight)
        return sub, ordered

    def reweighted(self, weights: Dict[Tuple[int, int], float]) -> "Graph":
        """Return a copy where every edge takes its weight from ``weights``.

        ``weights`` is keyed by ``(min(u, v), max(u, v))``; edges missing
        from the mapping keep their current weight.  Every key must match
        an existing edge in normalised form - a typo'd or un-normalised
        ``(v, u)`` key raises instead of silently reweighting nothing.
        """
        other = Graph(self.num_vertices)
        other._adj = [dict(neighbors) for neighbors in self._adj]
        other._num_edges = self._num_edges
        bad = []
        for (u, v), w in weights.items():
            if not (0 <= u < v < self.num_vertices) or v not in self._adj[u]:
                bad.append((u, v))
                continue
            w = check_non_negative_weight(w)
            other._adj[u][v] = w
            other._adj[v][u] = w
        if bad:
            raise ValueError(
                f"reweighted got {len(bad)} key(s) matching no edge "
                f"(keys must be (min(u, v), max(u, v)) of an existing edge): {sorted(bad)[:5]}"
            )
        return other

    def adjacency_dict(self, vertices: Optional[Iterable[int]] = None) -> Dict[int, Dict[int, float]]:
        """Return a mutable dict-of-dicts view restricted to ``vertices``.

        This is the "working graph" representation used by the hierarchy
        builder, which needs to remove cut vertices and add shortcut edges
        without touching the original :class:`Graph`.
        """
        if vertices is None:
            member = None
        else:
            member = set(vertices)
        result: Dict[int, Dict[int, float]] = {}
        source = self.vertices() if member is None else member
        for v in source:
            nbrs = self._adj[v]
            if member is None:
                result[v] = dict(nbrs)
            else:
                result[v] = {w: wt for w, wt in nbrs.items() if w in member}
        return result

    # ------------------------------------------------------------------ #
    # interop / debugging
    # ------------------------------------------------------------------ #
    def to_networkx(self):  # pragma: no cover - thin conversion helper
        """Convert to a ``networkx.Graph`` (used by tests for cross-checking)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.vertices())
        g.add_weighted_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, nxg) -> "Graph":
        """Build from a ``networkx`` graph whose nodes are ``0..n-1``."""
        graph = cls(nxg.number_of_nodes())
        for u, v, data in nxg.edges(data=True):
            graph.add_edge(int(u), int(v), float(data.get("weight", 1.0)))
        return graph

    def __repr__(self) -> str:
        return f"Graph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"
