"""Degree-one tree contraction (Section 4.2.2 of the paper).

Before constructing labels, HC2L repeatedly removes vertices of degree one.
Removed vertices hang off the remaining "core" graph in attachment trees;
distances involving them are recovered from (a) the stored distance to
their attachment root plus a core query, or (b) when both endpoints share
the same root, an in-tree lowest common ancestor computation.

The paper notes this contracts ~30% of road-network vertices versus ~20%
for the weaker PHL variant that only removes vertices of degree one in the
*original* graph; :func:`contract_degree_one` supports both behaviours via
the ``iterative`` flag so the ablation benchmark can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph

INF = float("inf")


@dataclass
class ContractedGraph:
    """Result of the degree-one contraction.

    Attributes
    ----------
    core:
        The contracted core graph, re-indexed with fresh ids ``0..m-1``.
    core_to_original:
        Maps core ids back to original vertex ids.
    original_to_core:
        Maps original vertex ids to core ids (-1 for contracted vertices).
    root:
        For every original vertex, the original id of its attachment root
        (core vertices are their own root).
    parent:
        For contracted vertices, the original id of their parent in the
        attachment tree; core vertices are their own parent.
    dist_to_parent / dist_to_root:
        Distances along the attachment tree.
    depth:
        Depth of each vertex in its attachment tree (0 for core vertices).
    """

    core: Graph
    core_to_original: List[int]
    original_to_core: List[int]
    root: List[int]
    parent: List[int]
    dist_to_parent: List[float]
    dist_to_root: List[float]
    depth: List[int]
    num_original: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.num_original:
            self.num_original = len(self.root)

    @property
    def num_contracted(self) -> int:
        """Number of vertices removed by the contraction."""
        return self.num_original - self.core.num_vertices

    def contraction_ratio(self) -> float:
        """Fraction of vertices removed (the paper reports ~0.2-0.3)."""
        if self.num_original == 0:
            return 0.0
        return self.num_contracted / self.num_original

    def is_core(self, vertex: int) -> bool:
        """Whether ``vertex`` (original id) survived the contraction."""
        return self.original_to_core[vertex] >= 0

    def core_id(self, vertex: int) -> int:
        """Core id of an original vertex (-1 when contracted)."""
        return self.original_to_core[vertex]

    # ------------------------------------------------------------------ #
    # distance recovery
    # ------------------------------------------------------------------ #
    def tree_lca_distance(self, u: int, v: int) -> float:
        """Distance between two vertices attached to the *same* root.

        Walks both vertices to their lowest common ancestor in the
        attachment tree (the tree is the only connection between them), as
        described in Section 4.2.2:
        ``d(v, w) = d(v, root) + d(w, root) - 2 * d(lca, root)``.
        """
        a, b = u, v
        da, db = self.depth[a], self.depth[b]
        while da > db:
            a = self.parent[a]
            da -= 1
        while db > da:
            b = self.parent[b]
            db -= 1
        while a != b:
            a = self.parent[a]
            b = self.parent[b]
        lca = a
        return self.dist_to_root[u] + self.dist_to_root[v] - 2.0 * self.dist_to_root[lca]

    def resolve_query(self, s: int, t: int) -> Tuple[Optional[float], int, int, float]:
        """Reduce an original-id query to a core query.

        Returns ``(answer, core_s, core_t, offset)``.  When ``answer`` is
        not ``None`` the query is fully resolved inside the attachment
        trees (same root, or identical vertices) and the core ids are -1.
        Otherwise the caller should compute the core distance between
        ``core_s`` and ``core_t`` and add ``offset``.
        """
        if s == t:
            return 0.0, -1, -1, 0.0
        root_s, root_t = self.root[s], self.root[t]
        if root_s == root_t:
            return self.tree_lca_distance(s, t), -1, -1, 0.0
        offset = self.dist_to_root[s] + self.dist_to_root[t]
        return None, self.original_to_core[root_s], self.original_to_core[root_t], offset


def contract_degree_one(graph: Graph, iterative: bool = True) -> ContractedGraph:
    """Contract degree-one vertices of ``graph``.

    Parameters
    ----------
    graph:
        The input road network (original vertex ids).
    iterative:
        When ``True`` (the paper's approach) vertices whose degree *drops*
        to one during the process are removed as well; when ``False`` only
        vertices of degree one in the original graph are removed (the PHL
        behaviour the paper compares against).

    Vertices of degree zero are never removed; a graph that is entirely a
    tree contracts down to a single core vertex per component.
    """
    n = graph.num_vertices
    degree = [graph.degree(v) for v in range(n)]
    removed = [False] * n
    parent = list(range(n))
    dist_to_parent = [0.0] * n
    # live adjacency we can shrink as vertices get removed
    live_adj: List[Dict[int, float]] = [dict(graph.neighbors(v)) for v in range(n)]

    # FIFO processing removes the leaves of each attachment tree first, so
    # the surviving root is the vertex closest to the graph's 2-core (for a
    # pure tree component: a central, originally high-degree vertex).
    queue = [v for v in range(n) if degree[v] == 1]
    removable = set(queue) if not iterative else None
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        if removed[v] or degree[v] != 1:
            continue
        if removable is not None and v not in removable:
            continue
        # v has exactly one live neighbour: its parent in the attachment tree
        (u, w), = live_adj[v].items()
        removed[v] = True
        parent[v] = u
        dist_to_parent[v] = w
        del live_adj[u][v]
        live_adj[v].clear()
        degree[u] -= 1
        degree[v] = 0
        if degree[u] == 1:
            queue.append(u)

    # Build the core graph over surviving vertices.
    core_to_original = [v for v in range(n) if not removed[v]]
    original_to_core = [-1] * n
    for cid, v in enumerate(core_to_original):
        original_to_core[v] = cid
    core = Graph(len(core_to_original))
    for u, v, w in graph.edges():
        if not removed[u] and not removed[v]:
            core.add_edge(original_to_core[u], original_to_core[v], w)

    # Resolve roots, depths and root distances by walking parent chains.
    root = [-1] * n
    depth = [0] * n
    dist_to_root = [0.0] * n

    def resolve(v: int) -> None:
        chain = []
        x = v
        while removed[x] and root[x] == -1:
            chain.append(x)
            x = parent[x]
        base_root = x if not removed[x] else root[x]
        base_depth = 0 if not removed[x] else depth[x]
        base_dist = 0.0 if not removed[x] else dist_to_root[x]
        for node in reversed(chain):
            base_depth += 1
            base_dist += dist_to_parent[node]
            root[node] = base_root
            depth[node] = base_depth
            dist_to_root[node] = base_dist

    for v in range(n):
        if not removed[v]:
            root[v] = v
        elif root[v] == -1:
            resolve(v)

    return ContractedGraph(
        core=core,
        core_to_original=core_to_original,
        original_to_core=original_to_core,
        root=root,
        parent=parent,
        dist_to_parent=dist_to_parent,
        dist_to_root=dist_to_root,
        depth=depth,
        num_original=n,
    )
