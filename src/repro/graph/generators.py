"""Synthetic road-network generator.

The paper evaluates on ten real road networks (NY ... USA, EUR) with
hundreds of thousands to tens of millions of vertices.  Building those
indexes in pure Python is infeasible (the calibration notes flag exactly
this), so the experiments in this repository run on *synthetic* road
networks that preserve the structural features the algorithms care about:

* planar-like topology with low average degree (~2.5-4),
* high diameter relative to size,
* a hierarchy of fast "highway" edges overlaid on a dense local street
  grid (so that travel-time weights behave differently from distance
  weights, as in Table 2 vs Table 4),
* a sprinkling of degree-one appendages (dead-end streets) so the
  degree-one contraction has something to do.

:func:`synthetic_road_network` produces both a ``distance`` weighting and a
correlated ``travel_time`` weighting for the same topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graph.builders import Coordinates, random_geometric_graph
from repro.graph.graph import Graph
from repro.utils.rng import Seed, make_rng


@dataclass(frozen=True)
class RoadNetworkSpec:
    """Parameters of a synthetic road network.

    Attributes
    ----------
    name:
        Human-readable name (the dataset registry uses the paper's names
        with a ``-mini`` suffix).
    num_vertices:
        Approximate number of vertices (dead-end streets add a few
        percent on top).
    seed:
        Deterministic seed for the generator.
    highway_fraction:
        Fraction of edges upgraded to "highway" speed class; these get a
        large speed-up in the travel-time weighting, creating the highway
        hierarchy that PHL and CH exploit.
    deadend_fraction:
        Fraction of vertices that receive an extra degree-one appendage.
    """

    name: str
    num_vertices: int
    seed: int = 7
    highway_fraction: float = 0.12
    deadend_fraction: float = 0.08
    scale: float = 50_000.0


@dataclass
class RoadNetwork:
    """A generated synthetic road network with two weightings."""

    spec: RoadNetworkSpec
    distance_graph: Graph
    travel_time_graph: Graph
    coordinates: Coordinates

    def graph(self, weighting: str = "distance") -> Graph:
        """Return the graph under the requested weighting.

        ``weighting`` is ``"distance"`` or ``"travel_time"`` matching the
        two dataset versions used in the paper.
        """
        if weighting == "distance":
            return self.distance_graph
        if weighting in ("travel_time", "time"):
            return self.travel_time_graph
        raise ValueError(f"unknown weighting {weighting!r}; use 'distance' or 'travel_time'")


def synthetic_road_network(spec: RoadNetworkSpec) -> RoadNetwork:
    """Generate a synthetic road network for ``spec``.

    The topology is a connected random geometric graph (a reasonable model
    of a road network after intersection collapsing) with three speed
    classes: local streets, arterial roads and highways.  Distance weights
    are Euclidean lengths; travel-time weights divide by the speed class,
    so highways are disproportionately attractive under travel times.
    """
    rng = make_rng(spec.seed)
    graph, coords = random_geometric_graph(spec.num_vertices, seed=rng, scale=spec.scale)
    graph, coords = _attach_dead_ends(graph, coords, spec, rng)

    distance_graph = Graph(graph.num_vertices)
    travel_graph = Graph(graph.num_vertices)
    for u, v, w in graph.edges():
        speed = _speed_class(u, v, w, spec, rng)
        length = max(w, 1.0)
        distance_graph.add_edge(u, v, round(length, 3))
        travel_graph.add_edge(u, v, round(length / speed, 3))
    return RoadNetwork(
        spec=spec,
        distance_graph=distance_graph,
        travel_time_graph=travel_graph,
        coordinates=coords,
    )


def _speed_class(u: int, v: int, length: float, spec: RoadNetworkSpec, rng) -> float:
    """Pick a speed multiplier for an edge.

    Long edges are more likely to be highways (they connect distant
    clusters), which yields a spatially coherent highway structure rather
    than uniformly random fast edges.
    """
    roll = rng.random()
    long_edge_bonus = min(0.35, length / (spec.scale * 0.2))
    if roll < spec.highway_fraction + long_edge_bonus:
        return rng.uniform(3.0, 4.0)  # motorway
    if roll < 0.45:
        return rng.uniform(1.6, 2.2)  # arterial road
    return rng.uniform(0.8, 1.2)  # local street


def _attach_dead_ends(
    graph: Graph, coords: Coordinates, spec: RoadNetworkSpec, rng
) -> Tuple[Graph, Coordinates]:
    """Attach degree-one appendages (dead-end streets) to random vertices."""
    num_deadends = int(graph.num_vertices * spec.deadend_fraction)
    if num_deadends == 0:
        return graph, coords
    total = graph.num_vertices + num_deadends
    extended = Graph(total)
    for u, v, w in graph.edges():
        extended.add_edge(u, v, w)
    new_coords = dict(coords)
    anchors = rng.sample(range(graph.num_vertices), num_deadends)
    for offset, anchor in enumerate(anchors):
        vid = graph.num_vertices + offset
        length = rng.uniform(20.0, 400.0)
        extended.add_edge(anchor, vid, length)
        ax, ay = coords[anchor]
        angle = rng.uniform(0, 2 * math.pi)
        new_coords[vid] = (ax + length * math.cos(angle), ay + length * math.sin(angle))
    return extended, new_coords


def paper_dataset_specs(scale: float = 1.0) -> Dict[str, RoadNetworkSpec]:
    """Synthetic stand-ins for the ten paper datasets (Table 1).

    Sizes follow the same *relative* ordering as the paper (NY smallest,
    USA/EUR largest) but are shrunk by roughly four orders of magnitude so
    pure-Python index construction completes in seconds.  ``scale``
    multiplies every size, so ``scale=4`` runs a heavier benchmark.
    """
    base_sizes = {
        "NY": 400,
        "BAY": 480,
        "COL": 650,
        "FLA": 900,
        "CAL": 1200,
        "E": 1600,
        "W": 2100,
        "CTR": 2800,
        "USA": 3600,
        "EUR": 3200,
    }
    specs = {}
    for i, (name, size) in enumerate(base_sizes.items()):
        specs[name] = RoadNetworkSpec(
            name=name,
            num_vertices=max(50, int(size * scale)),
            seed=1000 + i,
        )
    return specs


def generate_dataset(name: str, scale: float = 1.0, seed: Optional[int] = None) -> RoadNetwork:
    """Generate the synthetic stand-in for one of the paper's datasets."""
    specs = paper_dataset_specs(scale)
    if name not in specs:
        raise KeyError(f"unknown dataset {name!r}; available: {', '.join(specs)}")
    spec = specs[name]
    if seed is not None:
        spec = RoadNetworkSpec(
            name=spec.name,
            num_vertices=spec.num_vertices,
            seed=seed,
            highway_fraction=spec.highway_fraction,
            deadend_fraction=spec.deadend_fraction,
            scale=spec.scale,
        )
    return synthetic_road_network(spec)
