"""Connected components helpers.

Both the balanced partitioning (Algorithm 1 handles disconnected inputs
explicitly) and the final component re-assignment of Algorithm 2 need fast
connected-component computations, optionally restricted to a vertex subset.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.graph.graph import Graph


def connected_components(graph: Graph, allowed: Optional[Iterable[int]] = None) -> List[List[int]]:
    """Connected components of ``graph`` (optionally induced on ``allowed``).

    Components are returned as lists of vertex ids; the vertices inside each
    component and the components themselves appear in ascending discovery
    order, which keeps downstream tie-breaking deterministic.
    """
    if allowed is None:
        members: Optional[Set[int]] = None
        universe: Iterable[int] = graph.vertices()
    else:
        members = set(allowed)
        universe = sorted(members)

    seen: Set[int] = set()
    components: List[List[int]] = []
    for start in universe:
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        stack = [start]
        while stack:
            v = stack.pop()
            for w in graph.neighbor_ids(v):
                if w in seen:
                    continue
                if members is not None and w not in members:
                    continue
                seen.add(w)
                component.append(w)
                stack.append(w)
        components.append(sorted(component))
    return components


def components_of_adjacency(adjacency: Dict[int, Dict[int, float]]) -> List[List[int]]:
    """Connected components of a dict-of-dicts working graph."""
    seen: Set[int] = set()
    components: List[List[int]] = []
    for start in sorted(adjacency):
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        stack = [start]
        while stack:
            v = stack.pop()
            for w in adjacency[v]:
                if w not in seen:
                    seen.add(w)
                    component.append(w)
                    stack.append(w)
        components.append(sorted(component))
    return components


def largest_component(graph: Graph) -> List[int]:
    """Vertices of the largest connected component (ties: first found)."""
    components = connected_components(graph)
    if not components:
        return []
    return max(components, key=len)


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.num_vertices == 0:
        return True
    return len(largest_component(graph)) == graph.num_vertices
