"""DIMACS road-network file I/O.

The paper's datasets come from the 9th DIMACS Implementation Challenge in
the ``.gr`` (graph) / ``.co`` (coordinates) format.  We implement readers
and writers for both so the reproduction can be pointed at the real
datasets when they are available, even though the bundled experiments use
synthetic stand-ins.

Format reference
----------------
``.gr``::

    c comment lines
    p sp <num_vertices> <num_arcs>
    a <u> <v> <weight>        (1-based vertex ids, directed arcs)

``.co``::

    c comment lines
    p aux sp co <num_vertices>
    v <id> <x> <y>
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Dict, IO, Iterator, Tuple, Union

from repro.graph.graph import Graph

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str = "rt") -> IO[str]:
    """Open a possibly gzip-compressed text file."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def read_dimacs(path: PathLike) -> Graph:
    """Read a DIMACS ``.gr`` file into an undirected :class:`Graph`.

    Directed arc pairs collapse into a single undirected edge with the
    minimum of the two weights, matching how the paper treats the (almost
    symmetric) USA road networks as undirected graphs.
    """
    graph: Graph | None = None
    with _open_text(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            fields = line.split()
            if fields[0] == "p":
                if len(fields) < 4 or fields[1] != "sp":
                    raise ValueError(f"{path}:{line_no}: malformed problem line: {line!r}")
                graph = Graph(int(fields[2]))
            elif fields[0] == "a":
                if graph is None:
                    raise ValueError(f"{path}:{line_no}: arc line before problem line")
                if len(fields) != 4:
                    raise ValueError(f"{path}:{line_no}: malformed arc line: {line!r}")
                u, v, w = int(fields[1]) - 1, int(fields[2]) - 1, float(fields[3])
                graph.add_edge(u, v, w)
            else:
                raise ValueError(f"{path}:{line_no}: unknown record type {fields[0]!r}")
    if graph is None:
        raise ValueError(f"{path}: no problem line found")
    return graph


def write_dimacs(graph: Graph, path: PathLike, comment: str = "written by repro") -> None:
    """Write ``graph`` as a DIMACS ``.gr`` file (both arc directions)."""
    with _open_text(path, "wt") as handle:
        handle.write(f"c {comment}\n")
        handle.write(f"p sp {graph.num_vertices} {graph.num_edges * 2}\n")
        for u, v, w in graph.edges():
            weight = int(w) if float(w).is_integer() else w
            handle.write(f"a {u + 1} {v + 1} {weight}\n")
            handle.write(f"a {v + 1} {u + 1} {weight}\n")


def read_coordinates(path: PathLike) -> Dict[int, Tuple[float, float]]:
    """Read a DIMACS ``.co`` coordinate file into ``{vertex: (x, y)}``."""
    coords: Dict[int, Tuple[float, float]] = {}
    with _open_text(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("c") or line.startswith("p"):
                continue
            fields = line.split()
            if fields[0] != "v" or len(fields) != 4:
                raise ValueError(f"{path}:{line_no}: malformed coordinate line: {line!r}")
            coords[int(fields[1]) - 1] = (float(fields[2]), float(fields[3]))
    return coords


def write_coordinates(coords: Dict[int, Tuple[float, float]], path: PathLike) -> None:
    """Write a coordinate map as a DIMACS ``.co`` file."""
    with _open_text(path, "wt") as handle:
        handle.write("c written by repro\n")
        handle.write(f"p aux sp co {len(coords)}\n")
        for vertex in sorted(coords):
            x, y = coords[vertex]
            handle.write(f"v {vertex + 1} {x:.0f} {y:.0f}\n")


def iter_query_pairs(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Read a whitespace-separated query pair file (one ``s t`` pair per line)."""
    with _open_text(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            s, t = line.split()[:2]
            yield int(s), int(t)
