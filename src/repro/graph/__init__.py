"""Road-network graph substrate.

This package contains everything the labelling algorithms need from the
underlying road network: the weighted graph container, synthetic network
generators used in place of the DIMACS datasets, DIMACS file I/O, shortest
path searches, connected components and the degree-one tree contraction
described in Section 4.2.2 of the paper.
"""

from repro.graph.graph import Graph
from repro.graph.builders import (
    graph_from_edges,
    grid_graph,
    path_graph,
    random_geometric_graph,
    star_graph,
)
from repro.graph.generators import synthetic_road_network, RoadNetworkSpec
from repro.graph.io import read_dimacs, write_dimacs, read_coordinates, write_coordinates
from repro.graph.search import (
    bfs_hops,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_to_target,
    eccentricity_estimate,
    farthest_vertex,
)
from repro.graph.components import connected_components, largest_component, is_connected
from repro.graph.contraction import ContractedGraph, contract_degree_one

__all__ = [
    "Graph",
    "graph_from_edges",
    "grid_graph",
    "path_graph",
    "star_graph",
    "random_geometric_graph",
    "synthetic_road_network",
    "RoadNetworkSpec",
    "read_dimacs",
    "write_dimacs",
    "read_coordinates",
    "write_coordinates",
    "dijkstra",
    "dijkstra_to_target",
    "bidirectional_dijkstra",
    "bfs_hops",
    "farthest_vertex",
    "eccentricity_estimate",
    "connected_components",
    "largest_component",
    "is_connected",
    "ContractedGraph",
    "contract_degree_one",
]
