"""Command line interface for the HC2L reproduction.

Five subcommands cover the typical workflow of a downstream user:

``build``
    Build an HC2L index from a DIMACS ``.gr`` file (or a synthetic
    dataset) and save it to disk.
``shard``
    Split a saved index into the sharded layout (``<path>.shards/``:
    ``manifest.json`` + label-free ``base.npz`` + per-range shard
    archives) for multi-worker serving.
``query``
    Load a saved index (``--mmap`` maps the labels, ``--shards`` serves
    a sharded layout through the shard router) and answer source/target
    queries.
``compare``
    Build HC2L and selected baselines on a dataset and print the
    comparison table (a miniature Table 2).
``serve``
    Serve a sharded layout through the multi-process fleet: an asyncio
    TCP front door placing batches onto shard-owning worker processes
    (``--wire`` picks the response framing, ``--shared-cache-slots``
    enables the cross-worker shared-memory pair cache).
``fleet-bench``
    Run the closed-loop fleet benchmark (p50/p99 latency and
    majority-placement hit rate per worker count and wire mode, plus a
    shared-cache on/off comparison) on a saved index.
``reload``
    Ask a running fleet (``repro serve``) to hot-swap onto the index
    generation currently on disk - write the new generation with
    ``HC2LIndex.save_sharded`` first, then ``repro reload --port N``.
``generate``
    Write a synthetic road network to a DIMACS ``.gr`` file so it can be
    used with external tools.

Run ``python -m repro.cli --help`` for the full option listing.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.index import HC2LIndex
from repro.graph.generators import RoadNetworkSpec, synthetic_road_network
from repro.graph.graph import Graph
from repro.graph.io import read_dimacs, write_dimacs


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hierarchical Cut 2-Hop Labelling (HC2L) command line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build", help="build an HC2L index and save it")
    _add_graph_source_arguments(build)
    build.add_argument("--output", "-o", required=True, help="path for the saved index")
    build.add_argument("--beta", type=float, default=0.2, help="balance parameter (default 0.2)")
    build.add_argument("--leaf-size", type=int, default=12, help="recursion cut-off (default 12)")
    build.add_argument("--no-tail-pruning", action="store_true", help="disable tail pruning")
    build.add_argument("--no-contraction", action="store_true", help="disable degree-one contraction")
    build.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker count: 1 builds sequentially, >=2 uses the parallel builder",
    )
    build.add_argument(
        "--parallel-mode",
        choices=["thread", "process"],
        default="thread",
        help=(
            "execution of the parallel builder (with --workers >= 2): "
            "thread (shared-memory pool, GIL-bound) or process "
            "(self-contained subtree work units on a process pool)"
        ),
    )
    from repro.core.backends import BACKEND_NAMES
    from repro.flow.vertex_cut import FLOW_METHOD_CHOICES

    build.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="auto",
        help=(
            "shortest-path backend for the construction searches: heap "
            "(pure-Python Dijkstra), csr (batched scipy/numpy searches), "
            "dial (bucket-queue searches for integer-scalable weights), "
            "or auto (csr when scipy is available; the default)"
        ),
    )
    build.add_argument(
        "--flow-method",
        choices=list(FLOW_METHOD_CHOICES),
        default="auto",
        help=(
            "max-flow solver for the hierarchy phase's minimum vertex "
            "cuts (cuts are bit-identical across solvers): auto defers "
            "to the backend (the default)"
        ),
    )
    build.add_argument(
        "--tree-sidecar",
        action="store_true",
        help=(
            "also persist the Euler-tour tree resolver next to the index "
            "(<output>.tree/) so mmap-loading workers skip the per-process "
            "rebuild"
        ),
    )

    shard = subparsers.add_parser(
        "shard", help="split a saved index into a sharded layout for multi-worker serving"
    )
    shard.add_argument("index", help="path to an index written by 'repro build'")
    shard.add_argument(
        "--shards", type=int, default=2, help="number of vertex-range shards (default 2)"
    )
    shard.add_argument(
        "--boundaries",
        choices=["even", "hierarchy"],
        default="even",
        help=(
            "shard boundary layout: even core-id ranges (default) or "
            "hierarchy (labels stored in subtree DFS order, boundaries "
            "aligned with the hierarchy's top cuts so nearby queries stay "
            "inside one shard)"
        ),
    )
    shard.add_argument(
        "--allow-pickle",
        action="store_true",
        help="also accept legacy pickle index files (runs arbitrary code; trusted files only)",
    )

    query = subparsers.add_parser("query", help="answer distance queries from a saved index")
    query.add_argument("index", help="path to an index written by 'repro build'")
    query.add_argument("pairs", nargs="*", help="queries as s,t pairs (e.g. 3,17 42,7)")
    query.add_argument("--stdin", action="store_true", help="read 's t' pairs from standard input")
    query.add_argument(
        "--allow-pickle",
        action="store_true",
        help="also accept legacy pickle index files (runs arbitrary code; trusted files only)",
    )
    query.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the label buffers so concurrent processes share one copy",
    )
    query.add_argument(
        "--shards",
        action="store_true",
        help="serve from the sharded layout written by 'repro shard' (lazily mmap-loads shards)",
    )

    compare = subparsers.add_parser("compare", help="compare HC2L against baselines on one graph")
    _add_graph_source_arguments(compare)
    compare.add_argument(
        "--methods",
        default="HC2L,H2H,HL",
        help=(
            "comma separated methods "
            "(HC2L, HC2L_p, H2H, PHL, HL, PLL, CH, BiDijkstra, Dijkstra)"
        ),
    )
    compare.add_argument("--queries", type=int, default=1000, help="random query count (default 1000)")

    serve = subparsers.add_parser(
        "serve", help="serve a sharded layout through the multi-process fleet over TCP"
    )
    serve.add_argument("index", help="index whose sharded layout ('repro shard') to serve")
    serve.add_argument("--workers", type=int, default=2, help="worker process count (default 2)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0, help="bind port (default: ephemeral)")
    serve.add_argument(
        "--window-ms",
        type=float,
        default=0.5,
        help="scalar coalescing window in milliseconds (default 0.5)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=4096, help="cap on one coalesced batch (default 4096)"
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for N seconds then drain and exit (default: until interrupted)",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        help="write 'host port' to this file once the listener is bound",
    )
    serve.add_argument(
        "--wire",
        choices=["json", "binary"],
        default="binary",
        help="TCP response framing for array ops (default binary; JSON "
        "requests always get JSON replies)",
    )
    serve.add_argument(
        "--shared-cache-slots",
        type=int,
        default=0,
        help="capacity of the cross-worker shared-memory pair cache "
        "(default 0: disabled)",
    )

    fleet_bench = subparsers.add_parser(
        "fleet-bench",
        help="closed-loop fleet benchmark: p50/p99 latency per worker count",
    )
    fleet_bench.add_argument("index", help="path to an index written by 'repro build'")
    fleet_bench.add_argument(
        "--workers", default="2,3", help="comma separated worker counts (default 2,3)"
    )
    fleet_bench.add_argument(
        "--shards", type=int, default=4, help="shard count of the bench layout (default 4)"
    )
    fleet_bench.add_argument(
        "--clients", type=int, default=4, help="concurrent TCP clients (default 4)"
    )
    fleet_bench.add_argument(
        "--batches", type=int, default=48, help="number of locality batches (default 48)"
    )
    fleet_bench.add_argument(
        "--batch-size", type=int, default=32, help="pairs per batch (default 32)"
    )
    fleet_bench.add_argument(
        "--wires",
        default="json,binary",
        help="comma separated wire modes to sweep (default json,binary)",
    )
    fleet_bench.add_argument(
        "--shared-cache-slots",
        type=int,
        default=4096,
        help="capacity of the cross-worker shared cache during the sweep "
        "(default 4096; 0 disables it)",
    )
    fleet_bench.add_argument(
        "--allow-pickle",
        action="store_true",
        help="also accept legacy pickle index files (runs arbitrary code; trusted files only)",
    )

    reload_parser = subparsers.add_parser(
        "reload",
        help="hot-swap a running fleet onto the index generation currently on disk",
    )
    reload_parser.add_argument("--host", default="127.0.0.1", help="fleet host (default 127.0.0.1)")
    reload_parser.add_argument("--port", type=int, required=True, help="fleet TCP port")
    reload_parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="seconds to wait for the drain + swap (default 120)",
    )

    generate = subparsers.add_parser("generate", help="write a synthetic road network as DIMACS")
    generate.add_argument("--vertices", type=int, default=1000, help="approximate vertex count")
    generate.add_argument("--seed", type=int, default=7, help="generator seed")
    generate.add_argument("--weighting", choices=["distance", "travel_time"], default="distance")
    generate.add_argument("--output", "-o", required=True, help="path of the .gr file to write")

    return parser


def _add_graph_source_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="path to a DIMACS .gr file")
    source.add_argument("--synthetic", type=int, metavar="N", help="generate a synthetic network with ~N vertices")
    parser.add_argument("--seed", type=int, default=7, help="seed for --synthetic (default 7)")
    parser.add_argument(
        "--weighting",
        choices=["distance", "travel_time"],
        default="distance",
        help="weighting used when --synthetic is given",
    )


def _load_graph(args: argparse.Namespace) -> Graph:
    if getattr(args, "graph", None):
        return read_dimacs(args.graph)
    network = synthetic_road_network(
        RoadNetworkSpec("cli", num_vertices=args.synthetic, seed=args.seed)
    )
    return network.graph(args.weighting)


# --------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------- #
def _cmd_build(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    print(f"building HC2L on {graph.num_vertices} vertices / {graph.num_edges} edges ...")
    index = HC2LIndex.build(
        graph,
        beta=args.beta,
        leaf_size=args.leaf_size,
        tail_pruning=not args.no_tail_pruning,
        contract=not args.no_contraction,
        num_workers=args.workers,
        parallel_mode=args.parallel_mode,
        backend=args.backend,
        flow_method=args.flow_method,
    )
    index.save(args.output, tree_sidecar=args.tree_sidecar)
    summary = index.describe()
    print(f"saved to {args.output}")
    print(
        f"  construction {summary['construction_seconds']:.2f}s, "
        f"labels {summary['label_size_bytes'] / 1024:.1f} KB, "
        f"height {int(summary['tree_height'])}, max cut {int(summary['max_cut_size'])}"
    )
    return 0


def _parse_pairs(args: argparse.Namespace) -> List[tuple[int, int]]:
    pairs: List[tuple[int, int]] = []
    for chunk in args.pairs:
        s, t = chunk.replace(",", " ").split()
        pairs.append((int(s), int(t)))
    if args.stdin:
        for line in sys.stdin:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            s, t = line.replace(",", " ").split()[:2]
            pairs.append((int(s), int(t)))
    return pairs


def _cmd_shard(args: argparse.Namespace) -> int:
    index = HC2LIndex.load(args.index, allow_pickle=args.allow_pickle)
    layout = index.save_sharded(
        args.index, num_shards=args.shards, boundaries=args.boundaries
    )
    from repro.core.persistence import load_manifest

    _, manifest = load_manifest(layout)
    unit = "core vertices" if manifest["vertex_order"] == "identity" else "DFS positions"
    print(f"sharded {args.index} into {layout} ({args.boundaries} boundaries)")
    for shard in manifest["shards"]:
        print(
            f"  {shard['file']}: {unit} [{shard['lo']}, {shard['hi']}), "
            f"{shard['num_entries']} label entries"
        )
    print("serve it with: repro query --shards " + str(args.index) + " s,t ...")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.shards:
        from repro.serving import ShardRouter

        oracle = ShardRouter(args.index)
    else:
        oracle = HC2LIndex.load(
            args.index, allow_pickle=args.allow_pickle, mmap_labels=args.mmap
        )
    pairs = _parse_pairs(args)
    if not pairs:
        print("no query pairs given (pass s,t arguments or --stdin)", file=sys.stderr)
        return 2
    for (s, t), value in zip(pairs, oracle.distances(pairs).tolist()):
        print(f"{s}\t{t}\t{value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.harness import run_cell
    from repro.experiments.methods import METHOD_BUILDERS
    from repro.experiments.report import render_table
    from repro.experiments.workloads import random_pairs

    graph = _load_graph(args)
    methods = [name.strip() for name in args.methods.split(",") if name.strip()]
    unknown = [name for name in methods if name not in METHOD_BUILDERS]
    if unknown:
        print(f"unknown methods: {', '.join(unknown)}", file=sys.stderr)
        return 2
    pairs = random_pairs(graph, args.queries, seed=17)
    rows = []
    for name in methods:
        cell = run_cell(METHOD_BUILDERS[name], graph, pairs, dataset_name="cli")
        row = {
            "method": name,
            "query_us": round(cell.query_microseconds, 3),
            "label_size_bytes": cell.label_size_bytes,
            "construction_s": round(cell.construction_seconds, 3),
            "avg_hubs": round(cell.average_hubs, 1),
        }
        # every method answers the batch protocol; report the batched number
        if "batch_query_microseconds" in cell.extra:
            row["batch_us"] = round(cell.extra["batch_query_microseconds"], 3)
        rows.append(row)
    print(render_table(rows, title=f"comparison on {graph.num_vertices} vertices"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.serving.fleet import FleetOracle

    fleet = FleetOracle(
        args.index,
        num_workers=args.workers,
        window_seconds=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        wire=args.wire,
        shared_cache_slots=args.shared_cache_slots,
    )
    try:
        host, port = fleet.start_tcp(args.host, args.port)
        cache = (
            f"shared cache {args.shared_cache_slots} slots"
            if args.shared_cache_slots
            else "shared cache off"
        )
        print(
            f"fleet serving {args.index} on {host}:{port} with "
            f"{args.workers} workers (wire={args.wire}, {cache})"
        )
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host} {port}\n")
        try:
            if args.duration is not None:
                time.sleep(args.duration)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            print("interrupted; draining ...")
    finally:
        fleet.close()
    print("fleet stopped")
    return 0


def _cmd_fleet_bench(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro.experiments.fleet import fleet_latency_rows

    index = HC2LIndex.load(args.index, allow_pickle=args.allow_pickle)
    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]
    if not worker_counts:
        print("no worker counts given", file=sys.stderr)
        return 2
    wires = [w.strip() for w in args.wires.split(",") if w.strip()]
    if not wires:
        print("no wire modes given", file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory() as workdir:
        rows = fleet_latency_rows(
            index,
            index.graph,
            workdir,
            worker_counts=worker_counts,
            num_shards=args.shards,
            num_clients=args.clients,
            num_batches=args.batches,
            batch_size=args.batch_size,
            wires=wires,
            shared_cache_slots=args.shared_cache_slots,
        )
    print(json.dumps(rows, indent=2))
    return 0


def _cmd_reload(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serving.fleet import FleetClient

    async def run() -> dict:
        client = await FleetClient.connect(args.host, args.port)
        try:
            return await asyncio.wait_for(client.reload(), timeout=args.timeout)
        finally:
            await client.aclose()

    try:
        reply = asyncio.run(run())
    except (ConnectionError, OSError, asyncio.TimeoutError) as error:
        print(f"reload failed: {error!r}", file=sys.stderr)
        return 1
    print(json.dumps(reply, indent=2))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    network = synthetic_road_network(
        RoadNetworkSpec("generated", num_vertices=args.vertices, seed=args.seed)
    )
    graph = network.graph(args.weighting)
    write_dimacs(graph, args.output, comment=f"synthetic road network seed={args.seed}")
    print(f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges to {args.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro.cli`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "build": _cmd_build,
        "shard": _cmd_shard,
        "query": _cmd_query,
        "compare": _cmd_compare,
        "serve": _cmd_serve,
        "fleet-bench": _cmd_fleet_bench,
        "reload": _cmd_reload,
        "generate": _cmd_generate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())

