"""FIFO push-relabel (preflow-push) maximum flow on flat residual arrays.

The solver consumes the same representation as
:func:`repro.flow.vertex_cut._split_network_arrays`: paired residual
edges in flat arrays, where the forward copy of edge ``e`` sits at index
``2 * e`` and its reverse at ``2 * e + 1`` (so ``index ^ 1`` addresses
the partner), grouped by tail vertex through an ``indptr`` prefix array.
No per-node objects or adjacency dicts are materialised.

Both classic heuristics are implemented:

* **global relabeling** - heights are periodically reset to exact
  residual BFS distances (to the sink for nodes that can still reach it,
  ``n`` plus the distance to the source for the rest), which keeps the
  labels tight after the preflow has reshaped the residual graph;
* **gap relabeling** - when some height level below ``n`` empties, every
  node stranded above the gap is lifted straight past ``n`` (it can no
  longer reach the sink, so its excess can only flow back to the
  source).

The algorithm is run to **completion** (no active vertices left), not
just to the end of the first phase: callers extract *both* canonical
minimum vertex cuts from residual reachability, and only a genuine
maximum flow - not a maximum preflow, whose stranded excess distorts the
residual graph - yields the canonical source- and sink-side cuts that
every other solver (Dinitz, Edmonds-Karp, scipy) produces.

The kernel is deliberately dependency-free (pure python loops over flat
lists); :mod:`repro.flow.vertex_cut` selects it for large regions under
``flow_method="push_relabel"`` and delegates small regions to the
compact Edmonds-Karp loop, exactly as the ``matrix`` method delegates to
its own small-region solver.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

import numpy as np

__all__ = ["push_relabel_max_flow"]


def push_relabel_max_flow(
    num_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    cap: np.ndarray,
    source: int,
    sink: int,
) -> Tuple[int, np.ndarray, np.ndarray]:
    """Maximum ``source``-``sink`` flow of the directed network ``(src, dst, cap)``.

    Capacities must be non-negative integers.  Returns
    ``(flow_value, res_src, res_dst)`` where the two arrays list every
    edge with positive residual capacity after a **maximum flow** (not a
    preflow) - the exact contract of
    :func:`repro.flow.vertex_cut._scipy_residual_edges`, so the caller's
    canonical-cut extraction works unchanged.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    cap = np.asarray(cap, dtype=np.int64)
    if cap.size and int(cap.min()) < 0:
        raise ValueError("capacities must be non-negative")
    m = len(src)

    # paired residual edges: forward edge 2e, reverse edge 2e + 1,
    # grouped by tail via one stable argsort (flat CSR layout)
    e_to_np = np.empty(2 * m, dtype=np.int64)
    e_to_np[0::2] = dst
    e_to_np[1::2] = src
    e_from_np = np.empty_like(e_to_np)
    e_from_np[0::2] = src
    e_from_np[1::2] = dst
    order = np.argsort(e_from_np, kind="stable")
    indptr_np = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(indptr_np[1:], e_from_np, 1)
    np.cumsum(indptr_np, out=indptr_np)

    # python lists for the discharge loops (several times faster than
    # numpy scalar indexing at this granularity)
    adj: List[int] = order.tolist()
    indptr: List[int] = indptr_np.tolist()
    to: List[int] = e_to_np.tolist()
    residual: List[int] = [0] * (2 * m)
    residual[0::2] = cap.tolist()

    n = num_nodes
    ceiling = 2 * n  # no node with excess ever needs a higher label
    excess = [0] * n

    def exact_heights() -> List[int]:
        """Exact residual BFS heights (the global relabeling step).

        Nodes that can reach the sink get their residual distance to it;
        the rest get ``n`` plus their residual distance to the source
        (their excess can only travel back).  Unreachable-either-way
        nodes (no excess by invariant) park at the ceiling.
        """
        height = [ceiling] * n
        height[sink] = 0
        queue = deque([sink])
        while queue:
            v = queue.popleft()
            next_height = height[v] + 1
            for i in range(indptr[v], indptr[v + 1]):
                e = adj[i]
                # edge to[e] <- v exists reversed; usable towards the
                # sink iff the partner (w -> v) still has residual
                if residual[e ^ 1] > 0:
                    w = to[e]
                    if height[w] == ceiling:
                        height[w] = next_height
                        queue.append(w)
        height[source] = n
        queue = deque([source])
        while queue:
            v = queue.popleft()
            next_height = height[v] + 1
            for i in range(indptr[v], indptr[v + 1]):
                e = adj[i]
                if residual[e ^ 1] > 0:
                    w = to[e]
                    if height[w] == ceiling and w != sink:
                        height[w] = next_height
                        queue.append(w)
        return height

    height = exact_heights()
    count = [0] * (ceiling + 1)
    for v in range(n):
        count[height[v]] += 1

    active: deque = deque()
    queued = [False] * n
    current = indptr[:-1]  # current-arc pointer per node (copy below)
    current = list(current)

    # saturate every source edge to start the preflow
    for i in range(indptr[source], indptr[source + 1]):
        e = adj[i]
        c = residual[e]
        if c > 0:
            w = to[e]
            residual[e] = 0
            residual[e ^ 1] += c
            excess[w] += c
            if w != sink and w != source and not queued[w]:
                queued[w] = True
                active.append(w)

    # global relabeling cadence: after ~|V| relabel operations the labels
    # have drifted far enough from the exact distances to be worth a BFS
    relabel_budget = n + 1
    relabels_since_global = 0

    while active:
        if relabels_since_global > relabel_budget:
            relabels_since_global = 0
            height = exact_heights()
            count = [0] * (ceiling + 1)
            for v in range(n):
                count[height[v]] += 1
            current = list(indptr[:-1])
        v = active.popleft()
        queued[v] = False
        ev = excess[v]
        while ev > 0:
            hv = height[v]
            i = current[v]
            end = indptr[v + 1]
            # push along admissible current arcs
            while i < end:
                e = adj[i]
                c = residual[e]
                if c > 0:
                    w = to[e]
                    if hv == height[w] + 1:
                        d = c if c < ev else ev
                        residual[e] = c - d
                        residual[e ^ 1] += d
                        ev -= d
                        if excess[w] == 0 and w != sink and w != source and not queued[w]:
                            queued[w] = True
                            active.append(w)
                        excess[w] += d
                        if ev == 0:
                            break
                i += 1
            current[v] = i
            if ev == 0:
                break
            # no admissible arc left: relabel v (with the gap heuristic)
            old = height[v]
            count[old] -= 1
            relabels_since_global += 1
            if count[old] == 0 and 0 < old < n:
                # gap at ``old``: no node below n can sit above an empty
                # level and still reach the sink - lift the whole band
                # past n so their excess heads back to the source
                for u in range(n):
                    hu = height[u]
                    if old < hu < n:
                        count[hu] -= 1
                        height[u] = n + 1
                        count[n + 1] += 1
                        current[u] = indptr[u]
                if old < height[v] < n:
                    pass  # v itself was lifted by the loop above
                else:
                    count[old] += 1  # restore, v relabels normally below
                if height[v] == n + 1:
                    continue  # re-enter the discharge with the new label
                count[old] -= 1
            lowest = None
            for i in range(indptr[v], end):
                e = adj[i]
                if residual[e] > 0:
                    hw = height[to[e]]
                    if lowest is None or hw < lowest:
                        lowest = hw
            if lowest is None or lowest + 1 > ceiling:
                # isolated excess cannot happen in a valid preflow; park
                # the node at the ceiling defensively
                height[v] = ceiling
                count[ceiling] += 1
                break
            height[v] = lowest + 1
            count[lowest + 1] += 1
            current[v] = indptr[v]
        excess[v] = ev

    flow_value = excess[sink]
    res = np.fromiter(residual, dtype=np.int64, count=2 * m)
    positive = res > 0
    return int(flow_value), e_from_np[positive], e_to_np[positive]
