"""Minimum s-t vertex cuts via the split-vertex max-flow reduction.

Given the cut region of a balanced partition, Algorithm 2 of the paper
contracts the two initial partitions into virtual terminals ``S`` and ``T``
and asks for a minimum set of *vertices* whose removal disconnects them.
The classical reduction [Bondy & Murty 1976] splits every vertex ``v`` into
``v_in`` and ``v_out`` joined by a unit-capacity "inner" edge, turns every
original edge into two infinite-capacity "outer" edges, and runs max flow;
saturated inner edges crossing the residual-reachability boundary are the
cut vertices.

The paper notes that the maximal flow admits two canonical vertex cuts: the
one closest to ``S`` (inner edges whose tail is residual-reachable from S)
and the one closest to ``T``.  Both are returned so the caller can pick the
more balanced option.

Four max-flow solvers back the reduction, selected by ``method`` (the
:data:`FLOW_METHODS` registry - ``HC2LParameters`` validation and the CLI
consume the same tuple):

``dinitz``
    The reference pure-Python Dinitz solver (:mod:`repro.flow.dinitz`),
    unchanged since the original reproduction.

``matrix``
    The split network as typed edge arrays, solved by
    ``scipy.sparse.csgraph.maximum_flow`` (C speed) - or, without scipy,
    by an Edmonds-Karp loop whose per-augmentation BFS runs as vectorised
    numpy frontier sweeps.  This is the fast path the ``csr`` construction
    backend routes the hierarchy phase through.  Regions below
    :data:`_MATRIX_SMALL_REGION` run the compact Edmonds-Karp loop instead
    (the sparse-constructor round trip dominates at that size).

``python_ek``
    The compact Edmonds-Karp loop on paired flat edge lists for *every*
    region size.  Dependency-free; the default of the pure-python
    backends and the small-region delegate of the other array methods.

``push_relabel``
    FIFO push-relabel with gap + global relabeling
    (:mod:`repro.flow.push_relabel`) on the flat residual arrays, run to a
    genuine maximum flow so residual reachability is canonical.  Regions
    below :data:`_PUSH_RELABEL_SMALL_REGION` delegate to the compact
    Edmonds-Karp loop, mirroring the ``matrix`` method.

All solvers return the *same* canonical cuts: for any maximum flow, the
set of nodes residual-reachable from the source is the unique minimal
source side over all minimum cuts (and symmetrically for the sink), so the
extracted vertex cuts do not depend on which maximum flow was found.  The
partition-layer backend tests and the cross-solver fuzz wall pin this
equality down on seeded graphs.

Note on solver choice: the unit inner edges bound the flow value by the
cut size, which is tiny in practice (single digits on the bench graphs).
Augmenting-path solvers therefore finish in a handful of BFS rounds and
the C-speed scipy Dinic is the fastest large-region route; push-relabel
is provided as a correct, interchangeable kernel behind the switch, not
as the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.flow.dinitz import DinitzMaxFlow, FlowNetwork

WorkingAdjacency = Dict[int, Dict[int, float]]

#: Capacity standing in for "infinite" on outer edges of the Dinitz path;
#: any value larger than the number of vertices works because inner edges
#: bound the flow.
_OUTER_CAPACITY = float("inf")

#: Every max-flow solver the split-vertex reduction can run on.  This is
#: the single registry: ``minimum_vertex_cut_region`` dispatch,
#: ``HC2LParameters`` validation and the ``repro build --flow-method`` CLI
#: choices all consume it (plus the ``"auto"`` sentinel below).
FLOW_METHODS = ("dinitz", "matrix", "python_ek", "push_relabel")

#: ``"auto"`` defers the choice to the shortest-path backend (heap and
#: dial pick ``python_ek``, csr picks ``matrix``); it is valid everywhere
#: a flow method is configured but never reaches
#: ``minimum_vertex_cut_region`` itself.
FLOW_METHOD_AUTO = "auto"

FLOW_METHOD_CHOICES = (FLOW_METHOD_AUTO,) + FLOW_METHODS


def check_flow_method(method: str, allow_auto: bool = True) -> str:
    """Validate a flow-method name against the registry, loudly.

    Raises a :class:`TypeError` for non-string specs and a
    :class:`ValueError` naming the valid set otherwise.  Returns the
    (unchanged) name so call sites can validate inline.
    """
    if not isinstance(method, str):
        raise TypeError(
            f"flow method must be a string, got {type(method).__name__}: {method!r}"
        )
    valid = FLOW_METHOD_CHOICES if allow_auto else FLOW_METHODS
    if method not in valid:
        raise ValueError(f"unknown flow method {method!r}; expected one of {valid}")
    return method


try:  # pragma: no cover - exercised via whichever env runs the suite
    from scipy.sparse import csr_matrix as _scipy_csr_matrix
    from scipy.sparse.csgraph import maximum_flow as _scipy_maximum_flow
    from scipy.sparse.csgraph import breadth_first_order as _scipy_breadth_first_order
except ImportError:  # pragma: no cover
    _scipy_csr_matrix = None
    _scipy_maximum_flow = None
    _scipy_breadth_first_order = None


@dataclass
class MinVertexCutResult:
    """Result of a minimum s-t vertex cut computation.

    Attributes
    ----------
    cut_size:
        The max-flow value, i.e. the size of a minimum vertex cut.
    cut_closest_to_source / cut_closest_to_sink:
        The two canonical minimum vertex cuts extracted from the residual
        graph.  Both have exactly ``cut_size`` vertices.
    """

    cut_size: int
    cut_closest_to_source: List[int]
    cut_closest_to_sink: List[int]

    def candidate_cuts(self) -> List[List[int]]:
        """Both canonical cuts, de-duplicated."""
        cuts = [self.cut_closest_to_source]
        if set(self.cut_closest_to_sink) != set(self.cut_closest_to_source):
            cuts.append(self.cut_closest_to_sink)
        return cuts


def minimum_st_vertex_cut(
    adjacency: WorkingAdjacency,
    source_attached: Iterable[int],
    sink_attached: Iterable[int],
    method: str = "dinitz",
) -> MinVertexCutResult:
    """Minimum vertex cut separating the virtual terminals S and T.

    Parameters
    ----------
    adjacency:
        Working adjacency of the flow subgraph (the cut region plus the
        border vertices ``C_A``/``C_B`` of Algorithm 2).  Every vertex in
        this mapping may become a cut vertex.
    source_attached:
        Vertices receiving an edge from the virtual source ``S``
        (``N_S`` in Algorithm 2).
    sink_attached:
        Vertices receiving an edge to the virtual sink ``T`` (``N_T``).
    method:
        One of :data:`FLOW_METHODS` (see the module docstring); all
        produce identical cuts.

    Returns
    -------
    MinVertexCutResult
        The cut size and both canonical cuts.  When S and T are already
        disconnected inside the region the cut is empty.
    """
    vertices: List[int] = sorted(adjacency)
    index = {v: i for i, v in enumerate(vertices)}
    tails: List[int] = []
    heads: List[int] = []
    for v in vertices:
        vi = index[v]
        for w in adjacency[v]:
            wi = index.get(w)
            if wi is None:
                continue
            # each undirected edge appears once per direction of travel
            tails.append(vi)
            heads.append(wi)
    attach_s = sorted(index[v] for v in set(source_attached) if v in index)
    attach_t = sorted(index[v] for v in set(sink_attached) if v in index)
    return minimum_vertex_cut_region(
        vertices, tails, heads, attach_s, attach_t, method=method
    )


def minimum_vertex_cut_region(
    vertices: Sequence[int],
    tails: Sequence[int],
    heads: Sequence[int],
    attach_s: Sequence[int],
    attach_t: Sequence[int],
    method: str = "dinitz",
) -> MinVertexCutResult:
    """Minimum S-T vertex cut of a flow region given as edge arrays.

    ``vertices`` maps region-local ids to original vertex ids; ``tails`` /
    ``heads`` list every *directed* edge of the region (both directions of
    each undirected edge) in local ids; ``attach_s`` / ``attach_t`` are the
    local ids attached to the virtual terminals.  This is the entry point
    the array-based balanced cut uses - no dict adjacency is materialised.
    """
    check_flow_method(method, allow_auto=False)
    k = len(vertices)

    solver = _SOLVERS[method]
    source_side, sink_side, flow_value = solver(k, tails, heads, attach_s, attach_t)

    # a cut vertex is one whose inner edge is saturated and separates the
    # reachable side from the rest; slicing the interleaved in/out masks
    # beats a python scan over every region vertex
    source_side = np.asarray(source_side, dtype=bool)
    sink_side = np.asarray(sink_side, dtype=bool)
    near_source = np.nonzero(source_side[0 : 2 * k : 2] & ~source_side[1 : 2 * k : 2])[0]
    near_sink = np.nonzero(sink_side[1 : 2 * k : 2] & ~sink_side[0 : 2 * k : 2])[0]
    cut_near_source = [vertices[i] for i in near_source.tolist()]
    cut_near_sink = [vertices[i] for i in near_sink.tolist()]
    return MinVertexCutResult(
        cut_size=int(round(flow_value)),
        cut_closest_to_source=sorted(cut_near_source),
        cut_closest_to_sink=sorted(cut_near_sink),
    )


# --------------------------------------------------------------------- #
# solvers
# --------------------------------------------------------------------- #
def _solve_dinitz(
    k: int,
    tails: Sequence[int],
    heads: Sequence[int],
    attach_s: Sequence[int],
    attach_t: Sequence[int],
) -> Tuple[Sequence[bool], Sequence[bool], float]:
    """The reference Dinitz solver over a :class:`FlowNetwork`."""
    source_node = 2 * k
    sink_node = 2 * k + 1
    network = FlowNetwork(2 * k + 2)
    for i in range(k):
        network.add_edge(2 * i, 2 * i + 1, 1.0)
    for vi, wi in zip(tails, heads):
        network.add_edge(2 * vi + 1, 2 * wi, _OUTER_CAPACITY)
    for vi in attach_s:
        network.add_edge(source_node, 2 * vi, _OUTER_CAPACITY)
    for vi in attach_t:
        network.add_edge(2 * vi + 1, sink_node, _OUTER_CAPACITY)

    solver = DinitzMaxFlow(network, source_node, sink_node)
    flow_value = solver.solve(flow_limit=float(k) + 1.0)
    reach_source = solver.source_side()
    reach_sink = solver.sink_side()
    num_nodes = 2 * k + 2
    source_side = [node in reach_source for node in range(num_nodes)]
    sink_side = [node in reach_sink for node in range(num_nodes)]
    return source_side, sink_side, flow_value


def _split_network_arrays(
    k: int,
    tails: Sequence[int],
    heads: Sequence[int],
    attach_s: Sequence[int],
    attach_t: Sequence[int],
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, int, int]:
    """The split network as ``(num_nodes, src, dst, cap, source, sink)``.

    Capacities are integers: 1 on inner edges, ``k + 1`` (an unreachable
    bound - every augmenting path crosses a unit inner edge, so no edge
    ever carries more than ``k`` units) standing in for infinity on outer
    and terminal edges.  Saturation behaviour therefore matches the
    float-infinity Dinitz network exactly.
    """
    big = k + 1
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    attach_s = np.asarray(attach_s, dtype=np.int64)
    attach_t = np.asarray(attach_t, dtype=np.int64)
    inner = np.arange(k, dtype=np.int64)
    src = np.concatenate([2 * inner, 2 * tails + 1, np.full(len(attach_s), 2 * k), 2 * attach_t + 1])
    dst = np.concatenate([2 * inner + 1, 2 * heads, 2 * attach_s, np.full(len(attach_t), 2 * k + 1)])
    cap = np.concatenate(
        [
            np.ones(k, dtype=np.int64),
            np.full(len(tails) + len(attach_s) + len(attach_t), big, dtype=np.int64),
        ]
    )
    return 2 * k + 2, src, dst, cap, 2 * k, 2 * k + 1


#: Regions smaller than this solve faster with the compact Edmonds-Karp
#: loop than with a scipy matrix round-trip (fixed sparse-constructor
#: cost).  Measured on the 3.2k bench region population: with the
#: aligned-residual scipy path and the early-exit BFS in the EK loop the
#: crossover sits near 200 - the EK's cheap construction wins as long as
#: the handful of augmenting BFS rounds stays cheap.
_MATRIX_SMALL_REGION = 192

#: The push-relabel kernel pays per-node bookkeeping that only amortises
#: on larger regions; below this it delegates to the compact Edmonds-Karp
#: loop, mirroring the ``matrix`` method's small-region route.
_PUSH_RELABEL_SMALL_REGION = 64


def _solve_matrix(
    k: int,
    tails: Sequence[int],
    heads: Sequence[int],
    attach_s: Sequence[int],
    attach_t: Sequence[int],
) -> Tuple[Sequence[bool], Sequence[bool], float]:
    """Array-based solver family for the ``matrix`` method.

    Small regions run a compact Edmonds-Karp over paired edge arrays (the
    flow value is bounded by the cut size, so only a handful of BFS rounds
    run); larger regions go through ``scipy.sparse.csgraph.maximum_flow``
    (or the numpy Edmonds-Karp without scipy).  All of them extract the
    canonical cuts from residual reachability, which is identical for
    every maximum flow - mixing solvers never changes a cut.
    """
    if k < _MATRIX_SMALL_REGION:
        return _solve_python_ek(k, tails, heads, attach_s, attach_t)
    num_nodes, src, dst, cap, source, sink = _split_network_arrays(
        k, tails, heads, attach_s, attach_t
    )
    if _scipy_maximum_flow is not None and _scipy_csr_matrix is not None:
        flow_value, res_src, res_dst = _scipy_residual_edges(num_nodes, src, dst, cap, source, sink)
    else:
        flow_value, res_src, res_dst = _numpy_residual_edges(num_nodes, src, dst, cap, source, sink)
    source_side = _reachable(num_nodes, res_src, res_dst, source)
    sink_side = _reachable(num_nodes, res_dst, res_src, sink)  # reversed edges
    return source_side, sink_side, float(flow_value)


def _solve_push_relabel(
    k: int,
    tails: Sequence[int],
    heads: Sequence[int],
    attach_s: Sequence[int],
    attach_t: Sequence[int],
) -> Tuple[Sequence[bool], Sequence[bool], float]:
    """FIFO push-relabel solver for the ``push_relabel`` method.

    Large regions run the gap + global-relabel kernel of
    :mod:`repro.flow.push_relabel` on the flat residual arrays; small
    regions delegate to the compact Edmonds-Karp loop (same split as the
    ``matrix`` method).  Cuts are canonical either way.
    """
    if k < _PUSH_RELABEL_SMALL_REGION:
        return _solve_python_ek(k, tails, heads, attach_s, attach_t)
    from repro.flow.push_relabel import push_relabel_max_flow

    num_nodes, src, dst, cap, source, sink = _split_network_arrays(
        k, tails, heads, attach_s, attach_t
    )
    flow_value, res_src, res_dst = push_relabel_max_flow(
        num_nodes, src, dst, cap, source, sink
    )
    source_side = _reachable(num_nodes, res_src, res_dst, source)
    sink_side = _reachable(num_nodes, res_dst, res_src, sink)  # reversed edges
    return source_side, sink_side, float(flow_value)


def _solve_python_ek(
    k: int,
    tails: Sequence[int],
    heads: Sequence[int],
    attach_s: Sequence[int],
    attach_t: Sequence[int],
) -> Tuple[List[bool], List[bool], float]:
    """Compact Edmonds-Karp over paired edge lists (small regions).

    Integer capacities, flat ``e_to`` / ``e_cap`` lists with ``index ^ 1``
    partner addressing, one BFS per unit of flow.  The unit inner edges
    bound the augmentation count by the cut size.
    """
    from collections import deque

    # The residual arrays are assembled vectorised: forward edge 2j and
    # backward edge 2j+1 for split-network edge j, adjacency lists carved
    # out of one stable counting sort by edge tail.  The stable sort keeps
    # edges in id order within each vertex, i.e. the exact adjacency order
    # an append-per-edge python loop would produce.
    num_nodes, src, dst, cap, source, sink = _split_network_arrays(
        k, tails, heads, attach_s, attach_t
    )
    num_edges = len(src)
    e_to_np = np.empty(2 * num_edges, dtype=np.int64)
    e_to_np[0::2] = dst
    e_to_np[1::2] = src
    e_from_np = np.empty(2 * num_edges, dtype=np.int64)
    e_from_np[0::2] = src
    e_from_np[1::2] = dst
    e_cap_np = np.zeros(2 * num_edges, dtype=np.int64)
    e_cap_np[0::2] = cap
    order = np.argsort(e_from_np, kind="stable")
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(e_from_np, minlength=num_nodes), out=indptr[1:])
    flat_adj = order.tolist()
    bounds = indptr.tolist()
    e_to: List[int] = e_to_np.tolist()
    e_cap: List[int] = e_cap_np.tolist()
    adjacency: List[List[int]] = [
        flat_adj[bounds[v] : bounds[v + 1]] for v in range(num_nodes)
    ]

    total = 0
    while True:
        parent = [-1] * num_nodes
        parent[source] = -2
        queue = deque([source])
        while queue and parent[sink] == -1:
            v = queue.popleft()
            for edge in adjacency[v]:
                if e_cap[edge] > 0:
                    w = e_to[edge]
                    if parent[w] == -1:
                        # the first labelling wins, so stopping the scan
                        # as soon as the sink is labelled augments the
                        # exact same path the full sweep would pick
                        if w == sink:
                            parent[w] = edge
                            break
                        parent[w] = edge
                        queue.append(w)
        if parent[sink] == -1:
            break
        path: List[int] = []
        node = sink
        while node != source:
            edge = parent[node]
            path.append(edge)
            node = e_to[edge ^ 1]
        bottleneck = min(e_cap[edge] for edge in path)
        for edge in path:
            e_cap[edge] -= bottleneck
            e_cap[edge ^ 1] += bottleneck
        total += bottleneck

    # the final failing BFS explored the full residual graph from the
    # source (the sink early-exit never fired), so its labels ARE the
    # source-side reachability - no separate sweep needed
    source_side = [p != -1 for p in parent]
    sink_side = [False] * num_nodes
    sink_side[sink] = True
    stack = [sink]
    while stack:
        v = stack.pop()
        # an edge u -> v is usable towards the sink iff its residual
        # capacity is positive, so scan v's partner edges (as in Dinitz)
        for edge in adjacency[v]:
            if e_cap[edge ^ 1] > 0:
                w = e_to[edge]
                if not sink_side[w]:
                    sink_side[w] = True
                    stack.append(w)
    return source_side, sink_side, float(total)


def _scipy_residual_edges(
    num_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    cap: np.ndarray,
    source: int,
    sink: int,
) -> Tuple[int, np.ndarray, np.ndarray]:
    """Max flow via scipy; returns the positive-residual edge list.

    The capacity matrix is handed to scipy with an explicit zero-capacity
    reverse for every edge (the split network never carries anti-parallel
    capacity edges, so the symmetric pattern has no collisions).  scipy's
    ``result.flow`` lives on exactly that union pattern, so when the
    returned indices line up with the input's the residual is one aligned
    ``capacity - flow`` array subtraction instead of a sparse-matrix
    subtraction plus COO round-trip (~3x less per region).
    """
    double_src = np.concatenate([src, dst])
    double_dst = np.concatenate([dst, src])
    double_cap = np.concatenate([cap, np.zeros(len(cap), dtype=cap.dtype)])
    order = np.lexsort((double_dst, double_src))
    double_src = double_src[order]
    double_dst = double_dst[order]
    double_cap = double_cap[order]
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(double_src, minlength=num_nodes), out=indptr[1:])
    matrix = _scipy_csr_matrix(
        (double_cap, double_dst, indptr), shape=(num_nodes, num_nodes)
    )
    result = _scipy_maximum_flow(matrix, source, sink)
    flow = result.flow
    if np.array_equal(flow.indptr, matrix.indptr) and np.array_equal(
        flow.indices, matrix.indices
    ):
        residual_data = double_cap - flow.data
        positive = residual_data > 0
        return int(result.flow_value), double_src[positive], double_dst[positive]
    # defensive fallback: alignment is a scipy implementation detail
    residual = (matrix - flow).tocoo()
    positive = residual.data > 0
    return int(result.flow_value), residual.row[positive], residual.col[positive]


def _numpy_residual_edges(
    num_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    cap: np.ndarray,
    source: int,
    sink: int,
) -> Tuple[int, np.ndarray, np.ndarray]:
    """Edmonds-Karp with numpy frontier BFS (the scipy-free fast path).

    Augmenting paths are found by a vectorised BFS that records, for every
    newly reached node, the residual edge it was reached through; the path
    walk-back and capacity update are short scalar loops (path length, not
    graph size).  Unit inner capacities bound the number of augmentations
    by the cut size, so only a handful of BFS rounds run per region.
    """
    # paired residual edges: forward edge 2e, reverse edge 2e + 1
    e_to = np.empty(2 * len(src), dtype=np.int64)
    e_to[0::2] = dst
    e_to[1::2] = src
    e_from = np.empty_like(e_to)
    e_from[0::2] = src
    e_from[1::2] = dst
    e_cap = np.zeros(2 * len(src), dtype=np.int64)
    e_cap[0::2] = cap

    order = np.argsort(e_from, kind="stable")
    sorted_edges = order  # edge ids grouped by tail node
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(indptr[1:], e_from, 1)
    np.cumsum(indptr, out=indptr)

    total = 0
    no_parent = 2 * len(src)  # larger than any edge id
    while True:
        parent_edge = np.full(num_nodes, no_parent, dtype=np.int64)
        visited = np.zeros(num_nodes, dtype=bool)
        visited[source] = True
        frontier = np.asarray([source], dtype=np.int64)
        while frontier.size and not visited[sink]:
            edges = sorted_edges[_frontier_slots(indptr, frontier)]
            usable = e_cap[edges] > 0
            edges = edges[usable]
            targets = e_to[edges]
            fresh = ~visited[targets]
            edges = edges[fresh]
            targets = targets[fresh]
            if edges.size == 0:
                break
            # several edges may reach the same node in one sweep; keep the
            # lowest edge id per target (deterministic, any choice yields
            # the same final cut)
            np.minimum.at(parent_edge, targets, edges)
            frontier = np.unique(targets)
            visited[frontier] = True
        if not visited[sink]:
            break
        # walk the augmenting path back from the sink
        path: List[int] = []
        node = sink
        while node != source:
            edge = int(parent_edge[node])
            path.append(edge)
            node = int(e_from[edge])
        bottleneck = int(min(e_cap[edge] for edge in path))
        for edge in path:
            e_cap[edge] -= bottleneck
            e_cap[edge ^ 1] += bottleneck
        total += bottleneck

    positive = e_cap > 0
    return total, e_from[positive], e_to[positive]


def _frontier_slots(indptr: np.ndarray, frontier: np.ndarray) -> np.ndarray:
    """Flat CSR slot indices of every entry owned by the frontier nodes.

    The one subtle piece of index arithmetic both numpy BFS loops share:
    for each node ``v`` in ``frontier`` it expands to the index range
    ``indptr[v] .. indptr[v + 1] - 1``, concatenated.
    """
    counts = indptr[frontier + 1] - indptr[frontier]
    return np.repeat(indptr[frontier], counts) + (
        np.arange(int(counts.sum()), dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )


def _reachable(num_nodes: int, src: np.ndarray, dst: np.ndarray, start: int) -> np.ndarray:
    """Boolean reachability mask over ``(src, dst)`` edges from ``start``.

    With scipy available the scan runs through ``breadth_first_order`` on
    a boolean CSR matrix (a C loop; ~5x faster than the numpy frontier
    sweep on the large bench regions, where this scan used to be half the
    scipy flow path's cost).  The numpy sweep remains the fallback.
    """
    if _scipy_breadth_first_order is not None and _scipy_csr_matrix is not None:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        # build the CSR triple by counting sort instead of the COO
        # constructor round-trip; residual edge lists arrive row-sorted
        # from the aligned scipy path, so the argsort usually skips
        if len(src) and np.any(np.diff(src) < 0):
            order = np.argsort(src, kind="stable")
            src = src[order]
            dst = dst[order]
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=num_nodes), out=indptr[1:])
        matrix = _scipy_csr_matrix(
            (np.ones(len(src), dtype=np.int8), dst, indptr),
            shape=(num_nodes, num_nodes),
        )
        nodes = _scipy_breadth_first_order(
            matrix, start, directed=True, return_predecessors=False
        )
        seen = np.zeros(num_nodes, dtype=bool)
        seen[nodes] = True
        return seen
    order = np.argsort(src, kind="stable")
    dst = np.asarray(dst, dtype=np.int64)[order]
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(indptr[1:], np.asarray(src, dtype=np.int64), 1)
    np.cumsum(indptr, out=indptr)
    seen = np.zeros(num_nodes, dtype=bool)
    seen[start] = True
    frontier = np.asarray([start], dtype=np.int64)
    while frontier.size:
        targets = dst[_frontier_slots(indptr, frontier)]
        targets = np.unique(targets[~seen[targets]])
        seen[targets] = True
        frontier = targets
    return seen


#: Method-name -> solver dispatch for :func:`minimum_vertex_cut_region`.
#: Keys mirror :data:`FLOW_METHODS` exactly (checked by the test suite).
_SOLVERS = {
    "dinitz": _solve_dinitz,
    "matrix": _solve_matrix,
    "python_ek": _solve_python_ek,
    "push_relabel": _solve_push_relabel,
}


def is_vertex_cut(
    adjacency: WorkingAdjacency,
    cut: Sequence[int],
    side_a: Iterable[int],
    side_b: Iterable[int],
) -> bool:
    """Check that removing ``cut`` disconnects every ``side_a`` vertex from ``side_b``.

    Used by tests and by debug assertions in the hierarchy builder.
    """
    cut_set = set(cut)
    targets = {v for v in side_b if v not in cut_set}
    if not targets:
        return True
    seen: Set[int] = set()
    stack = [v for v in side_a if v not in cut_set]
    seen.update(stack)
    while stack:
        v = stack.pop()
        if v in targets:
            return False
        for w in adjacency.get(v, ()):
            if w in cut_set or w in seen or w not in adjacency:
                continue
            seen.add(w)
            stack.append(w)
    return True
