"""Minimum s-t vertex cuts via the split-vertex max-flow reduction.

Given the cut region of a balanced partition, Algorithm 2 of the paper
contracts the two initial partitions into virtual terminals ``S`` and ``T``
and asks for a minimum set of *vertices* whose removal disconnects them.
The classical reduction [Bondy & Murty 1976] splits every vertex ``v`` into
``v_in`` and ``v_out`` joined by a unit-capacity "inner" edge, turns every
original edge into two infinite-capacity "outer" edges, and runs max flow;
saturated inner edges crossing the residual-reachability boundary are the
cut vertices.

The paper notes that the maximal flow admits two canonical vertex cuts: the
one closest to ``S`` (inner edges whose tail is residual-reachable from S)
and the one closest to ``T``.  Both are returned so the caller can pick the
more balanced option.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

from repro.flow.dinitz import DinitzMaxFlow, FlowNetwork

WorkingAdjacency = Dict[int, Dict[int, float]]

#: Capacity standing in for "infinite" on outer edges; any value larger than
#: the number of vertices works because inner edges bound the flow.
_OUTER_CAPACITY = float("inf")


@dataclass
class MinVertexCutResult:
    """Result of a minimum s-t vertex cut computation.

    Attributes
    ----------
    cut_size:
        The max-flow value, i.e. the size of a minimum vertex cut.
    cut_closest_to_source / cut_closest_to_sink:
        The two canonical minimum vertex cuts extracted from the residual
        graph.  Both have exactly ``cut_size`` vertices.
    """

    cut_size: int
    cut_closest_to_source: List[int]
    cut_closest_to_sink: List[int]

    def candidate_cuts(self) -> List[List[int]]:
        """Both canonical cuts, de-duplicated."""
        cuts = [self.cut_closest_to_source]
        if set(self.cut_closest_to_sink) != set(self.cut_closest_to_source):
            cuts.append(self.cut_closest_to_sink)
        return cuts


def minimum_st_vertex_cut(
    adjacency: WorkingAdjacency,
    source_attached: Iterable[int],
    sink_attached: Iterable[int],
) -> MinVertexCutResult:
    """Minimum vertex cut separating the virtual terminals S and T.

    Parameters
    ----------
    adjacency:
        Working adjacency of the flow subgraph (the cut region plus the
        border vertices ``C_A``/``C_B`` of Algorithm 2).  Every vertex in
        this mapping may become a cut vertex.
    source_attached:
        Vertices receiving an edge from the virtual source ``S``
        (``N_S`` in Algorithm 2).
    sink_attached:
        Vertices receiving an edge to the virtual sink ``T`` (``N_T``).

    Returns
    -------
    MinVertexCutResult
        The cut size and both canonical cuts.  When S and T are already
        disconnected inside the region the cut is empty.
    """
    vertices: List[int] = sorted(adjacency)
    index = {v: i for i, v in enumerate(vertices)}
    k = len(vertices)

    def v_in(i: int) -> int:
        return 2 * i

    def v_out(i: int) -> int:
        return 2 * i + 1

    source_node = 2 * k
    sink_node = 2 * k + 1
    network = FlowNetwork(2 * k + 2)

    inner_edges: List[int] = []
    for i in range(k):
        inner_edges.append(network.add_edge(v_in(i), v_out(i), 1.0))

    for v in vertices:
        vi = index[v]
        for w in adjacency[v]:
            wi = index.get(w)
            if wi is None:
                continue
            # add each undirected edge once per direction of travel
            network.add_edge(v_out(vi), v_in(wi), _OUTER_CAPACITY)

    attached_to_source: Set[int] = {v for v in source_attached if v in index}
    attached_to_sink: Set[int] = {v for v in sink_attached if v in index}
    for v in attached_to_source:
        network.add_edge(source_node, v_in(index[v]), _OUTER_CAPACITY)
    for v in attached_to_sink:
        network.add_edge(v_out(index[v]), sink_node, _OUTER_CAPACITY)

    solver = DinitzMaxFlow(network, source_node, sink_node)
    flow_value = solver.solve(flow_limit=float(k) + 1.0)
    cut_size = int(round(flow_value))

    source_side = solver.source_side()
    sink_side = solver.sink_side()

    cut_near_source = [
        vertices[i]
        for i in range(k)
        if v_in(i) in source_side and v_out(i) not in source_side
    ]
    cut_near_sink = [
        vertices[i]
        for i in range(k)
        if v_out(i) in sink_side and v_in(i) not in sink_side
    ]
    return MinVertexCutResult(
        cut_size=cut_size,
        cut_closest_to_source=sorted(cut_near_source),
        cut_closest_to_sink=sorted(cut_near_sink),
    )


def is_vertex_cut(
    adjacency: WorkingAdjacency,
    cut: Sequence[int],
    side_a: Iterable[int],
    side_b: Iterable[int],
) -> bool:
    """Check that removing ``cut`` disconnects every ``side_a`` vertex from ``side_b``.

    Used by tests and by debug assertions in the hierarchy builder.
    """
    cut_set = set(cut)
    targets = {v for v in side_b if v not in cut_set}
    if not targets:
        return True
    seen: Set[int] = set()
    stack = [v for v in side_a if v not in cut_set]
    seen.update(stack)
    while stack:
        v = stack.pop()
        if v in targets:
            return False
        for w in adjacency.get(v, ()):
            if w in cut_set or w in seen or w not in adjacency:
                continue
            seen.add(w)
            stack.append(w)
    return True
