"""Minimum s-t vertex cuts via the split-vertex max-flow reduction.

Given the cut region of a balanced partition, Algorithm 2 of the paper
contracts the two initial partitions into virtual terminals ``S`` and ``T``
and asks for a minimum set of *vertices* whose removal disconnects them.
The classical reduction [Bondy & Murty 1976] splits every vertex ``v`` into
``v_in`` and ``v_out`` joined by a unit-capacity "inner" edge, turns every
original edge into two infinite-capacity "outer" edges, and runs max flow;
saturated inner edges crossing the residual-reachability boundary are the
cut vertices.

The paper notes that the maximal flow admits two canonical vertex cuts: the
one closest to ``S`` (inner edges whose tail is residual-reachable from S)
and the one closest to ``T``.  Both are returned so the caller can pick the
more balanced option.

Two max-flow solvers back the reduction, selected by ``method``:

``dinitz``
    The reference pure-Python Dinitz solver (:mod:`repro.flow.dinitz`),
    unchanged since the original reproduction.

``matrix``
    The split network as typed edge arrays, solved by
    ``scipy.sparse.csgraph.maximum_flow`` (C speed) - or, without scipy,
    by an Edmonds-Karp loop whose per-augmentation BFS runs as vectorised
    numpy frontier sweeps.  This is the fast path the ``csr`` construction
    backend routes the hierarchy phase through.

Both solvers return the *same* canonical cuts: for any maximum flow, the
set of nodes residual-reachable from the source is the unique minimal
source side over all minimum cuts (and symmetrically for the sink), so the
extracted vertex cuts do not depend on which maximum flow was found.  The
partition-layer backend tests pin this equality down on seeded graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.flow.dinitz import DinitzMaxFlow, FlowNetwork

WorkingAdjacency = Dict[int, Dict[int, float]]

#: Capacity standing in for "infinite" on outer edges of the Dinitz path;
#: any value larger than the number of vertices works because inner edges
#: bound the flow.
_OUTER_CAPACITY = float("inf")

FLOW_METHODS = ("dinitz", "matrix")

try:  # pragma: no cover - exercised via whichever env runs the suite
    from scipy.sparse import csr_matrix as _scipy_csr_matrix
    from scipy.sparse.csgraph import maximum_flow as _scipy_maximum_flow
except ImportError:  # pragma: no cover
    _scipy_csr_matrix = None
    _scipy_maximum_flow = None


@dataclass
class MinVertexCutResult:
    """Result of a minimum s-t vertex cut computation.

    Attributes
    ----------
    cut_size:
        The max-flow value, i.e. the size of a minimum vertex cut.
    cut_closest_to_source / cut_closest_to_sink:
        The two canonical minimum vertex cuts extracted from the residual
        graph.  Both have exactly ``cut_size`` vertices.
    """

    cut_size: int
    cut_closest_to_source: List[int]
    cut_closest_to_sink: List[int]

    def candidate_cuts(self) -> List[List[int]]:
        """Both canonical cuts, de-duplicated."""
        cuts = [self.cut_closest_to_source]
        if set(self.cut_closest_to_sink) != set(self.cut_closest_to_source):
            cuts.append(self.cut_closest_to_sink)
        return cuts


def minimum_st_vertex_cut(
    adjacency: WorkingAdjacency,
    source_attached: Iterable[int],
    sink_attached: Iterable[int],
    method: str = "dinitz",
) -> MinVertexCutResult:
    """Minimum vertex cut separating the virtual terminals S and T.

    Parameters
    ----------
    adjacency:
        Working adjacency of the flow subgraph (the cut region plus the
        border vertices ``C_A``/``C_B`` of Algorithm 2).  Every vertex in
        this mapping may become a cut vertex.
    source_attached:
        Vertices receiving an edge from the virtual source ``S``
        (``N_S`` in Algorithm 2).
    sink_attached:
        Vertices receiving an edge to the virtual sink ``T`` (``N_T``).
    method:
        ``"dinitz"`` or ``"matrix"`` (see the module docstring); both
        produce identical cuts.

    Returns
    -------
    MinVertexCutResult
        The cut size and both canonical cuts.  When S and T are already
        disconnected inside the region the cut is empty.
    """
    vertices: List[int] = sorted(adjacency)
    index = {v: i for i, v in enumerate(vertices)}
    tails: List[int] = []
    heads: List[int] = []
    for v in vertices:
        vi = index[v]
        for w in adjacency[v]:
            wi = index.get(w)
            if wi is None:
                continue
            # each undirected edge appears once per direction of travel
            tails.append(vi)
            heads.append(wi)
    attach_s = sorted(index[v] for v in set(source_attached) if v in index)
    attach_t = sorted(index[v] for v in set(sink_attached) if v in index)
    return minimum_vertex_cut_region(
        vertices, tails, heads, attach_s, attach_t, method=method
    )


def minimum_vertex_cut_region(
    vertices: Sequence[int],
    tails: Sequence[int],
    heads: Sequence[int],
    attach_s: Sequence[int],
    attach_t: Sequence[int],
    method: str = "dinitz",
) -> MinVertexCutResult:
    """Minimum S-T vertex cut of a flow region given as edge arrays.

    ``vertices`` maps region-local ids to original vertex ids; ``tails`` /
    ``heads`` list every *directed* edge of the region (both directions of
    each undirected edge) in local ids; ``attach_s`` / ``attach_t`` are the
    local ids attached to the virtual terminals.  This is the entry point
    the array-based balanced cut uses - no dict adjacency is materialised.
    """
    if method not in FLOW_METHODS:
        raise ValueError(f"unknown flow method {method!r}; expected one of {FLOW_METHODS}")
    k = len(vertices)

    if method == "dinitz":
        source_side, sink_side, flow_value = _solve_dinitz(k, tails, heads, attach_s, attach_t)
    else:
        source_side, sink_side, flow_value = _solve_matrix(k, tails, heads, attach_s, attach_t)

    cut_near_source = [
        vertices[i]
        for i in range(k)
        if source_side[2 * i] and not source_side[2 * i + 1]
    ]
    cut_near_sink = [
        vertices[i]
        for i in range(k)
        if sink_side[2 * i + 1] and not sink_side[2 * i]
    ]
    return MinVertexCutResult(
        cut_size=int(round(flow_value)),
        cut_closest_to_source=sorted(cut_near_source),
        cut_closest_to_sink=sorted(cut_near_sink),
    )


# --------------------------------------------------------------------- #
# solvers
# --------------------------------------------------------------------- #
def _solve_dinitz(
    k: int,
    tails: Sequence[int],
    heads: Sequence[int],
    attach_s: Sequence[int],
    attach_t: Sequence[int],
) -> Tuple[Sequence[bool], Sequence[bool], float]:
    """The reference Dinitz solver over a :class:`FlowNetwork`."""
    source_node = 2 * k
    sink_node = 2 * k + 1
    network = FlowNetwork(2 * k + 2)
    for i in range(k):
        network.add_edge(2 * i, 2 * i + 1, 1.0)
    for vi, wi in zip(tails, heads):
        network.add_edge(2 * vi + 1, 2 * wi, _OUTER_CAPACITY)
    for vi in attach_s:
        network.add_edge(source_node, 2 * vi, _OUTER_CAPACITY)
    for vi in attach_t:
        network.add_edge(2 * vi + 1, sink_node, _OUTER_CAPACITY)

    solver = DinitzMaxFlow(network, source_node, sink_node)
    flow_value = solver.solve(flow_limit=float(k) + 1.0)
    reach_source = solver.source_side()
    reach_sink = solver.sink_side()
    num_nodes = 2 * k + 2
    source_side = [node in reach_source for node in range(num_nodes)]
    sink_side = [node in reach_sink for node in range(num_nodes)]
    return source_side, sink_side, flow_value


def _split_network_arrays(
    k: int,
    tails: Sequence[int],
    heads: Sequence[int],
    attach_s: Sequence[int],
    attach_t: Sequence[int],
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, int, int]:
    """The split network as ``(num_nodes, src, dst, cap, source, sink)``.

    Capacities are integers: 1 on inner edges, ``k + 1`` (an unreachable
    bound - every augmenting path crosses a unit inner edge, so no edge
    ever carries more than ``k`` units) standing in for infinity on outer
    and terminal edges.  Saturation behaviour therefore matches the
    float-infinity Dinitz network exactly.
    """
    big = k + 1
    tails = np.asarray(tails, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    attach_s = np.asarray(attach_s, dtype=np.int64)
    attach_t = np.asarray(attach_t, dtype=np.int64)
    inner = np.arange(k, dtype=np.int64)
    src = np.concatenate([2 * inner, 2 * tails + 1, np.full(len(attach_s), 2 * k), 2 * attach_t + 1])
    dst = np.concatenate([2 * inner + 1, 2 * heads, 2 * attach_s, np.full(len(attach_t), 2 * k + 1)])
    cap = np.concatenate(
        [
            np.ones(k, dtype=np.int64),
            np.full(len(tails) + len(attach_s) + len(attach_t), big, dtype=np.int64),
        ]
    )
    return 2 * k + 2, src, dst, cap, 2 * k, 2 * k + 1


#: Regions smaller than this solve faster with the compact Edmonds-Karp
#: loop than with a scipy matrix round-trip (fixed sparse-constructor cost).
_MATRIX_SMALL_REGION = 256


def _solve_matrix(
    k: int,
    tails: Sequence[int],
    heads: Sequence[int],
    attach_s: Sequence[int],
    attach_t: Sequence[int],
) -> Tuple[Sequence[bool], Sequence[bool], float]:
    """Array-based solver family for the ``matrix`` method.

    Small regions run a compact Edmonds-Karp over paired edge arrays (the
    flow value is bounded by the cut size, so only a handful of BFS rounds
    run); larger regions go through ``scipy.sparse.csgraph.maximum_flow``
    (or the numpy Edmonds-Karp without scipy).  All of them extract the
    canonical cuts from residual reachability, which is identical for
    every maximum flow - mixing solvers never changes a cut.
    """
    if k < _MATRIX_SMALL_REGION:
        return _solve_python_ek(k, tails, heads, attach_s, attach_t)
    num_nodes, src, dst, cap, source, sink = _split_network_arrays(
        k, tails, heads, attach_s, attach_t
    )
    if _scipy_maximum_flow is not None and _scipy_csr_matrix is not None:
        flow_value, res_src, res_dst = _scipy_residual_edges(num_nodes, src, dst, cap, source, sink)
    else:
        flow_value, res_src, res_dst = _numpy_residual_edges(num_nodes, src, dst, cap, source, sink)
    source_side = _reachable(num_nodes, res_src, res_dst, source)
    sink_side = _reachable(num_nodes, res_dst, res_src, sink)  # reversed edges
    return source_side, sink_side, float(flow_value)


def _solve_python_ek(
    k: int,
    tails: Sequence[int],
    heads: Sequence[int],
    attach_s: Sequence[int],
    attach_t: Sequence[int],
) -> Tuple[List[bool], List[bool], float]:
    """Compact Edmonds-Karp over paired edge lists (small regions).

    Integer capacities, flat ``e_to`` / ``e_cap`` lists with ``index ^ 1``
    partner addressing, one BFS per unit of flow.  The unit inner edges
    bound the augmentation count by the cut size.
    """
    from collections import deque

    num_nodes = 2 * k + 2
    source = 2 * k
    sink = 2 * k + 1
    big = k + 1
    e_to: List[int] = []
    e_cap: List[int] = []
    adjacency: List[List[int]] = [[] for _ in range(num_nodes)]

    def add(u: int, v: int, capacity: int) -> None:
        index = len(e_to)
        e_to.append(v)
        e_cap.append(capacity)
        e_to.append(u)
        e_cap.append(0)
        adjacency[u].append(index)
        adjacency[v].append(index + 1)

    for i in range(k):
        add(2 * i, 2 * i + 1, 1)
    for vi, wi in zip(tails, heads):
        add(2 * int(vi) + 1, 2 * int(wi), big)
    for vi in attach_s:
        add(source, 2 * int(vi), big)
    for vi in attach_t:
        add(2 * int(vi) + 1, sink, big)

    total = 0
    parent = [-1] * num_nodes
    while True:
        for i in range(num_nodes):
            parent[i] = -1
        parent[source] = -2
        queue = deque([source])
        while queue:
            v = queue.popleft()
            if v == sink:
                break
            for edge in adjacency[v]:
                if e_cap[edge] > 0:
                    w = e_to[edge]
                    if parent[w] == -1:
                        parent[w] = edge
                        queue.append(w)
        if parent[sink] == -1:
            break
        path: List[int] = []
        node = sink
        while node != source:
            edge = parent[node]
            path.append(edge)
            node = e_to[edge ^ 1]
        bottleneck = min(e_cap[edge] for edge in path)
        for edge in path:
            e_cap[edge] -= bottleneck
            e_cap[edge ^ 1] += bottleneck
        total += bottleneck

    source_side = [False] * num_nodes
    source_side[source] = True
    stack = [source]
    while stack:
        v = stack.pop()
        for edge in adjacency[v]:
            if e_cap[edge] > 0:
                w = e_to[edge]
                if not source_side[w]:
                    source_side[w] = True
                    stack.append(w)
    sink_side = [False] * num_nodes
    sink_side[sink] = True
    stack = [sink]
    while stack:
        v = stack.pop()
        # an edge u -> v is usable towards the sink iff its residual
        # capacity is positive, so scan v's partner edges (as in Dinitz)
        for edge in adjacency[v]:
            if e_cap[edge ^ 1] > 0:
                w = e_to[edge]
                if not sink_side[w]:
                    sink_side[w] = True
                    stack.append(w)
    return source_side, sink_side, float(total)


def _scipy_residual_edges(
    num_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    cap: np.ndarray,
    source: int,
    sink: int,
) -> Tuple[int, np.ndarray, np.ndarray]:
    """Max flow via scipy; returns the positive-residual edge list."""
    matrix = _scipy_csr_matrix((cap, (src, dst)), shape=(num_nodes, num_nodes))
    result = _scipy_maximum_flow(matrix, source, sink)
    # result.flow is antisymmetric and contains an (explicit) entry for the
    # reverse of every capacity edge, so capacity - flow evaluated over the
    # union of both sparsity patterns yields every positive-residual edge:
    # unsaturated forward edges and backward edges carrying flow
    residual = (matrix - result.flow).tocoo()
    positive = residual.data > 0
    return int(result.flow_value), residual.row[positive], residual.col[positive]


def _numpy_residual_edges(
    num_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    cap: np.ndarray,
    source: int,
    sink: int,
) -> Tuple[int, np.ndarray, np.ndarray]:
    """Edmonds-Karp with numpy frontier BFS (the scipy-free fast path).

    Augmenting paths are found by a vectorised BFS that records, for every
    newly reached node, the residual edge it was reached through; the path
    walk-back and capacity update are short scalar loops (path length, not
    graph size).  Unit inner capacities bound the number of augmentations
    by the cut size, so only a handful of BFS rounds run per region.
    """
    # paired residual edges: forward edge 2e, reverse edge 2e + 1
    e_to = np.empty(2 * len(src), dtype=np.int64)
    e_to[0::2] = dst
    e_to[1::2] = src
    e_from = np.empty_like(e_to)
    e_from[0::2] = src
    e_from[1::2] = dst
    e_cap = np.zeros(2 * len(src), dtype=np.int64)
    e_cap[0::2] = cap

    order = np.argsort(e_from, kind="stable")
    sorted_edges = order  # edge ids grouped by tail node
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(indptr[1:], e_from, 1)
    np.cumsum(indptr, out=indptr)

    total = 0
    no_parent = 2 * len(src)  # larger than any edge id
    while True:
        parent_edge = np.full(num_nodes, no_parent, dtype=np.int64)
        visited = np.zeros(num_nodes, dtype=bool)
        visited[source] = True
        frontier = np.asarray([source], dtype=np.int64)
        while frontier.size and not visited[sink]:
            edges = sorted_edges[_frontier_slots(indptr, frontier)]
            usable = e_cap[edges] > 0
            edges = edges[usable]
            targets = e_to[edges]
            fresh = ~visited[targets]
            edges = edges[fresh]
            targets = targets[fresh]
            if edges.size == 0:
                break
            # several edges may reach the same node in one sweep; keep the
            # lowest edge id per target (deterministic, any choice yields
            # the same final cut)
            np.minimum.at(parent_edge, targets, edges)
            frontier = np.unique(targets)
            visited[frontier] = True
        if not visited[sink]:
            break
        # walk the augmenting path back from the sink
        path: List[int] = []
        node = sink
        while node != source:
            edge = int(parent_edge[node])
            path.append(edge)
            node = int(e_from[edge])
        bottleneck = int(min(e_cap[edge] for edge in path))
        for edge in path:
            e_cap[edge] -= bottleneck
            e_cap[edge ^ 1] += bottleneck
        total += bottleneck

    positive = e_cap > 0
    return total, e_from[positive], e_to[positive]


def _frontier_slots(indptr: np.ndarray, frontier: np.ndarray) -> np.ndarray:
    """Flat CSR slot indices of every entry owned by the frontier nodes.

    The one subtle piece of index arithmetic both numpy BFS loops share:
    for each node ``v`` in ``frontier`` it expands to the index range
    ``indptr[v] .. indptr[v + 1] - 1``, concatenated.
    """
    counts = indptr[frontier + 1] - indptr[frontier]
    return np.repeat(indptr[frontier], counts) + (
        np.arange(int(counts.sum()), dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )


def _reachable(num_nodes: int, src: np.ndarray, dst: np.ndarray, start: int) -> np.ndarray:
    """Boolean reachability mask over ``(src, dst)`` edges from ``start``."""
    order = np.argsort(src, kind="stable")
    dst = np.asarray(dst, dtype=np.int64)[order]
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(indptr[1:], np.asarray(src, dtype=np.int64), 1)
    np.cumsum(indptr, out=indptr)
    seen = np.zeros(num_nodes, dtype=bool)
    seen[start] = True
    frontier = np.asarray([start], dtype=np.int64)
    while frontier.size:
        targets = dst[_frontier_slots(indptr, frontier)]
        targets = np.unique(targets[~seen[targets]])
        seen[targets] = True
        frontier = targets
    return seen


def is_vertex_cut(
    adjacency: WorkingAdjacency,
    cut: Sequence[int],
    side_a: Iterable[int],
    side_b: Iterable[int],
) -> bool:
    """Check that removing ``cut`` disconnects every ``side_a`` vertex from ``side_b``.

    Used by tests and by debug assertions in the hierarchy builder.
    """
    cut_set = set(cut)
    targets = {v for v in side_b if v not in cut_set}
    if not targets:
        return True
    seen: Set[int] = set()
    stack = [v for v in side_a if v not in cut_set]
    seen.update(stack)
    while stack:
        v = stack.pop()
        if v in targets:
            return False
        for w in adjacency.get(v, ()):
            if w in cut_set or w in seen or w not in adjacency:
                continue
            seen.add(w)
            stack.append(w)
    return True
