"""Maximum-flow / minimum-vertex-cut substrate.

The balanced cut step of the hierarchy construction (Algorithm 2 in the
paper) reduces the minimal balanced vertex-separator problem to a minimum
s-t *vertex* cut on the cut region, which in turn reduces to maximum flow
on the standard split-vertex transformation and is solved with Dinitz's
algorithm.  This package implements that machinery.
"""

from repro.flow.dinitz import DinitzMaxFlow, FlowNetwork
from repro.flow.vertex_cut import MinVertexCutResult, minimum_st_vertex_cut

__all__ = [
    "FlowNetwork",
    "DinitzMaxFlow",
    "minimum_st_vertex_cut",
    "MinVertexCutResult",
]
