"""Dinitz's maximum-flow algorithm.

The flow networks produced by the vertex-cut reduction are unit-capacity
on the "inner" (vertex) edges, so Dinitz's algorithm needs at most
``O(min(sqrt(V), cut_size))`` phases, each a BFS plus a blocking-flow DFS -
exactly the complexity argument made below Algorithm 2 in the paper.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Set

INF_CAPACITY = float("inf")


class FlowNetwork:
    """A directed flow network stored as paired residual edges.

    Edges are appended in pairs: the forward edge at an even index and its
    residual (reverse) edge at the following odd index, so ``index ^ 1``
    addresses the partner edge.
    """

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.edge_to: List[int] = []
        self.edge_cap: List[float] = []
        self.adjacency: List[List[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add a directed edge ``u -> v`` with ``capacity``; return its index."""
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        index = len(self.edge_to)
        self.edge_to.append(v)
        self.edge_cap.append(capacity)
        self.adjacency[u].append(index)
        self.edge_to.append(u)
        self.edge_cap.append(0.0)
        self.adjacency[v].append(index + 1)
        return index

    def residual_capacity(self, edge_index: int) -> float:
        """Remaining capacity on edge ``edge_index``."""
        return self.edge_cap[edge_index]


class DinitzMaxFlow:
    """Maximum s-t flow via Dinitz's algorithm (level graph + blocking flow)."""

    def __init__(self, network: FlowNetwork, source: int, sink: int) -> None:
        if source == sink:
            raise ValueError("source and sink must differ")
        self.network = network
        self.source = source
        self.sink = sink
        self.max_flow_value: Optional[float] = None

    # ------------------------------------------------------------------ #
    def solve(self, flow_limit: float = INF_CAPACITY) -> float:
        """Compute and return the maximum flow value (capped at ``flow_limit``)."""
        total = 0.0
        while total < flow_limit:
            level = self._bfs_levels()
            if level[self.sink] < 0:
                break
            iter_ptr = [0] * self.network.num_nodes
            while total < flow_limit:
                pushed = self._dfs_blocking(self.source, flow_limit - total, level, iter_ptr)
                if pushed <= 0:
                    break
                total += pushed
        self.max_flow_value = total
        return total

    def _bfs_levels(self) -> List[int]:
        """Breadth-first levels in the residual graph (-1 = unreachable)."""
        net = self.network
        level = [-1] * net.num_nodes
        level[self.source] = 0
        queue = deque([self.source])
        while queue:
            v = queue.popleft()
            for edge_index in net.adjacency[v]:
                if net.edge_cap[edge_index] > 0:
                    w = net.edge_to[edge_index]
                    if level[w] < 0:
                        level[w] = level[v] + 1
                        queue.append(w)
        return level

    def _dfs_blocking(self, v: int, pushed: float, level: List[int], iter_ptr: List[int]) -> float:
        """Push flow along one augmenting path of the level graph."""
        if v == self.sink:
            return pushed
        net = self.network
        adjacency = net.adjacency[v]
        while iter_ptr[v] < len(adjacency):
            edge_index = adjacency[iter_ptr[v]]
            w = net.edge_to[edge_index]
            cap = net.edge_cap[edge_index]
            if cap > 0 and level[w] == level[v] + 1:
                flow = self._dfs_blocking(w, min(pushed, cap), level, iter_ptr)
                if flow > 0:
                    net.edge_cap[edge_index] -= flow
                    net.edge_cap[edge_index ^ 1] += flow
                    return flow
            iter_ptr[v] += 1
        return 0.0

    # ------------------------------------------------------------------ #
    def source_side(self) -> Set[int]:
        """Nodes reachable from the source in the residual graph (after solve)."""
        net = self.network
        seen = {self.source}
        stack = [self.source]
        while stack:
            v = stack.pop()
            for edge_index in net.adjacency[v]:
                if net.edge_cap[edge_index] > 0:
                    w = net.edge_to[edge_index]
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
        return seen

    def sink_side(self) -> Set[int]:
        """Nodes that can reach the sink in the residual graph (after solve)."""
        net = self.network
        seen = {self.sink}
        stack = [self.sink]
        while stack:
            v = stack.pop()
            # traverse edges backwards: an edge u -> v is usable towards the
            # sink iff it still has residual capacity, so scan v's incident
            # residual (odd/even partner) edges.
            for edge_index in net.adjacency[v]:
                partner = edge_index ^ 1
                if net.edge_cap[partner] > 0:
                    w = net.edge_to[edge_index]
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
        return seen
