"""H2H - Hierarchical 2-Hop labelling over a tree decomposition (Ouyang et al. 2018).

The H2H baseline stores, for every vertex ``v``,

* a *distance array* holding the exact distance from ``v`` to each of its
  ancestors in the tree decomposition (and to itself), and
* a *position array* holding the ancestor-depth indices of the members of
  ``v``'s bag ``X(v)``.

A query ``(s, t)`` finds ``w = LCA(s, t)`` with an RMQ structure and takes
the minimum of ``dist_s[i] + dist_t[i]`` over the positions ``i`` recorded
for ``w`` (Equation 3 of the paper) - correct because ``X(w)`` separates
``s`` from ``t`` in the graph.

The distance arrays are filled top-down with the standard dynamic program:
all bag members of ``v`` are ancestors of ``v``, so the distance from ``v``
to any ancestor ``a`` is the minimum over bag members ``x`` of
``w(v, x) + d(x, a)``, where ``d(x, a)`` is already available either in
``x``'s own array (when ``a`` is an ancestor of ``x``) or in ``a``'s array
(when ``x`` is an ancestor of ``a``).  The implementation vectorises this
with numpy by maintaining the distance arrays of the current root-to-node
path in a matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.lca import EulerTourLCA
from repro.baselines.tree_decomposition import TreeDecomposition, tree_decomposition
from repro.core.oracle import BatchMixin, as_pair_array
from repro.graph.graph import Graph
from repro.utils.validation import check_vertex

INF = float("inf")


@dataclass
class H2HIndex(BatchMixin):
    """A built H2H index.

    Implements the :class:`repro.core.oracle.DistanceOracle` protocol.
    Batch queries group pairs by their LCA and evaluate Equation 3 with
    one numpy gather + reduction per *group* over the LCA's position
    array, so the fixed numpy overhead amortises even on small batches.
    """

    graph: Graph
    decomposition: TreeDecomposition
    lca: EulerTourLCA
    #: per vertex: distances to ancestors (root first) and to itself (last)
    dist_arrays: List[np.ndarray] = field(default_factory=list)
    #: per vertex: ancestor-depth positions of the bag members + own depth
    pos_arrays: List[List[int]] = field(default_factory=list)
    construction_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, graph: Graph, decomposition: Optional[TreeDecomposition] = None) -> "H2HIndex":
        """Build the H2H index (computing the tree decomposition if needed)."""
        start = time.perf_counter()
        decomposition = decomposition or tree_decomposition(graph)
        lca = EulerTourLCA(decomposition.parent)
        index = cls(graph=graph, decomposition=decomposition, lca=lca)
        index._build_labels()
        index.construction_seconds = time.perf_counter() - start
        return index

    def _build_labels(self) -> None:
        n = self.graph.num_vertices
        decomposition = self.decomposition
        depth = decomposition.depth
        children = decomposition.children()
        self.dist_arrays = [np.zeros(0)] * n
        self.pos_arrays = [[] for _ in range(n)]

        max_depth = (max(depth) + 1) if n else 0
        # path_matrix[d] holds the distance array (padded with +inf) of the
        # ancestor at depth d on the DFS path currently being explored.
        path_matrix = np.full((max_depth + 1, max_depth + 1), INF, dtype=float)

        for root in decomposition.roots():
            stack: List[int] = [root]
            while stack:
                v = stack.pop()
                d_v = depth[v]
                bag = decomposition.bags[v]
                if not bag:
                    array = np.zeros(1)
                else:
                    best = np.full(d_v, INF, dtype=float)
                    for x, weight in bag:
                        d_x = depth[x]
                        # distances from x to the ancestors of v at depths
                        # 0..d_v-1: prefix from x's own array, suffix gathered
                        # from the deeper ancestors' arrays at position d_x.
                        contribution = np.empty(d_v, dtype=float)
                        contribution[: d_x + 1] = self.dist_arrays[x]
                        if d_x + 1 < d_v:
                            contribution[d_x + 1 :] = path_matrix[d_x + 1 : d_v, d_x]
                        candidate = weight + contribution
                        np.minimum(best, candidate, out=best)
                    array = np.concatenate([best, [0.0]])
                self.dist_arrays[v] = array
                path_matrix[d_v, : d_v + 1] = array
                self.pos_arrays[v] = sorted({depth[x] for x, _ in bag} | {d_v})
                stack.extend(children[v])

        # single-copy storage: concatenate the per-vertex arrays into one
        # flat buffer and re-point dist_arrays at views of it, so the
        # LCA-grouped batch gathers and the scalar path share one buffer
        # instead of the batch path caching a label-sized second copy
        lengths = np.asarray([len(a) for a in self.dist_arrays], dtype=np.int64)
        offsets = np.zeros(n, dtype=np.int64)
        if n:
            offsets[1:] = np.cumsum(lengths)[:-1]
        values = (
            np.concatenate([np.asarray(a, dtype=np.float64) for a in self.dist_arrays])
            if n
            else np.empty(0, dtype=np.float64)
        )
        self.dist_arrays = [
            values[offsets[v] : offsets[v] + int(lengths[v])] for v in range(n)
        ]
        self._flat_dists = (values, offsets)

    # ------------------------------------------------------------------ #
    def distance(self, s: int, t: int) -> float:
        """Exact distance between ``s`` and ``t`` (Equation 3)."""
        return self.distance_with_hub_count(s, t)[0]

    @property
    def supports_batch(self) -> bool:
        """Equation 3 runs as one numpy gather + reduction per LCA group."""
        return True

    def distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Batched Equation 3, with pairs grouped by their LCA.

        All pairs sharing a lowest common ancestor scan the *same*
        position array, so they are evaluated with one 2-D gather over a
        flat concatenation of the distance arrays and one row-wise
        minimum - the fixed numpy call overhead amortises over the group
        instead of being paid per pair, which is what made small batches
        lose to the scalar loop.  Bit-identical to the scalar path: the
        same float64 sums feed a minimum, which does not depend on
        evaluation order.
        """
        pair_array = as_pair_array(pairs)
        out = np.empty(len(pair_array), dtype=np.float64)
        if not len(pair_array):
            return out
        n = self.graph.num_vertices
        pair_list = pair_array.tolist()
        for s, t in pair_list:
            check_vertex(s, n, "s")
            check_vertex(t, n, "t")
        positions = self._position_arrays()
        lca = self.lca.lca
        groups: Dict[int, List[int]] = {}
        for i, (s, t) in enumerate(pair_list):
            if s == t:
                out[i] = 0.0
                continue
            ancestor = lca(s, t)
            if ancestor < 0 or not len(positions[ancestor]):
                out[i] = INF
                continue
            groups.setdefault(ancestor, []).append(i)
        if not groups:
            return out
        values, offsets = self._flat_dist_arrays()
        source_column = pair_array[:, 0]
        target_column = pair_array[:, 1]
        for ancestor, rows in groups.items():
            pos = positions[ancestor]
            index = np.asarray(rows, dtype=np.int64)
            sums = values[offsets[source_column[index]][:, None] + pos[None, :]]
            sums += values[offsets[target_column[index]][:, None] + pos[None, :]]
            out[index] = sums.min(axis=1)
        return out

    def _position_arrays(self) -> List[np.ndarray]:
        """The per-vertex position arrays as int64 numpy arrays (cached)."""
        cached = getattr(self, "_pos_np", None)
        if cached is None:
            cached = [np.asarray(p, dtype=np.int64) for p in self.pos_arrays]
            self._pos_np = cached
        return cached

    def _flat_dist_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Distance arrays concatenated into one buffer + per-vertex offsets.

        Lets a whole LCA group gather its rows with one fancy index
        (``values[offsets[v][:, None] + positions]``) instead of a
        Python-level lookup per pair.  ``_build_labels`` materialises the
        buffer once and shares it with ``dist_arrays`` (which are views);
        the lazy fallback covers hand-constructed instances only.
        """
        cached = getattr(self, "_flat_dists", None)
        if cached is None:
            lengths = np.asarray([len(a) for a in self.dist_arrays], dtype=np.int64)
            offsets = np.zeros(len(lengths), dtype=np.int64)
            if len(lengths):
                offsets[1:] = np.cumsum(lengths)[:-1]
            values = (
                np.concatenate([np.asarray(a, dtype=np.float64) for a in self.dist_arrays])
                if self.dist_arrays
                else np.empty(0, dtype=np.float64)
            )
            cached = (values, offsets)
            self._flat_dists = cached
        return cached

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus the number of label positions inspected."""
        check_vertex(s, self.graph.num_vertices, "s")
        check_vertex(t, self.graph.num_vertices, "t")
        if s == t:
            return 0.0, 0
        ancestor = self.lca.lca(s, t)
        if ancestor < 0:
            return INF, 0
        dist_s = self.dist_arrays[s]
        dist_t = self.dist_arrays[t]
        positions = self.pos_arrays[ancestor]
        best = INF
        for i in positions:
            candidate = dist_s[i] + dist_t[i]
            if candidate < best:
                best = candidate
        return float(best), len(positions)

    # ------------------------------------------------------------------ #
    # metrics (Tables 2-5)
    # ------------------------------------------------------------------ #
    def total_entries(self) -> int:
        """Total number of stored distance values."""
        return int(sum(len(a) for a in self.dist_arrays))

    def label_size_bytes(self) -> int:
        """Distance arrays (8 bytes/entry) plus position arrays (4 bytes/entry)."""
        distances = self.total_entries() * 8
        positions = sum(len(p) for p in self.pos_arrays) * 4
        return distances + positions + 8 * self.graph.num_vertices

    def lca_storage_bytes(self) -> int:
        """Size of the RMQ/LCA structure (Table 3)."""
        return self.lca.storage_bytes()

    def average_label_size(self) -> float:
        """Mean distance-array length (ancestor count) per vertex."""
        n = self.graph.num_vertices
        return self.total_entries() / n if n else 0.0

    def tree_height(self) -> int:
        """Height of the tree decomposition (Table 5)."""
        return self.decomposition.height()

    def tree_width(self) -> int:
        """Width (largest bag) of the tree decomposition (Table 5)."""
        return self.decomposition.width()

    def average_hub_positions(self) -> float:
        """Mean number of positions stored per vertex (the per-query scan size)."""
        n = self.graph.num_vertices
        if n == 0:
            return 0.0
        return sum(len(p) for p in self.pos_arrays) / n

