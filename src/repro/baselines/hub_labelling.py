"""Hub Labelling (HL) baseline.

The paper's HL baseline is the hierarchical hub labelling of Abraham et
al. [2], which builds a canonical 2-hop labelling with respect to a vertex
order derived from contraction-hierarchy searches.  We reproduce that
pipeline: a :class:`repro.baselines.ch.ContractionHierarchy` supplies the
importance order (most important first) and a pruned landmark labelling
over that order produces the canonical hierarchical labels.

For graphs where building a CH is unnecessarily slow, a degree-based order
can be requested instead (``order_strategy="degree"``), which matches the
common PLL heuristic; tests cover both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.baselines.ch import ContractionHierarchy
from repro.baselines.pll import PrunedLandmarkLabelling, degree_order
from repro.core.oracle import BatchMixin
from repro.graph.graph import Graph


@dataclass
class HubLabelling(BatchMixin):
    """Hierarchical hub labelling built over a CH importance order.

    Implements the :class:`repro.core.oracle.DistanceOracle` protocol via
    the underlying pruned landmark labelling; batch queries use the
    :class:`BatchMixin` per-pair loop (sorted label merges don't batch).
    """

    graph: Graph
    labelling: PrunedLandmarkLabelling
    order: List[int]
    order_strategy: str
    construction_seconds: float = 0.0

    @classmethod
    def build(
        cls,
        graph: Graph,
        order_strategy: str = "ch",
        order: Optional[Sequence[int]] = None,
        witness_settle_limit: int = 40,
    ) -> "HubLabelling":
        """Build HL for ``graph``.

        Parameters
        ----------
        order_strategy:
            ``"ch"`` (default) derives the vertex order from a contraction
            hierarchy; ``"degree"`` uses decreasing degree; ``"given"``
            uses the explicit ``order`` argument.
        """
        start = time.perf_counter()
        if order_strategy == "given":
            if order is None:
                raise ValueError("order_strategy='given' requires an explicit order")
            vertex_order = list(order)
        elif order_strategy == "degree":
            vertex_order = degree_order(graph)
        elif order_strategy == "ch":
            hierarchy = ContractionHierarchy.build(graph, witness_settle_limit=witness_settle_limit)
            vertex_order = hierarchy.importance_order()
        else:
            raise ValueError(f"unknown order_strategy {order_strategy!r}")
        labelling = PrunedLandmarkLabelling.build(graph, order=vertex_order)
        index = cls(
            graph=graph,
            labelling=labelling,
            order=vertex_order,
            order_strategy=order_strategy,
        )
        index.construction_seconds = time.perf_counter() - start
        return index

    # ------------------------------------------------------------------ #
    def distance(self, s: int, t: int) -> float:
        """Exact distance between ``s`` and ``t`` (Equation 1)."""
        return self.labelling.distance(s, t)

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus the number of label entries inspected."""
        return self.labelling.distance_with_hub_count(s, t)

    def label_size_bytes(self) -> int:
        """Approximate labelling size in bytes."""
        return self.labelling.label_size_bytes()

    def average_label_size(self) -> float:
        """Mean number of hubs per vertex label."""
        return self.labelling.average_label_size()

    def total_entries(self) -> int:
        """Total number of (hub, distance) entries."""
        return self.labelling.total_entries()
