"""RMQ-based constant-time LCA (Bender & Farach-Colton 2000).

H2H answers distance queries by first finding the lowest common ancestor
of the two query vertices in its tree decomposition.  The standard way to
do that in O(1) is an Euler tour of the tree plus a sparse table for range
minimum queries over the tour depths.  The paper's Table 3 highlights the
memory this costs compared to HC2L's bitstring scheme; the
:meth:`EulerTourLCA.storage_bytes` method reproduces that accounting.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.utils.validation import check_vertex


class EulerTourLCA:
    """Euler-tour + sparse-table LCA over a rooted forest.

    Parameters
    ----------
    parent:
        ``parent[v]`` for every vertex; roots use ``-1``.  Forests are
        supported by attaching every root to a virtual super-root, so
        ``lca(u, v)`` returns ``-1`` when the two vertices lie in
        different trees.
    """

    def __init__(self, parent: Sequence[int]) -> None:
        self.num_vertices = len(parent)
        self.parent = list(parent)
        children: List[List[int]] = [[] for _ in range(self.num_vertices)]
        roots: List[int] = []
        for v, p in enumerate(self.parent):
            if p < 0:
                roots.append(v)
            else:
                children[p].append(v)

        # Euler tour: visit order interleaving parents and children.
        self.euler: List[int] = []
        self.euler_depth: List[int] = []
        self.first_occurrence: List[int] = [-1] * self.num_vertices
        #: connected-tree id per vertex; cross-tree queries have no LCA
        self.tree_id: List[int] = [-1] * self.num_vertices
        for tree_index, root in enumerate(roots):
            self._tour(root, children, tree_index)

        self._build_sparse_table()

    def _tour(self, root: int, children: List[List[int]], tree_index: int) -> None:
        """Iterative Euler tour of one tree."""
        stack: List[tuple[int, int, int]] = [(root, 0, 0)]  # (vertex, depth, child index)
        while stack:
            vertex, depth, child_index = stack.pop()
            if child_index == 0:
                self.first_occurrence[vertex] = len(self.euler)
                self.tree_id[vertex] = tree_index
            self.euler.append(vertex)
            self.euler_depth.append(depth)
            if child_index < len(children[vertex]):
                stack.append((vertex, depth, child_index + 1))
                stack.append((children[vertex][child_index], depth + 1, 0))

    def _build_sparse_table(self) -> None:
        m = len(self.euler)
        self.log_table = [0] * (m + 1)
        for i in range(2, m + 1):
            self.log_table[i] = self.log_table[i // 2] + 1
        levels = self.log_table[m] + 1 if m else 1
        # sparse[k][i] = index (into the Euler tour) of the minimum depth in
        # the window [i, i + 2^k)
        self.sparse: List[List[int]] = [list(range(m))]
        depths = self.euler_depth
        for k in range(1, levels):
            span = 1 << k
            previous = self.sparse[k - 1]
            row: List[int] = []
            half = span >> 1
            for i in range(m - span + 1):
                left = previous[i]
                right = previous[i + half]
                row.append(left if depths[left] <= depths[right] else right)
            self.sparse.append(row)

    # ------------------------------------------------------------------ #
    def lca(self, u: int, v: int) -> int:
        """The lowest common ancestor of ``u`` and ``v`` (-1 if in different trees)."""
        check_vertex(u, self.num_vertices, "u")
        check_vertex(v, self.num_vertices, "v")
        if u == v:
            return u
        if self.tree_id[u] != self.tree_id[v]:
            return -1
        left = self.first_occurrence[u]
        right = self.first_occurrence[v]
        if left > right:
            left, right = right, left
        length = right - left + 1
        k = self.log_table[length]
        depths = self.euler_depth
        a = self.sparse[k][left]
        b = self.sparse[k][right - (1 << k) + 1]
        best = a if depths[a] <= depths[b] else b
        return self.euler[best]

    # ------------------------------------------------------------------ #
    def storage_bytes(self) -> int:
        """Memory footprint of the LCA structure (Table 3, "LCA Storage").

        Counts the Euler tour (4 bytes/entry), the tour depths (4 bytes),
        the first-occurrence array (4 bytes/vertex) and the sparse table
        (4 bytes/cell) - the same accounting the paper applies to H2H.
        """
        tour = len(self.euler) * 8  # euler id + depth, 4 bytes each
        first = self.num_vertices * 4
        table = sum(len(row) for row in self.sparse) * 4
        return tour + first + table
