"""Tree decomposition via minimum-degree elimination (MDE).

H2H (and P2H) build their vertex hierarchy from a tree decomposition
computed with the classic minimum-degree elimination heuristic [Bodlaender
2006]: repeatedly eliminate a remaining vertex of minimum degree, connect
its remaining neighbours into a clique (fill-in edges carry the weight of
the two-hop path through the eliminated vertex, keeping minima), and
record the neighbourhood at elimination time as the vertex's *bag*.

The resulting structure is exactly what the paper's Section 3.3 assumes:

* each bag ``X(v)`` is a cut separating ``v`` from all later-eliminated
  vertices,
* the parent of ``v`` is the bag member eliminated earliest after ``v``,
  so ``X(v) \\ {v}`` is always a subset of ``v``'s ancestors,
* the tree *width* is the largest bag size and the tree *height* is the
  longest root-to-leaf path - the quantities compared against HC2L's
  hierarchy in Table 5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.utils.priority_queue import AddressablePriorityQueue

INF = float("inf")


@dataclass
class TreeDecomposition:
    """A tree decomposition produced by minimum-degree elimination.

    Attributes
    ----------
    elimination_order:
        Vertices in the order they were eliminated.
    position:
        Inverse permutation: ``position[v]`` is when ``v`` was eliminated.
    bags:
        ``bags[v]`` lists ``(neighbour, weight)`` pairs present when ``v``
        was eliminated (the bag is ``{v} | neighbours``).
    parent:
        ``parent[v]`` is the bag member of ``v`` eliminated earliest after
        ``v``; roots (one per connected component) have parent ``-1``.
    depth:
        Depth of each vertex in the elimination tree (roots have depth 0).
    construction_seconds:
        Wall-clock time spent building the decomposition.
    """

    num_vertices: int
    elimination_order: List[int]
    position: List[int]
    bags: Dict[int, List[Tuple[int, float]]]
    parent: List[int]
    depth: List[int] = field(default_factory=list)
    construction_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.depth:
            self.depth = self._compute_depths()

    def _compute_depths(self) -> List[int]:
        depth = [-1] * self.num_vertices
        # parents are always eliminated later, so walking the elimination
        # order backwards guarantees parents are resolved first
        for v in reversed(self.elimination_order):
            p = self.parent[v]
            depth[v] = 0 if p < 0 else depth[p] + 1
        return depth

    # ------------------------------------------------------------------ #
    def roots(self) -> List[int]:
        """Roots of the elimination forest (one per connected component)."""
        return [v for v in range(self.num_vertices) if self.parent[v] < 0]

    def children(self) -> List[List[int]]:
        """Child lists of the elimination tree."""
        result: List[List[int]] = [[] for _ in range(self.num_vertices)]
        for v in range(self.num_vertices):
            p = self.parent[v]
            if p >= 0:
                result[p].append(v)
        return result

    def width(self) -> int:
        """Tree width + 1 convention of the paper's Table 5 (largest bag size)."""
        if not self.bags:
            return 0
        return max(len(bag) + 1 for bag in self.bags.values())

    def height(self) -> int:
        """Number of levels of the elimination tree."""
        if not self.depth:
            return 0
        return max(self.depth) + 1

    def bag_vertices(self, v: int) -> List[int]:
        """The bag ``X(v)`` as vertex ids (``v`` itself included)."""
        return [v] + [w for w, _ in self.bags[v]]

    def validate_bag_containment(self) -> bool:
        """Every bag member of ``v`` must be an ancestor of ``v`` (test helper)."""
        for v in range(self.num_vertices):
            ancestors = set()
            a = self.parent[v]
            while a >= 0:
                ancestors.add(a)
                a = self.parent[a]
            for w, _ in self.bags[v]:
                if w not in ancestors:
                    return False
        return True


def tree_decomposition(graph: Graph) -> TreeDecomposition:
    """Compute a minimum-degree-elimination tree decomposition of ``graph``."""
    start = time.perf_counter()
    n = graph.num_vertices
    adjacency: List[Dict[int, float]] = [dict(graph.neighbors(v)) for v in range(n)]
    queue = AddressablePriorityQueue()
    for v in range(n):
        queue.push(v, float(len(adjacency[v])))

    elimination_order: List[int] = []
    position = [-1] * n
    bags: Dict[int, List[Tuple[int, float]]] = {}

    while queue:
        v, _ = queue.pop()
        neighbours = sorted(adjacency[v].items())
        bags[v] = neighbours
        position[v] = len(elimination_order)
        elimination_order.append(v)
        # clique fill-in among remaining neighbours
        for i, (a, wa) in enumerate(neighbours):
            for b, wb in neighbours[i + 1 :]:
                new_weight = wa + wb
                current = adjacency[a].get(b)
                if current is None or new_weight < current:
                    adjacency[a][b] = new_weight
                    adjacency[b][a] = new_weight
        for a, _ in neighbours:
            adjacency[a].pop(v, None)
            queue.push(a, float(len(adjacency[a])))
        adjacency[v].clear()

    parent = [-1] * n
    for v in range(n):
        bag = bags[v]
        if bag:
            parent[v] = min((w for w, _ in bag), key=lambda w: position[w])

    decomposition = TreeDecomposition(
        num_vertices=n,
        elimination_order=elimination_order,
        position=position,
        bags=bags,
        parent=parent,
    )
    decomposition.construction_seconds = time.perf_counter() - start
    return decomposition
