"""Contraction Hierarchies (Geisberger et al. 2008).

CH serves two roles in this reproduction, mirroring its roles in the
literature the paper builds on:

1. a search-based baseline (bidirectional upward Dijkstra over the
   shortcut-augmented graph), and
2. the vertex-importance order consumed by the hub labelling baseline
   (hierarchical hub labellings are defined relative to a CH-style order).

The node order is computed with the standard lazy-update heuristic
combining *edge difference* (shortcuts added minus edges removed) and the
*deleted neighbours* term.  Witness searches are hop/size limited; an
inconclusive witness search simply adds the shortcut, which affects index
size but never correctness.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.oracle import BatchMixin, as_pair_array, pairs_from_source
from repro.graph.graph import Graph
from repro.utils.priority_queue import AddressablePriorityQueue
from repro.utils.validation import check_vertex

INF = float("inf")


@dataclass
class ContractionHierarchy(BatchMixin):
    """A built contraction hierarchy.

    Implements the :class:`repro.core.oracle.DistanceOracle` protocol.
    Pair batches are grouped by source and one-to-many rows share a single
    forward search - the structural batching a bidirectional search-based
    method admits (the per-target backward searches remain sequential).
    """

    graph: Graph
    #: contraction rank of each vertex (0 = contracted first / least important)
    rank: List[int]
    #: upward adjacency: for each vertex, (neighbour, weight) with higher rank
    upward: List[List[Tuple[int, float]]]
    num_shortcuts: int = 0
    construction_seconds: float = 0.0
    witness_settle_limit: int = 60

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, graph: Graph, witness_settle_limit: int = 60) -> "ContractionHierarchy":
        """Build the hierarchy with the lazy edge-difference node order."""
        start = time.perf_counter()
        n = graph.num_vertices
        remaining: List[Dict[int, float]] = [dict(graph.neighbors(v)) for v in range(n)]
        deleted_neighbours = [0] * n
        rank = [-1] * n
        shortcuts: List[Tuple[int, int, float]] = []

        def simulate_contraction(v: int, record: bool) -> int:
            """Count (and optionally record) the shortcuts contracting ``v`` needs."""
            neighbours = list(remaining[v].items())
            added = 0
            for i, (u, wu) in enumerate(neighbours):
                for w, ww in neighbours[i + 1 :]:
                    via = wu + ww
                    if _has_witness(remaining, u, w, v, via, witness_settle_limit):
                        continue
                    added += 1
                    if record:
                        shortcuts.append((u, w, via))
                        current = remaining[u].get(w)
                        if current is None or via < current:
                            remaining[u][w] = via
                            remaining[w][u] = via
            return added

        def priority(v: int) -> float:
            edge_count = len(remaining[v])
            return float(simulate_contraction(v, record=False) - edge_count + 2 * deleted_neighbours[v])

        queue = AddressablePriorityQueue()
        for v in range(n):
            queue.push(v, priority(v))

        next_rank = 0
        while queue:
            v, prio = queue.pop()
            # lazy update: recompute and re-insert if the priority became stale
            current = priority(v)
            if queue and current > queue.peek()[1]:
                queue.push(v, current)
                continue
            simulate_contraction(v, record=True)
            rank[v] = next_rank
            next_rank += 1
            for u in list(remaining[v].keys()):
                del remaining[u][v]
                deleted_neighbours[u] += 1
                if u in queue:
                    queue.push(u, priority(u))
            remaining[v].clear()

        upward: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for u, v, w in graph.edges():
            if rank[u] < rank[v]:
                upward[u].append((v, w))
            else:
                upward[v].append((u, w))
        for u, v, w in shortcuts:
            if rank[u] < rank[v]:
                upward[u].append((v, w))
            else:
                upward[v].append((u, w))

        index = cls(
            graph=graph,
            rank=rank,
            upward=upward,
            num_shortcuts=len(shortcuts),
            witness_settle_limit=witness_settle_limit,
        )
        index.construction_seconds = time.perf_counter() - start
        return index

    # ------------------------------------------------------------------ #
    def distance(self, s: int, t: int) -> float:
        """Exact distance via bidirectional upward Dijkstra."""
        check_vertex(s, self.graph.num_vertices, "s")
        check_vertex(t, self.graph.num_vertices, "t")
        if s == t:
            return 0.0
        return self._meet(self._upward_search(s), self._upward_search(t))

    @property
    def supports_batch(self) -> bool:
        """Rows share one forward search; pair batches group by source."""
        return True

    def distances(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Batched distances, grouped by source to share forward searches.

        Bit-identical to the scalar loop: the meet-in-the-middle minimum
        combines the same settled-distance sums (float addition is
        commutative, and a minimum does not depend on scan order).
        """
        pair_array = as_pair_array(pairs)
        out = np.empty(len(pair_array), dtype=np.float64)
        if not len(pair_array):
            return out
        s = pair_array[:, 0]
        order = np.argsort(s, kind="stable")
        forward: Optional[Dict[int, float]] = None
        forward_source = -1
        for i in order.tolist():
            a, b = int(pair_array[i, 0]), int(pair_array[i, 1])
            check_vertex(a, self.graph.num_vertices, "s")
            check_vertex(b, self.graph.num_vertices, "t")
            if a == b:
                out[i] = 0.0
                continue
            if forward is None or a != forward_source:
                forward = self._upward_search(a)
                forward_source = a
            out[i] = self._meet(forward, self._upward_search(b))
        return out

    def one_to_many(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """Distances from ``s`` to every target, sharing one forward search."""
        return self.distances(pairs_from_source(s, targets))

    @staticmethod
    def _meet(forward: Dict[int, float], backward: Dict[int, float]) -> float:
        """Minimum meeting-vertex sum of two settled upward searches."""
        best = INF
        small, large = (forward, backward) if len(forward) <= len(backward) else (backward, forward)
        for v, d in small.items():
            other = large.get(v)
            if other is not None and d + other < best:
                best = d + other
        return best

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus the size of the two upward search spaces."""
        check_vertex(s, self.graph.num_vertices, "s")
        check_vertex(t, self.graph.num_vertices, "t")
        if s == t:
            return 0.0, 0
        forward = self._upward_search(s)
        backward = self._upward_search(t)
        best = INF
        for v, d in forward.items():
            other = backward.get(v)
            if other is not None and d + other < best:
                best = d + other
        return best, len(forward) + len(backward)

    def _upward_search(self, source: int) -> Dict[int, float]:
        """Dijkstra restricted to upward edges; returns settled distances."""
        dist: Dict[int, float] = {source: 0.0}
        settled: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, v = heapq.heappop(heap)
            if v in settled:
                continue
            settled[v] = d
            for w, weight in self.upward[v]:
                nd = d + weight
                if nd < dist.get(w, INF):
                    dist[w] = nd
                    heapq.heappush(heap, (nd, w))
        return settled

    # ------------------------------------------------------------------ #
    def importance_order(self) -> List[int]:
        """Vertices from most to least important (input order for hub labelling)."""
        return sorted(self.graph.vertices(), key=lambda v: -self.rank[v])

    def label_size_bytes(self) -> int:
        """Size of the upward graph (the only structure CH queries need)."""
        arcs = sum(len(edges) for edges in self.upward)
        return arcs * 12 + 8 * self.graph.num_vertices

    def average_search_space(self, sample_pairs: Optional[List[Tuple[int, int]]] = None) -> float:
        """Mean number of settled vertices per query over ``sample_pairs``."""
        if not sample_pairs:
            return 0.0
        total = 0
        for s, t in sample_pairs:
            total += len(self._upward_search(s)) + len(self._upward_search(t))
        return total / len(sample_pairs)


def _has_witness(
    adjacency: List[Dict[int, float]],
    source: int,
    target: int,
    skip: int,
    limit: float,
    settle_limit: int,
) -> bool:
    """Bounded witness search: is there a path <= ``limit`` avoiding ``skip``?

    Inconclusive searches (budget exhausted) return ``False`` so the caller
    adds a possibly redundant shortcut - conservative but correct.
    """
    if source == target:
        return True
    dist: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled = 0
    while heap and settled < settle_limit:
        d, v = heapq.heappop(heap)
        if d > dist.get(v, INF):
            continue
        if v == target:
            return d <= limit
        if d > limit:
            return False
        settled += 1
        for w, weight in adjacency[v].items():
            if w == skip:
                continue
            nd = d + weight
            if nd < dist.get(w, INF) and nd <= limit:
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return dist.get(target, INF) <= limit
