"""Baseline distance-query methods the paper compares against.

Every baseline implements the batch-first
:class:`repro.core.oracle.DistanceOracle` protocol, exactly like
:class:`repro.HC2LIndex`:

``build(graph, ...)``
    classmethod constructing the index, recording ``construction_seconds``.
``distance(s, t)`` / ``distances(pairs)`` / ``one_to_many`` / ``many_to_many``
    exact shortest-path distances (``inf`` for disconnected pairs); batch
    results are bit-identical to the scalar loop.  Methods whose structure
    admits real batching (Dijkstra source grouping, CH shared forward
    searches, H2H numpy reductions, HC2L's vectorised engine) advertise it
    via ``supports_batch``; the rest inherit the
    :class:`repro.core.oracle.BatchMixin` loop.
``label_size_bytes()`` / ``index_size_bytes``
    approximate index size, used for the Table 2/4 columns.
``distance_with_hub_count(s, t)``
    distance plus the number of label entries inspected, which feeds the
    "Average Hub Size" column of Table 3.

Implemented baselines:

* :class:`DijkstraOracle` and :class:`BidirectionalDijkstra` - search-based
  references (and the ground truth for tests).
* :class:`ContractionHierarchy` (CH) - search-based baseline and the
  vertex-ordering substrate for hub labelling.
* :class:`PrunedLandmarkLabelling` (PLL) - generic 2-hop labelling.
* :class:`HubLabelling` (HL) - hierarchical hub labelling using the CH
  contraction order.
* :class:`PrunedHighwayLabelling` (PHL) - highway (shortest-path)
  decomposition labels.
* :class:`H2HIndex` (H2H) - tree-decomposition labelling with RMQ-based
  LCA.
"""

from repro.baselines.dijkstra import BidirectionalDijkstra, DijkstraOracle
from repro.baselines.ch import ContractionHierarchy
from repro.baselines.pll import PrunedLandmarkLabelling
from repro.baselines.hub_labelling import HubLabelling
from repro.baselines.phl import PrunedHighwayLabelling
from repro.baselines.tree_decomposition import TreeDecomposition, tree_decomposition
from repro.baselines.h2h import H2HIndex
from repro.baselines.lca import EulerTourLCA

__all__ = [
    "DijkstraOracle",
    "BidirectionalDijkstra",
    "ContractionHierarchy",
    "PrunedLandmarkLabelling",
    "HubLabelling",
    "PrunedHighwayLabelling",
    "TreeDecomposition",
    "tree_decomposition",
    "H2HIndex",
    "EulerTourLCA",
]
