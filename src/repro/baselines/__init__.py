"""Baseline distance-query methods the paper compares against.

Every baseline exposes the same minimal interface as
:class:`repro.HC2LIndex`:

``build(graph, ...)``
    classmethod constructing the index, recording ``construction_seconds``.
``distance(s, t)``
    exact shortest-path distance (``inf`` for disconnected pairs).
``label_size_bytes()``
    approximate index size, used for the Table 2/4 columns.
``distance_with_hub_count(s, t)``
    distance plus the number of label entries inspected, which feeds the
    "Average Hub Size" column of Table 3.

Implemented baselines:

* :class:`DijkstraOracle` and :class:`BidirectionalDijkstra` - search-based
  references (and the ground truth for tests).
* :class:`ContractionHierarchy` (CH) - search-based baseline and the
  vertex-ordering substrate for hub labelling.
* :class:`PrunedLandmarkLabelling` (PLL) - generic 2-hop labelling.
* :class:`HubLabelling` (HL) - hierarchical hub labelling using the CH
  contraction order.
* :class:`PrunedHighwayLabelling` (PHL) - highway (shortest-path)
  decomposition labels.
* :class:`H2HIndex` (H2H) - tree-decomposition labelling with RMQ-based
  LCA.
"""

from repro.baselines.dijkstra import BidirectionalDijkstra, DijkstraOracle
from repro.baselines.ch import ContractionHierarchy
from repro.baselines.pll import PrunedLandmarkLabelling
from repro.baselines.hub_labelling import HubLabelling
from repro.baselines.phl import PrunedHighwayLabelling
from repro.baselines.tree_decomposition import TreeDecomposition, tree_decomposition
from repro.baselines.h2h import H2HIndex
from repro.baselines.lca import EulerTourLCA

__all__ = [
    "DijkstraOracle",
    "BidirectionalDijkstra",
    "ContractionHierarchy",
    "PrunedLandmarkLabelling",
    "HubLabelling",
    "PrunedHighwayLabelling",
    "TreeDecomposition",
    "tree_decomposition",
    "H2HIndex",
    "EulerTourLCA",
]
