"""Pruned Landmark Labelling (Akiba, Iwata, Yoshida - SIGMOD 2013).

PLL is the generic 2-hop labelling machinery underlying both the HL and
PHL baselines in the paper: process vertices in a fixed importance order
and run a *pruned* Dijkstra from each, adding an entry ``(hub, distance)``
to the label of every vertex whose distance is not already covered by the
labels built so far.

The label of a vertex stores ``(hub_rank, distance)`` pairs sorted by hub
rank, so a query merges two sorted arrays - the classic 2-hop evaluation
(Equation 1 of the paper).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.oracle import BatchMixin
from repro.graph.graph import Graph
from repro.utils.validation import check_vertex

INF = float("inf")


def degree_order(graph: Graph) -> List[int]:
    """Vertices sorted by decreasing degree (ties: smaller id first).

    The standard ordering heuristic for PLL on road networks when no
    contraction-hierarchy order is available.
    """
    return sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))


@dataclass
class PrunedLandmarkLabelling(BatchMixin):
    """A pruned 2-hop labelling over a fixed vertex order.

    Implements the :class:`repro.core.oracle.DistanceOracle` protocol; the
    batch methods come from :class:`BatchMixin` (the sorted label merge is
    inherently per-pair, so ``supports_batch`` stays ``False``).
    """

    graph: Graph
    order: List[int]
    #: per vertex: ascending list of hub ranks
    label_hubs: List[List[int]] = field(default_factory=list)
    #: per vertex: distances aligned with ``label_hubs``
    label_dists: List[List[float]] = field(default_factory=list)
    construction_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, graph: Graph, order: Optional[Sequence[int]] = None) -> "PrunedLandmarkLabelling":
        """Build the labelling; ``order`` defaults to decreasing degree."""
        start = time.perf_counter()
        vertex_order = list(order) if order is not None else degree_order(graph)
        if len(vertex_order) != graph.num_vertices:
            raise ValueError("order must contain every vertex exactly once")
        index = cls(
            graph=graph,
            order=vertex_order,
            label_hubs=[[] for _ in range(graph.num_vertices)],
            label_dists=[[] for _ in range(graph.num_vertices)],
        )
        index._construct()
        index.construction_seconds = time.perf_counter() - start
        return index

    def _construct(self) -> None:
        graph = self.graph
        label_hubs = self.label_hubs
        label_dists = self.label_dists
        for rank, root in enumerate(self.order):
            dist: dict[int, float] = {root: 0.0}
            heap: List[Tuple[float, int]] = [(0.0, root)]
            settled: set[int] = set()
            while heap:
                d, v = heapq.heappop(heap)
                if v in settled:
                    continue
                settled.add(v)
                # prune if the existing labels already certify d(root, v) <= d
                # (the root itself is never pruned - it must receive its own
                # zero-distance entry for the 2-hop cover to hold)
                if v != root and self._query_upper_bound(root, v) <= d:
                    continue
                label_hubs[v].append(rank)
                label_dists[v].append(d)
                for w, weight in graph.neighbors(v):
                    nd = d + weight
                    if nd < dist.get(w, INF):
                        dist[w] = nd
                        heapq.heappush(heap, (nd, w))

    def _query_upper_bound(self, u: int, v: int) -> float:
        """2-hop upper bound between ``u`` and ``v`` from the labels built so far."""
        if u == v:
            return 0.0
        return _merge_min(
            self.label_hubs[u], self.label_dists[u], self.label_hubs[v], self.label_dists[v]
        )[0]

    # ------------------------------------------------------------------ #
    def distance(self, s: int, t: int) -> float:
        """Exact distance between ``s`` and ``t`` (Equation 1)."""
        check_vertex(s, self.graph.num_vertices, "s")
        check_vertex(t, self.graph.num_vertices, "t")
        if s == t:
            return 0.0
        return _merge_min(
            self.label_hubs[s], self.label_dists[s], self.label_hubs[t], self.label_dists[t]
        )[0]

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus the number of label entries touched by the merge."""
        check_vertex(s, self.graph.num_vertices, "s")
        check_vertex(t, self.graph.num_vertices, "t")
        if s == t:
            return 0.0, 0
        return _merge_min(
            self.label_hubs[s], self.label_dists[s], self.label_hubs[t], self.label_dists[t]
        )

    # ------------------------------------------------------------------ #
    def total_entries(self) -> int:
        """Total number of (hub, distance) pairs stored."""
        return sum(len(hubs) for hubs in self.label_hubs)

    def average_label_size(self) -> float:
        """Mean label length per vertex."""
        n = self.graph.num_vertices
        return self.total_entries() / n if n else 0.0

    def label_size_bytes(self) -> int:
        """Approximate size: 4 bytes per hub id + 8 bytes per distance."""
        return self.total_entries() * 12 + 8 * self.graph.num_vertices

    def hubs_of(self, vertex: int) -> List[Tuple[int, float]]:
        """The label of ``vertex`` as ``(hub_vertex, distance)`` pairs."""
        return [
            (self.order[rank], dist)
            for rank, dist in zip(self.label_hubs[vertex], self.label_dists[vertex])
        ]


def _merge_min(
    hubs_a: List[int],
    dists_a: List[float],
    hubs_b: List[int],
    dists_b: List[float],
) -> Tuple[float, int]:
    """Sorted-merge min-plus over two labels; returns (distance, entries touched)."""
    best = INF
    i = j = 0
    len_a, len_b = len(hubs_a), len(hubs_b)
    touched = 0
    while i < len_a and j < len_b:
        ha, hb = hubs_a[i], hubs_b[j]
        touched += 1
        if ha == hb:
            candidate = dists_a[i] + dists_b[j]
            if candidate < best:
                best = candidate
            i += 1
            j += 1
        elif ha < hb:
            i += 1
        else:
            j += 1
    return best, touched
