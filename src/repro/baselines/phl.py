"""Pruned Highway Labelling (Akiba, Iwata, Kawarabayashi, Kawata - ALENEX 2014).

PHL generalises hub labels by using *shortest paths* (highways) as hubs.
The graph is first decomposed into vertex-disjoint shortest paths; every
vertex then stores triples ``(path, offset_of_entry_vertex, distance)``
and a query combines two triples of a common path via

    d(s, u_j) + |offset(u_j) - offset(u_j')| + d(u_j', t)

(Equation 2 of the paper).  Labels are built with pruned Dijkstra searches
from the path vertices in decomposition order, so the label sizes stay far
below the naive all-paths labelling.

Highway decomposition
---------------------
The original implementation scores paths by traffic heuristics; here we
use a simple deterministic variant with the same flavour: repeatedly take
the highest-degree unassigned vertex, grow its shortest-path tree over the
*whole* graph, and peel off the longest root-to-descendant path consisting
of unassigned vertices.  Every extracted path is a shortest path of ``G``,
which is what the offset arithmetic of Equation 2 relies on.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.oracle import BatchMixin
from repro.graph.graph import Graph
from repro.graph.search import dijkstra_predecessors
from repro.utils.validation import check_vertex

INF = float("inf")

#: label entry: (path id, offset of the entry vertex along its path, distance)
Entry = Tuple[int, float, float]


def highway_decomposition(graph: Graph) -> List[List[int]]:
    """Decompose ``graph`` into vertex-disjoint shortest paths.

    Returns the list of paths (each a list of vertex ids) in extraction
    order, which doubles as the path importance order used for labelling.
    Every vertex appears in exactly one path; isolated vertices form
    singleton paths.
    """
    unassigned = set(graph.vertices())
    paths: List[List[int]] = []
    while unassigned:
        root = max(unassigned, key=lambda v: (graph.degree(v), -v))
        dist, parent = dijkstra_predecessors(graph, root)
        # valid[v]: the whole tree path root..v consists of unassigned vertices
        order = sorted(
            (v for v in unassigned if dist[v] < INF),
            key=lambda v: dist[v],
        )
        valid: Dict[int, bool] = {root: True}
        best = root
        best_dist = 0.0
        for v in order:
            if v == root:
                continue
            ok = valid.get(parent[v], False) and v in unassigned
            valid[v] = ok
            if ok and dist[v] > best_dist:
                best, best_dist = v, dist[v]
        path = []
        v = best
        while True:
            path.append(v)
            if v == root:
                break
            v = parent[v]
        path.reverse()
        paths.append(path)
        unassigned.difference_update(path)
    return paths


@dataclass
class PrunedHighwayLabelling(BatchMixin):
    """A pruned highway labelling index.

    Implements the :class:`repro.core.oracle.DistanceOracle` protocol; the
    path-block merge of Equation 2 is per-pair, so batches come from the
    :class:`BatchMixin` loop (``supports_batch`` stays ``False``).
    """

    graph: Graph
    paths: List[List[int]]
    #: per vertex: entries (path_id, offset, dist) with non-decreasing path_id
    labels: List[List[Entry]] = field(default_factory=list)
    construction_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, graph: Graph, paths: Sequence[Sequence[int]] | None = None) -> "PrunedHighwayLabelling":
        """Build the labelling, computing the highway decomposition if needed."""
        start = time.perf_counter()
        decomposition = [list(p) for p in paths] if paths is not None else highway_decomposition(graph)
        index = cls(
            graph=graph,
            paths=decomposition,
            labels=[[] for _ in range(graph.num_vertices)],
        )
        index._construct()
        index.construction_seconds = time.perf_counter() - start
        return index

    def _construct(self) -> None:
        graph = self.graph
        labels = self.labels
        for path_id, path in enumerate(self.paths):
            offsets = _path_offsets(graph, path)
            for root, offset in zip(path, offsets):
                self._pruned_search(path_id, root, offset)

    def _pruned_search(self, path_id: int, root: int, offset: float) -> None:
        """Pruned Dijkstra from one path vertex, adding (path, offset, dist) entries."""
        graph = self.graph
        labels = self.labels
        dist: Dict[int, float] = {root: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, root)]
        settled: set[int] = set()
        while heap:
            d, v = heapq.heappop(heap)
            if v in settled:
                continue
            settled.add(v)
            if v != root and self._query_upper_bound(v, root) <= d:
                continue
            labels[v].append((path_id, offset, d))
            for w, weight in graph.neighbors(v):
                nd = d + weight
                if nd < dist.get(w, INF):
                    dist[w] = nd
                    heapq.heappush(heap, (nd, w))

    def _query_upper_bound(self, u: int, v: int) -> float:
        """Equation 2 evaluated over the labels built so far."""
        return _merge_paths(self.labels[u], self.labels[v])[0]

    # ------------------------------------------------------------------ #
    def distance(self, s: int, t: int) -> float:
        """Exact distance between ``s`` and ``t`` (Equation 2)."""
        check_vertex(s, self.graph.num_vertices, "s")
        check_vertex(t, self.graph.num_vertices, "t")
        if s == t:
            return 0.0
        return _merge_paths(self.labels[s], self.labels[t])[0]

    def distance_with_hub_count(self, s: int, t: int) -> Tuple[float, int]:
        """Distance plus the number of label entries inspected."""
        check_vertex(s, self.graph.num_vertices, "s")
        check_vertex(t, self.graph.num_vertices, "t")
        if s == t:
            return 0.0, 0
        return _merge_paths(self.labels[s], self.labels[t])

    # ------------------------------------------------------------------ #
    def total_entries(self) -> int:
        """Total number of stored triples."""
        return sum(len(entries) for entries in self.labels)

    def average_label_size(self) -> float:
        """Mean number of triples per vertex."""
        n = self.graph.num_vertices
        return self.total_entries() / n if n else 0.0

    def label_size_bytes(self) -> int:
        """Approximate size: 16 bytes per triple (path id, offset, distance)."""
        return self.total_entries() * 16 + 8 * self.graph.num_vertices

    def num_paths(self) -> int:
        """Number of highways in the decomposition."""
        return len(self.paths)


def _path_offsets(graph: Graph, path: Sequence[int]) -> List[float]:
    """Cumulative distance of each path vertex from the path start."""
    offsets = [0.0]
    for a, b in zip(path, path[1:]):
        offsets.append(offsets[-1] + graph.edge_weight(a, b))
    return offsets


def _merge_paths(entries_s: List[Entry], entries_t: List[Entry]) -> Tuple[float, int]:
    """Sorted merge of two PHL labels on path id; returns (distance, entries touched)."""
    best = INF
    i = j = 0
    len_s, len_t = len(entries_s), len(entries_t)
    touched = 0
    while i < len_s and j < len_t:
        path_s = entries_s[i][0]
        path_t = entries_t[j][0]
        if path_s < path_t:
            i += 1
            continue
        if path_t < path_s:
            j += 1
            continue
        # same path: combine every pair of entries in the two (short) blocks
        i_end = i
        while i_end < len_s and entries_s[i_end][0] == path_s:
            i_end += 1
        j_end = j
        while j_end < len_t and entries_t[j_end][0] == path_s:
            j_end += 1
        for a in range(i, i_end):
            _, off_a, dist_a = entries_s[a]
            for b in range(j, j_end):
                _, off_b, dist_b = entries_t[b]
                touched += 1
                candidate = dist_a + dist_b + abs(off_a - off_b)
                if candidate < best:
                    best = candidate
        i, j = i_end, j_end
    return best, touched
