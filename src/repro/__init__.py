"""repro - Hierarchical Cut 2-Hop Labelling (HC2L) for road-network distance queries.

A from-scratch Python reproduction of

    Farhan, Koehler, Ohms, Wang.
    "Hierarchical Cut Labelling - Scaling Up Distance Queries on Road Networks."
    SIGMOD 2023 (arXiv:2311.11063).

The package provides

* :class:`repro.HC2LIndex` - the paper's index (build + query),
* a full set of baselines (Dijkstra, bidirectional Dijkstra, CH, PLL,
  hub labelling, pruned highway labelling, H2H) under :mod:`repro.baselines`,
* synthetic road-network generators and DIMACS I/O under :mod:`repro.graph`,
* and the experiment harness regenerating every table and figure of the
  paper's evaluation under :mod:`repro.experiments`.

Quickstart
----------
>>> from repro import HC2LIndex, synthetic_road_network, RoadNetworkSpec
>>> network = synthetic_road_network(RoadNetworkSpec("demo", num_vertices=300, seed=1))
>>> index = HC2LIndex.build(network.distance_graph)
>>> index.distance(0, 42)  # doctest: +SKIP
1234.5
"""

from repro.core.index import HC2LIndex, HC2LParameters
from repro.core.construction import HC2LBuilder
from repro.core.engine import QueryEngine
from repro.core.flat import FlatLabelling
from repro.core.oracle import BatchMixin, DistanceOracle
from repro.core.parallel import ParallelHC2LBuilder
from repro.graph.graph import Graph
from repro.graph.generators import (
    RoadNetwork,
    RoadNetworkSpec,
    generate_dataset,
    paper_dataset_specs,
    synthetic_road_network,
)
from repro.graph.io import read_dimacs, write_dimacs

__version__ = "1.0.0"

__all__ = [
    "HC2LIndex",
    "HC2LParameters",
    "HC2LBuilder",
    "ParallelHC2LBuilder",
    "QueryEngine",
    "FlatLabelling",
    "DistanceOracle",
    "BatchMixin",
    "Graph",
    "RoadNetwork",
    "RoadNetworkSpec",
    "synthetic_road_network",
    "generate_dataset",
    "paper_dataset_specs",
    "read_dimacs",
    "write_dimacs",
    "__version__",
]
