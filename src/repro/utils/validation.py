"""Input validation helpers shared by the public API surface."""

from __future__ import annotations


def check_vertex(vertex: int, n: int, name: str = "vertex") -> int:
    """Validate that ``vertex`` is an integer id within ``[0, n)``.

    Returns the vertex so callers can use it inline.  Raises ``ValueError``
    with a descriptive message otherwise; a clear error beats a silent
    IndexError deep inside Dijkstra.
    """
    if not isinstance(vertex, int) or isinstance(vertex, bool):
        raise ValueError(f"{name} must be an int, got {type(vertex).__name__}")
    if vertex < 0 or vertex >= n:
        raise ValueError(f"{name} {vertex} is out of range for a graph with {n} vertices")
    return vertex


def check_non_negative_weight(weight: float, name: str = "weight") -> float:
    """Validate an edge weight: finite and non-negative."""
    weight = float(weight)
    if weight < 0:
        raise ValueError(f"{name} must be non-negative, got {weight}")
    if weight != weight or weight == float("inf"):
        raise ValueError(f"{name} must be finite, got {weight}")
    return weight


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_balance_parameter(beta: float) -> float:
    """Validate the balance parameter beta from Definition 4.1 (0 < beta <= 0.5)."""
    beta = float(beta)
    if not 0.0 < beta <= 0.5:
        raise ValueError(f"balance parameter beta must satisfy 0 < beta <= 0.5, got {beta}")
    return beta
