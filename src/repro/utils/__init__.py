"""Small shared utilities used across the HC2L reproduction.

The modules in this package deliberately contain no domain logic.  They
provide the plumbing (timers, priority queues, validation helpers and
deterministic random number handling) that the graph, partitioning and
labelling packages build upon.
"""

from repro.utils.priority_queue import AddressablePriorityQueue
from repro.utils.rng import make_rng
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_non_negative_weight,
    check_probability,
    check_vertex,
)

__all__ = [
    "AddressablePriorityQueue",
    "Timer",
    "timed",
    "make_rng",
    "check_non_negative_weight",
    "check_probability",
    "check_vertex",
]
