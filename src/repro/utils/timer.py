"""Wall-clock timing helpers for construction and query measurements."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulates named wall-clock durations.

    The experiment harness uses one :class:`Timer` per index build so that
    the per-phase breakdown (hierarchy construction, shortcut insertion,
    labelling) can be reported alongside the total.
    """

    durations: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time to ``durations[name]``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed

    def total(self) -> float:
        """Total accumulated time across all named phases."""
        return sum(self.durations.values())

    def get(self, name: str) -> float:
        """Accumulated time for ``name`` (0.0 when never measured)."""
        return self.durations.get(name, 0.0)


def timed(func: Callable[..., T], *args: object, **kwargs: object) -> Tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
