"""Deterministic random number generation.

All synthetic dataset generators and workload samplers accept a ``seed``
and route it through :func:`make_rng` so experiments are reproducible
bit-for-bit across runs.
"""

from __future__ import annotations

import random
from typing import Union

Seed = Union[int, random.Random, None]


def make_rng(seed: Seed = None) -> random.Random:
    """Return a ``random.Random`` instance from a seed or pass one through.

    Accepts an ``int`` seed, an existing ``random.Random`` (returned as-is
    so callers can share a stream), or ``None`` for a fixed default seed.
    A fixed default (rather than entropy from the OS) keeps test runs and
    benchmark tables reproducible.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = 0x5EED
    return random.Random(seed)


def derive_rng(rng: random.Random, salt: int) -> random.Random:
    """Derive an independent stream from ``rng`` using an integer ``salt``."""
    return random.Random((rng.getrandbits(63) << 16) ^ salt)
