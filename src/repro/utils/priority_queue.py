"""Priority queues used by the shortest-path and max-flow machinery.

Dijkstra's algorithm in this code base uses the standard "lazy deletion"
idiom on top of :mod:`heapq`.  Some callers (for example the contraction
hierarchy node ordering) additionally need a queue whose priorities can be
decreased and whose minimum can be peeked without popping, which is what
:class:`AddressablePriorityQueue` provides.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Hashable, Iterator, Optional, Tuple


class AddressablePriorityQueue:
    """A min-priority queue with update-key and lazy deletion.

    Items must be hashable.  Pushing an existing item updates its priority
    (either up or down).  Popping returns the item with the smallest
    priority; ties are broken by insertion order, which keeps behaviour
    deterministic across runs.
    """

    _REMOVED = object()

    def __init__(self) -> None:
        self._heap: list[list[Any]] = []
        self._entries: dict[Hashable, list[Any]] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._entries

    def push(self, item: Hashable, priority: float) -> None:
        """Insert ``item`` or update its priority if already present."""
        if item in self._entries:
            self._entries[item][2] = self._REMOVED
        entry = [priority, next(self._counter), item]
        self._entries[item] = entry
        heapq.heappush(self._heap, entry)

    def priority(self, item: Hashable) -> float:
        """Return the current priority of ``item``.

        Raises ``KeyError`` if the item is not in the queue.
        """
        return self._entries[item][0]

    def pop(self) -> Tuple[Hashable, float]:
        """Remove and return ``(item, priority)`` with the smallest priority."""
        while self._heap:
            priority, _, item = heapq.heappop(self._heap)
            if item is not self._REMOVED:
                del self._entries[item]
                return item, priority
        raise KeyError("pop from an empty priority queue")

    def peek(self) -> Tuple[Hashable, float]:
        """Return ``(item, priority)`` with the smallest priority without removing it."""
        while self._heap:
            priority, _, item = self._heap[0]
            if item is self._REMOVED:
                heapq.heappop(self._heap)
                continue
            return item, priority
        raise KeyError("peek from an empty priority queue")

    def remove(self, item: Hashable) -> None:
        """Remove ``item`` from the queue if present."""
        entry = self._entries.pop(item, None)
        if entry is not None:
            entry[2] = self._REMOVED

    def items(self) -> Iterator[Tuple[Hashable, float]]:
        """Iterate over ``(item, priority)`` pairs in arbitrary order."""
        for item, entry in self._entries.items():
            yield item, entry[0]


class BucketQueue:
    """A monotone bucket queue for small integer priorities.

    Used by the degree-driven elimination orderings (tree decomposition and
    contraction hierarchies) where priorities are small non-negative
    integers that only need approximate ordering.  ``pop`` returns an item
    with the currently smallest bucket.
    """

    def __init__(self) -> None:
        self._buckets: dict[int, list[Hashable]] = {}
        self._position: dict[Hashable, int] = {}
        self._min_bucket: Optional[int] = None

    def __len__(self) -> int:
        return len(self._position)

    def __bool__(self) -> bool:
        return bool(self._position)

    def push(self, item: Hashable, priority: int) -> None:
        """Insert ``item`` with integer ``priority`` (replacing any old priority)."""
        old = self._position.get(item)
        if old is not None:
            self._buckets[old].remove(item)
        self._buckets.setdefault(priority, []).append(item)
        self._position[item] = priority
        if self._min_bucket is None or priority < self._min_bucket:
            self._min_bucket = priority

    def pop(self) -> Tuple[Hashable, int]:
        """Remove and return ``(item, priority)`` from the smallest non-empty bucket."""
        if not self._position:
            raise KeyError("pop from an empty bucket queue")
        bucket = self._min_bucket
        assert bucket is not None
        while not self._buckets.get(bucket):
            bucket += 1
        item = self._buckets[bucket].pop(0)
        del self._position[item]
        self._min_bucket = bucket
        return item, bucket
