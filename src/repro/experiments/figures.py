"""Generators for the paper's figures (Figures 6 and 7).

The figures are returned as plain data series (dicts of lists) so they can
be rendered as text tables, dumped to CSV, or plotted by downstream users;
this repository deliberately avoids a plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.index import HC2LIndex
from repro.experiments.datasets import bench_dataset_names, load_dataset
from repro.experiments.harness import measure_queries, query_time_per_set
from repro.experiments.methods import available_methods
from repro.experiments.workloads import distance_stratified_query_sets, random_pairs

#: The balance thresholds swept in Figure 7.
FIGURE7_BETAS = [0.15, 0.20, 0.25, 0.30, 0.35]
#: The methods plotted in Figure 6.
FIGURE6_METHODS = ["HC2L", "H2H", "PHL", "HL"]


@dataclass
class Figure6Result:
    """Query time per distance-stratified query set, per dataset and method."""

    datasets: List[str]
    methods: List[str]
    #: series[dataset][method] = [mean query time in us for Q1..Q10]
    series: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    #: how many pairs each query set actually contains (small graphs may
    #: leave the extreme buckets short)
    set_sizes: Dict[str, List[int]] = field(default_factory=dict)


def figure6(
    datasets: Optional[List[str]] = None,
    methods: Optional[List[str]] = None,
    pairs_per_set: int = 100,
    num_sets: int = 10,
    seed: int = 23,
) -> Figure6Result:
    """Figure 6 - query performance under varying query distances."""
    dataset_names = datasets or bench_dataset_names()
    specs = available_methods(methods or FIGURE6_METHODS)
    result = Figure6Result(datasets=list(dataset_names), methods=[s.name for s in specs])
    for dataset in dataset_names:
        graph = load_dataset(dataset).distance_graph
        workload = distance_stratified_query_sets(
            graph, num_sets=num_sets, pairs_per_set=pairs_per_set, seed=seed
        )
        result.set_sizes[dataset] = [len(qs) for qs in workload.query_sets]
        result.series[dataset] = {}
        for spec in specs:
            index = spec.builder(graph)
            result.series[dataset][spec.name] = query_time_per_set(index, workload.query_sets)
    return result


@dataclass
class Figure7Result:
    """Query time and average cut size under varying balance thresholds."""

    datasets: List[str]
    betas: List[float]
    #: query_time_us[dataset] = [mean query time per beta]
    query_time_us: Dict[str, List[float]] = field(default_factory=dict)
    #: avg_cut_size[dataset] = [average internal cut size per beta]
    avg_cut_size: Dict[str, List[float]] = field(default_factory=dict)
    #: max_cut_size[dataset] = [largest cut per beta]
    max_cut_size: Dict[str, List[float]] = field(default_factory=dict)


def figure7(
    datasets: Optional[List[str]] = None,
    betas: Optional[List[float]] = None,
    num_queries: int = 1000,
    seed: int = 29,
) -> Figure7Result:
    """Figure 7 - HC2L query time and cut size as the balance threshold varies."""
    dataset_names = datasets or bench_dataset_names()
    beta_values = betas or list(FIGURE7_BETAS)
    result = Figure7Result(datasets=list(dataset_names), betas=list(beta_values))
    for dataset in dataset_names:
        graph = load_dataset(dataset).distance_graph
        pairs = random_pairs(graph, num_queries, seed=seed)
        times: List[float] = []
        avg_cuts: List[float] = []
        max_cuts: List[float] = []
        for beta in beta_values:
            index = HC2LIndex.build(graph, beta=beta)
            seconds, _ = measure_queries(index, pairs)
            times.append(seconds * 1e6)
            avg_cuts.append(index.average_cut_size())
            max_cuts.append(float(index.max_cut_size()))
        result.query_time_us[dataset] = times
        result.avg_cut_size[dataset] = avg_cuts
        result.max_cut_size[dataset] = max_cuts
    return result
