"""Query workload generation (Section 5, "Benchmark Generation").

Two workloads are used in the paper:

* uniformly random vertex pairs (1M pairs in the paper; the experiment
  harness here defaults to a few thousand and scales with the dataset), and
* ten *distance-stratified* query sets Q1..Q10 where the distance of each
  pair falls into geometrically growing ranges between ``l_min`` and the
  network diameter (Figure 6).

For the serving layer a third, *skewed* workload models production
traffic: real query streams concentrate on a few popular endpoints
(airports, stations, depots), which is exactly what result caches exploit
- see :func:`skewed_pairs` and :class:`repro.serving.CachingOracle`.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.graph.graph import Graph
from repro.graph.search import dijkstra, eccentricity_estimate
from repro.utils.rng import Seed, make_rng

INF = float("inf")

QueryPair = Tuple[int, int]


def random_pairs(graph: Graph, count: int, seed: Seed = None) -> List[QueryPair]:
    """Uniformly random query pairs over ``V x V`` (self-pairs excluded)."""
    rng = make_rng(seed)
    n = graph.num_vertices
    if n < 2:
        return []
    pairs: List[QueryPair] = []
    while len(pairs) < count:
        s = rng.randrange(n)
        t = rng.randrange(n)
        if s != t:
            pairs.append((s, t))
    return pairs


def skewed_pairs(
    graph: Graph,
    count: int,
    seed: Seed = None,
    exponent: float = 1.0,
) -> List[QueryPair]:
    """Zipf-skewed query pairs (self-pairs excluded).

    Both endpoints are drawn from a Zipf-like distribution with the given
    ``exponent`` over a seeded random permutation of the vertices: the
    i-th most popular vertex is drawn with probability proportional to
    ``1 / (i + 1) ** exponent``.  The permutation decouples popularity
    from vertex ids, so "hot" vertices are spread across the network.
    A higher exponent concentrates the traffic harder.
    """
    rng = make_rng(seed)
    n = graph.num_vertices
    if n < 2 or count <= 0:
        return []
    popularity = list(range(n))
    rng.shuffle(popularity)
    weights = [1.0 / (i + 1) ** exponent for i in range(n)]
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]

    def draw() -> int:
        return popularity[bisect.bisect_left(cumulative, rng.random() * total)]

    pairs: List[QueryPair] = []
    while len(pairs) < count:
        s = draw()
        t = draw()
        if s != t:
            pairs.append((s, t))
    return pairs


def neighborhood_pairs(
    graph: Graph,
    count: int,
    seed: Seed = None,
    max_hops: int = 3,
) -> List[QueryPair]:
    """Locality-skewed query pairs: both endpoints a few hops apart.

    Models navigation-style traffic (route refinements, nearby-POI
    lookups) where the two endpoints are close in the network: a random
    source is drawn uniformly, then a target from its ``max_hops``-hop
    BFS ball.  This is the workload sharding layouts compete on - pairs
    inside one hierarchy subtree stay inside one shard under
    hierarchy-aligned boundaries, while id-range shards scatter them.
    Self-pairs and isolated sources are skipped.
    """
    rng = make_rng(seed)
    n = graph.num_vertices
    if n < 2 or count <= 0:
        return []
    pairs: List[QueryPair] = []
    attempts = 0
    while len(pairs) < count and attempts < 50 * count:
        attempts += 1
        s = rng.randrange(n)
        ball = [s]
        seen = {s}
        frontier = [s]
        for _ in range(max_hops):
            next_frontier: List[int] = []
            for v in frontier:
                for w in graph.neighbor_ids(v):
                    if w not in seen:
                        seen.add(w)
                        ball.append(w)
                        next_frontier.append(w)
            frontier = next_frontier
        if len(ball) < 2:
            continue
        t = ball[rng.randrange(1, len(ball))]
        pairs.append((s, t))
    return pairs


def neighborhood_batches(
    graph: Graph,
    num_batches: int,
    batch_size: int,
    seed: Seed = None,
    max_hops: int = 3,
) -> List[List[QueryPair]]:
    """Locality-skewed *batches*: each batch's pairs share one BFS ball.

    The batched counterpart of :func:`neighborhood_pairs`, modelling the
    request shape of a navigation client (one matrix of refinements
    around the current position per request): a random anchor is drawn
    per batch, and every pair of that batch connects two vertices of the
    anchor's ``max_hops``-hop BFS ball.  Because a ball lives inside one
    hierarchy subtree most of the time, whole batches land in a single
    shard under hierarchy-aligned boundaries - the workload the fleet's
    majority placement (:mod:`repro.serving.fleet.placement`) is measured
    on.  Anchors whose ball is trivial are re-drawn.
    """
    rng = make_rng(seed)
    n = graph.num_vertices
    if n < 2 or num_batches <= 0 or batch_size <= 0:
        return []
    batches: List[List[QueryPair]] = []
    attempts = 0
    while len(batches) < num_batches and attempts < 50 * num_batches:
        attempts += 1
        anchor = rng.randrange(n)
        ball = [anchor]
        seen = {anchor}
        frontier = [anchor]
        for _ in range(max_hops):
            next_frontier: List[int] = []
            for v in frontier:
                for w in graph.neighbor_ids(v):
                    if w not in seen:
                        seen.add(w)
                        ball.append(w)
                        next_frontier.append(w)
            frontier = next_frontier
        if len(ball) < 2:
            continue
        batch: List[QueryPair] = []
        while len(batch) < batch_size:
            s = ball[rng.randrange(len(ball))]
            t = ball[rng.randrange(len(ball))]
            if s != t:
                batch.append((s, t))
        batches.append(batch)
    return batches


def neighborhood_matrices(
    graph: Graph,
    num_matrices: int,
    matrix_size: int,
    seed: Seed = None,
    max_hops: int = 4,
) -> List[Tuple[List[int], List[int]]]:
    """Locality-skewed ``many_to_many`` requests from one BFS ball each.

    The matrix counterpart of :func:`neighborhood_batches`, modelling a
    dispatch tick (drivers x riders around one hot zone): a random
    anchor is drawn per request, and both the source and the target list
    are sampled (with replacement) from the anchor's ``max_hops``-hop
    BFS ball.  Each request is a ``(sources, targets)`` pair of
    ``matrix_size`` vertex ids - ``matrix_size ** 2`` result floats, the
    serialization-bound shape the wire-format benchmarks compare on.
    Anchors whose ball is trivial are re-drawn.
    """
    rng = make_rng(seed)
    n = graph.num_vertices
    if n < 2 or num_matrices <= 0 or matrix_size <= 0:
        return []
    matrices: List[Tuple[List[int], List[int]]] = []
    attempts = 0
    while len(matrices) < num_matrices and attempts < 50 * num_matrices:
        attempts += 1
        anchor = rng.randrange(n)
        ball = [anchor]
        seen = {anchor}
        frontier = [anchor]
        for _ in range(max_hops):
            next_frontier: List[int] = []
            for v in frontier:
                for w in graph.neighbor_ids(v):
                    if w not in seen:
                        seen.add(w)
                        ball.append(w)
                        next_frontier.append(w)
            frontier = next_frontier
        if len(ball) < 2:
            continue
        sources = [ball[rng.randrange(len(ball))] for _ in range(matrix_size)]
        targets = [ball[rng.randrange(len(ball))] for _ in range(matrix_size)]
        matrices.append((sources, targets))
    return matrices


@dataclass
class StratifiedWorkload:
    """The ten distance-stratified query sets of Figure 6."""

    l_min: float
    l_max: float
    #: query_sets[i] holds the pairs whose distance lies in bucket i+1
    query_sets: List[List[QueryPair]]

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """The distance range (exclusive lower, inclusive upper) of bucket ``index``."""
        ratio = (self.l_max / self.l_min) ** (1.0 / len(self.query_sets))
        lower = self.l_min * ratio ** index
        upper = self.l_min * ratio ** (index + 1)
        return lower, upper


def distance_stratified_query_sets(
    graph: Graph,
    num_sets: int = 10,
    pairs_per_set: int = 100,
    l_min: Optional[float] = None,
    seed: Seed = None,
    max_source_samples: int = 400,
) -> StratifiedWorkload:
    """Generate the Q1..Q10 workloads of Figure 6.

    The paper fixes ``l_min`` to 1000 metres and ``l_max`` to the network
    diameter, then draws 10,000 pairs per range.  Here ``l_min`` defaults
    to a small fraction of the estimated diameter (synthetic networks have
    arbitrary units) and the pair counts are configurable.

    Sampling works source-by-source: a full Dijkstra from each sampled
    source distributes its targets into the distance buckets, stopping once
    every bucket holds ``pairs_per_set`` pairs or the source budget is
    exhausted (some buckets may stay short on very small graphs).
    """
    rng = make_rng(seed)
    diameter = eccentricity_estimate(graph, seed_vertex=0)
    if diameter <= 0:
        return StratifiedWorkload(l_min=1.0, l_max=1.0, query_sets=[[] for _ in range(num_sets)])
    if l_min is None:
        l_min = max(diameter / 1000.0, 1e-9)
    l_max = diameter
    ratio = (l_max / l_min) ** (1.0 / num_sets)
    bounds = [l_min * ratio ** i for i in range(num_sets + 1)]

    query_sets: List[List[QueryPair]] = [[] for _ in range(num_sets)]
    n = graph.num_vertices
    for _ in range(max_source_samples):
        if all(len(qs) >= pairs_per_set for qs in query_sets):
            break
        source = rng.randrange(n)
        dist = dijkstra(graph, source)
        # shuffle targets so early vertex ids are not over-represented
        targets = list(range(n))
        rng.shuffle(targets)
        for target in targets:
            d = dist[target]
            if d == INF or target == source or d < bounds[0]:
                continue
            bucket = _bucket_of(d, bounds)
            if bucket is None:
                continue
            if len(query_sets[bucket]) < pairs_per_set:
                query_sets[bucket].append((source, target))
    return StratifiedWorkload(l_min=l_min, l_max=l_max, query_sets=query_sets)


def _bucket_of(distance: float, bounds: Sequence[float]) -> Optional[int]:
    """Index of the bucket whose (lower, upper] range contains ``distance``."""
    for i in range(len(bounds) - 1):
        if bounds[i] < distance <= bounds[i + 1]:
            return i
    if distance > bounds[-1]:
        return len(bounds) - 2
    return None
