"""Experiment harness reproducing the paper's evaluation (Section 5).

The modules here regenerate every table and figure of the paper on the
synthetic stand-in datasets:

* :mod:`repro.experiments.datasets` - the dataset registry (Table 1),
* :mod:`repro.experiments.workloads` - random and distance-stratified
  query workloads (the Q1..Q10 sets of Figure 6),
* :mod:`repro.experiments.methods` - a uniform build/query wrapper around
  HC2L and every baseline,
* :mod:`repro.experiments.harness` - runs one (method, dataset) cell and
  collects query time, label size, construction time and hub counts,
* :mod:`repro.experiments.sharding` - shard-router overhead vs. the
  monolithic engine across shard counts,
* :mod:`repro.experiments.fleet` - closed-loop latency of the
  multi-process shard fleet per worker count,
* :mod:`repro.experiments.tables` / :mod:`repro.experiments.figures` -
  assemble the rows/series of Tables 2-5 and Figures 6-7,
* :mod:`repro.experiments.report` - plain-text rendering.
"""

from repro.experiments.datasets import DATASET_NAMES, dataset_summary, load_dataset
from repro.experiments.fleet import fleet_latency_rows
from repro.experiments.methods import METHOD_BUILDERS, MethodSpec, available_methods
from repro.experiments.workloads import (
    distance_stratified_query_sets,
    neighborhood_batches,
    random_pairs,
)
from repro.experiments.harness import CellResult, run_cell
from repro.experiments.sharding import router_overhead_rows
from repro.experiments import figures, report, tables

__all__ = [
    "fleet_latency_rows",
    "neighborhood_batches",
    "router_overhead_rows",
    "DATASET_NAMES",
    "load_dataset",
    "dataset_summary",
    "random_pairs",
    "distance_stratified_query_sets",
    "MethodSpec",
    "METHOD_BUILDERS",
    "available_methods",
    "run_cell",
    "CellResult",
    "tables",
    "figures",
    "report",
]
