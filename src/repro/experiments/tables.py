"""Generators for the paper's tables (Tables 1-5).

Each function returns a list of row dictionaries; the plain-text rendering
lives in :mod:`repro.experiments.report`.  The row structure mirrors the
corresponding table of the paper so EXPERIMENTS.md can put the reproduced
numbers side by side with the published ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.datasets import bench_dataset_names, dataset_summary
from repro.experiments.evaluation import EvaluationResult, run_evaluation

#: Methods shown in Tables 2 and 4 (query time / size / construction columns).
TABLE2_METHODS = ["HC2L", "HC2L_p", "H2H", "PHL", "HL"]
#: Methods shown in Table 3 (average hub size columns).
TABLE3_METHODS = ["HC2L", "H2H", "PHL", "HL"]


def table1(datasets: Optional[List[str]] = None) -> List[Dict[str, object]]:
    """Table 1 - summary of the datasets used in the evaluation."""
    return dataset_summary(datasets)


def table2(
    datasets: Optional[List[str]] = None,
    num_queries: int = 2000,
    evaluation: Optional[EvaluationResult] = None,
) -> List[Dict[str, object]]:
    """Table 2 - query time, labelling size and construction time (distance weights)."""
    evaluation = evaluation or run_evaluation(
        datasets=datasets, methods=TABLE2_METHODS, weighting="distance", num_queries=num_queries
    )
    return _comparison_rows(evaluation)


def table4(
    datasets: Optional[List[str]] = None,
    num_queries: int = 2000,
    evaluation: Optional[EvaluationResult] = None,
) -> List[Dict[str, object]]:
    """Table 4 - as Table 2 but with travel times as edge weights."""
    evaluation = evaluation or run_evaluation(
        datasets=datasets, methods=TABLE2_METHODS, weighting="travel_time", num_queries=num_queries
    )
    return _comparison_rows(evaluation)


def table3(
    datasets: Optional[List[str]] = None,
    num_queries: int = 2000,
    evaluation: Optional[EvaluationResult] = None,
) -> List[Dict[str, object]]:
    """Table 3 - LCA storage requirements and average hub size."""
    evaluation = evaluation or run_evaluation(
        datasets=datasets, methods=TABLE3_METHODS, weighting="distance", num_queries=num_queries
    )
    rows: List[Dict[str, object]] = []
    for dataset in evaluation.datasets:
        row: Dict[str, object] = {"dataset": dataset}
        for method in evaluation.methods:
            cell = evaluation.cell(dataset, method)
            row[f"ahs_{method}"] = round(cell.average_hubs, 1)
            if cell.lca_storage_bytes is not None:
                row[f"lca_bytes_{method}"] = cell.lca_storage_bytes
        rows.append(row)
    return rows


def table5(
    datasets: Optional[List[str]] = None,
    evaluation: Optional[EvaluationResult] = None,
) -> List[Dict[str, object]]:
    """Table 5 - tree height and maximum cut size / width, HC2L vs H2H."""
    evaluation = evaluation or run_evaluation(
        datasets=datasets, methods=["HC2L", "H2H"], weighting="distance", num_queries=200
    )
    rows: List[Dict[str, object]] = []
    for dataset in evaluation.datasets:
        hc2l = evaluation.cell(dataset, "HC2L")
        h2h = evaluation.cell(dataset, "H2H")
        rows.append(
            {
                "dataset": dataset,
                "height_HC2L": int(hc2l.extra.get("tree_height", 0)),
                "height_H2H": int(h2h.extra.get("tree_height", 0)),
                "max_cut_HC2L": int(hc2l.extra.get("max_cut_size", 0)),
                "width_H2H": int(h2h.extra.get("tree_width", 0)),
            }
        )
    return rows


def _comparison_rows(evaluation: EvaluationResult) -> List[Dict[str, object]]:
    """Shared row assembly for Tables 2 and 4."""
    rows: List[Dict[str, object]] = []
    for dataset in evaluation.datasets:
        row: Dict[str, object] = {"dataset": dataset, "weighting": evaluation.weighting}
        for method in evaluation.methods:
            cell = evaluation.cell(dataset, method)
            # HC2L_p differs from HC2L only in construction time; the paper
            # reports a single extra construction column for it.
            if method != "HC2L_p":
                row[f"query_us_{method}"] = round(cell.query_microseconds, 3)
                row[f"label_bytes_{method}"] = cell.label_size_bytes
            row[f"construction_s_{method}"] = round(cell.construction_seconds, 3)
        rows.append(row)
    return rows


def all_tables(datasets: Optional[List[str]] = None, num_queries: int = 1000) -> Dict[str, List[Dict[str, object]]]:
    """Regenerate every table (used by the ``examples/reproduce_tables.py`` script)."""
    datasets = datasets or bench_dataset_names()
    distance_eval = run_evaluation(
        datasets=datasets, methods=TABLE2_METHODS, weighting="distance", num_queries=num_queries
    )
    travel_eval = run_evaluation(
        datasets=datasets, methods=TABLE2_METHODS, weighting="travel_time", num_queries=num_queries
    )
    return {
        "table1": table1(datasets),
        "table2": table2(evaluation=distance_eval),
        "table3": table3(datasets=datasets, num_queries=num_queries),
        "table4": table4(evaluation=travel_eval),
        "table5": table5(datasets=datasets),
    }
