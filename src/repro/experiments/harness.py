"""Run one (method, dataset, workload) cell of the evaluation.

A *cell* is one table entry: build the index for one method on one graph,
measure construction time and index size, then time a batch of distance
queries and record the mean per-query latency and the mean number of label
entries (hubs) inspected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.oracle import DistanceOracle
from repro.experiments.methods import MethodSpec
from repro.graph.graph import Graph

QueryPair = Tuple[int, int]


@dataclass
class CellResult:
    """Measurements for one method on one graph."""

    method: str
    dataset: str
    num_vertices: int
    num_edges: int
    construction_seconds: float
    label_size_bytes: int
    query_seconds_mean: float
    average_hubs: float
    lca_storage_bytes: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def query_microseconds(self) -> float:
        """Mean query latency in microseconds (the unit used in the paper)."""
        return self.query_seconds_mean * 1e6

    def as_dict(self) -> Dict[str, object]:
        """Flatten to a plain dict for the report renderer."""
        row: Dict[str, object] = {
            "method": self.method,
            "dataset": self.dataset,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "construction_seconds": self.construction_seconds,
            "label_size_bytes": self.label_size_bytes,
            "query_microseconds": self.query_microseconds,
            "average_hubs": self.average_hubs,
        }
        if self.lca_storage_bytes is not None:
            row["lca_storage_bytes"] = self.lca_storage_bytes
        row.update(self.extra)
        return row


def run_cell(
    method: MethodSpec,
    graph: Graph,
    query_pairs: Sequence[QueryPair],
    dataset_name: str = "?",
    prebuilt_index: Optional[object] = None,
) -> CellResult:
    """Build (or reuse) the method's index on ``graph`` and measure queries."""
    if prebuilt_index is None:
        build_start = time.perf_counter()
        index = method.builder(graph)
        build_seconds = time.perf_counter() - build_start
    else:
        index = prebuilt_index
        build_seconds = getattr(index, "construction_seconds", 0.0)

    construction = getattr(index, "construction_seconds", None) or build_seconds
    query_seconds, average_hubs = measure_queries(index, query_pairs)
    batch_seconds = measure_batch_queries(index, query_pairs)

    lca_bytes: Optional[int] = None
    if method.has_lca_storage:
        lca_bytes = int(index.lca_storage_bytes())

    extra: Dict[str, float] = {}
    if batch_seconds is not None:
        extra["batch_query_microseconds"] = batch_seconds * 1e6
        if batch_seconds > 0.0:
            extra["batch_speedup"] = query_seconds / batch_seconds
    extra["supports_batch"] = float(bool(index.supports_batch))
    if hasattr(index, "tree_height"):
        extra["tree_height"] = float(index.tree_height())
    if hasattr(index, "max_cut_size"):
        extra["max_cut_size"] = float(index.max_cut_size())
    if hasattr(index, "tree_width"):
        extra["tree_width"] = float(index.tree_width())
    if hasattr(index, "average_cut_size"):
        extra["avg_cut_size"] = float(index.average_cut_size())

    return CellResult(
        method=method.name,
        dataset=dataset_name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        construction_seconds=construction,
        label_size_bytes=int(index.index_size_bytes),
        query_seconds_mean=query_seconds,
        average_hubs=average_hubs,
        lca_storage_bytes=lca_bytes,
        extra=extra,
    )


def measure_queries(index: "DistanceOracle", query_pairs: Sequence[QueryPair]) -> Tuple[float, float]:
    """Mean per-query latency (seconds) and mean hubs scanned over ``query_pairs``."""
    if not query_pairs:
        return 0.0, 0.0
    distance = index.distance
    # warm lazily built query state (e.g. HC2L's flat-label engine) outside
    # the timed region so one-off conversion cost is not billed as latency
    distance(*query_pairs[0])
    start = time.perf_counter()
    for s, t in query_pairs:
        distance(s, t)
    elapsed = time.perf_counter() - start

    total_hubs = 0
    hub_samples = query_pairs[: min(len(query_pairs), 500)]
    for s, t in hub_samples:
        total_hubs += index.distance_with_hub_count(s, t)[1]
    average_hubs = total_hubs / len(hub_samples) if hub_samples else 0.0
    return elapsed / len(query_pairs), average_hubs


def measure_batch_queries(
    index: "DistanceOracle", query_pairs: Sequence[QueryPair]
) -> Optional[float]:
    """Mean per-query latency (seconds) of the batch API; ``None`` when idle.

    Every oracle speaks ``distances`` now, so this measures the whole
    workload in one protocol call - genuinely vectorised when the method's
    ``supports_batch`` says so, the equivalent loop otherwise.
    """
    if not query_pairs:
        return None
    index.distances(query_pairs[:1])  # warm lazy state outside the timed region
    start = time.perf_counter()
    index.distances(query_pairs)
    elapsed = time.perf_counter() - start
    return elapsed / len(query_pairs)


def query_time_per_set(index: "DistanceOracle", query_sets: List[List[QueryPair]]) -> List[float]:
    """Mean query latency (microseconds) per distance-stratified query set (Figure 6)."""
    result: List[float] = []
    for pairs in query_sets:
        seconds, _ = measure_queries(index, pairs)
        result.append(seconds * 1e6)
    return result
