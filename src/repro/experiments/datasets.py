"""Dataset registry for the evaluation (synthetic stand-ins for Table 1).

The paper evaluates on ten DIMACS/PTV road networks.  Those graphs are far
too large for pure-Python index construction, so the registry exposes
synthetic road networks with the same *names* and the same relative size
ordering, shrunk by roughly four orders of magnitude (see DESIGN.md for
the substitution rationale).  Real DIMACS files can be used instead by
pointing :func:`load_dataset` at a ``.gr`` file via the ``REPRO_DATA_DIR``
environment variable.

Two environment variables control benchmark weight:

``REPRO_BENCH_SCALE``
    multiplies every synthetic dataset size (default ``1``).
``REPRO_BENCH_DATASETS``
    comma-separated subset of dataset names to run (default: the five
    smallest, so the bundled benchmark suite finishes in minutes).
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional

from repro.graph.generators import RoadNetwork, paper_dataset_specs, synthetic_road_network
from repro.graph.graph import Graph
from repro.graph.io import read_dimacs
from repro.graph.search import eccentricity_estimate

#: All dataset names, ordered as in Table 1 of the paper.
DATASET_NAMES: List[str] = ["NY", "BAY", "COL", "FLA", "CAL", "E", "W", "CTR", "USA", "EUR"]

#: The subset used by default in the bundled benchmarks (keeps runtimes sane).
DEFAULT_BENCH_DATASETS: List[str] = ["NY", "BAY", "COL", "FLA", "CAL"]


def bench_scale() -> float:
    """The global size multiplier for synthetic datasets."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def bench_dataset_names() -> List[str]:
    """Datasets the benchmark suite should cover (env-var overridable)."""
    raw = os.environ.get("REPRO_BENCH_DATASETS")
    if not raw:
        return list(DEFAULT_BENCH_DATASETS)
    names = [name.strip().upper() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in DATASET_NAMES]
    if unknown:
        raise ValueError(f"unknown dataset names in REPRO_BENCH_DATASETS: {unknown}")
    return names


@lru_cache(maxsize=32)
def load_dataset(name: str, scale: Optional[float] = None) -> RoadNetwork:
    """Load (generate) the synthetic stand-in for dataset ``name``.

    When ``REPRO_DATA_DIR`` is set and contains ``<name>.gr`` (optionally
    with ``<name>-t.gr`` for travel times), the real DIMACS graph is loaded
    instead of a synthetic one.
    """
    name = name.upper()
    if name not in DATASET_NAMES:
        raise KeyError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    data_dir = os.environ.get("REPRO_DATA_DIR")
    if data_dir:
        network = _load_dimacs_dataset(Path(data_dir), name)
        if network is not None:
            return network
    scale = bench_scale() if scale is None else scale
    spec = paper_dataset_specs(scale)[name]
    return synthetic_road_network(spec)


def _load_dimacs_dataset(data_dir: Path, name: str) -> Optional[RoadNetwork]:
    """Load a real DIMACS dataset from disk when available."""
    from repro.graph.generators import RoadNetworkSpec

    distance_path = data_dir / f"{name}.gr"
    if not distance_path.exists():
        return None
    distance_graph = read_dimacs(distance_path)
    travel_path = data_dir / f"{name}-t.gr"
    travel_graph = read_dimacs(travel_path) if travel_path.exists() else distance_graph
    spec = RoadNetworkSpec(name=name, num_vertices=distance_graph.num_vertices, seed=0)
    return RoadNetwork(
        spec=spec,
        distance_graph=distance_graph,
        travel_time_graph=travel_graph,
        coordinates={},
    )


def dataset_summary(names: Optional[List[str]] = None) -> List[Dict[str, object]]:
    """Rows of Table 1: |V|, |E|, estimated diameter and memory per dataset."""
    rows: List[Dict[str, object]] = []
    for name in names or bench_dataset_names():
        network = load_dataset(name)
        graph: Graph = network.distance_graph
        rows.append(
            {
                "dataset": name,
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "diameter_estimate": round(eccentricity_estimate(graph), 1),
                "memory_bytes": graph.memory_bytes(),
            }
        )
    return rows


def clear_dataset_cache() -> None:
    """Drop memoised datasets (used by tests that tweak the scale)."""
    load_dataset.cache_clear()
