"""Dynamic-update serving benchmark (generation hot-swap experiment).

The paper's Section 5.4 observation - the hierarchy is weight-independent,
so traffic changes only refresh labels - becomes a serving capability in
three steps: a scoped :func:`repro.core.dynamic.relabel` over the touched
subtrees, a new index *generation* written next to the old one
(:meth:`repro.core.index.HC2LIndex.save_sharded`), and a fleet-wide
hot-swap (``reload``) that drains in-flight batches and flips every
worker atomically.  This workload measures the whole pipeline under a
time-of-day weight-change replay:

* each **epoch** congests one road neighbourhood (a clustered set of
  edges around a random centre gets its weights scaled by that epoch's
  rush-hour factor), the scoped relabel refreshes the labels, the new
  generation is written, and a live fleet is reloaded **while
  concurrent TCP clients keep querying** - every answer during the swap
  must be bit-identical to either the old or the new generation
  (never a mix, never an error, never a drop);
* after each swap a probe batch is verified bit-identical to a fresh
  ``HC2LIndex.build`` on the new weights - the staleness wall;
* one extra row times the scoped relabel against the full relabel on
  the same change set, recording the speedup the scoping buys.

The staleness wall compares *distances* across two independently built
indexes, so the workload keeps every path sum float-exact: edge weights
are rounded to integers up front and the per-epoch factors are dyadic
rationals (2.5, 0.5, ...).  A fresh build is free to pick different
balanced cuts than the served index (Algorithm 1 seeds its partitions
from distances, so cut tie-breaking is weight-sensitive), and with
inexact sums two correct indexes can disagree in the last ULP simply by
splitting a shortest path at different hubs.  Exact sums make
bit-identity hierarchy-independent - any correct index must produce the
same bits.

Rows land in ``BENCH_query.json`` under the ``dynamic-updates`` and
``relabel-scoped-vs-full`` workloads; CI fails the smoke run when they
are missing.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.dynamic import relabel
from repro.core.index import HC2LIndex
from repro.experiments.workloads import make_rng, neighborhood_batches
from repro.graph.graph import Graph
from repro.serving.fleet import FleetClient, FleetOracle

QueryPair = Tuple[int, int]

#: per-epoch weight multipliers - a miniature rush-hour cycle (morning
#: congestion, midday relief, evening peak, overnight recovery); all
#: dyadic rationals so products and path sums over integer base weights
#: stay float-exact across the whole replay
EPOCH_FACTORS = (2.5, 0.5, 3.0, 1.25)


def integerised(graph: Graph) -> Graph:
    """``graph`` with every weight rounded to a positive integer.

    The dynamic bench verifies post-swap answers bit-identical to a
    fresh build; integer weights (scaled by dyadic epoch factors) keep
    every path sum exact in float64, which is what makes that check
    independent of the cut tie-breaking of the comparison build.
    """
    return graph.reweighted(
        {(u, v): max(1.0, float(round(w))) for u, v, w in graph.edges()}
    )


def clustered_edge_changes(
    graph: Graph,
    num_edges: int,
    factor: float,
    seed=None,
) -> Dict[Tuple[int, int], float]:
    """A clustered weight-change set: ``num_edges`` edges around one centre.

    Grows a BFS ball from a random centre until it encloses at least
    ``num_edges`` edges, then scales the first ``num_edges`` of them (in
    deterministic sorted order) by ``factor``.  Clustered changes model
    congestion - a neighbourhood slows down together - and are what the
    scoped relabel is built for: the touched edges share a few hierarchy
    subtrees.  Raises ``ValueError`` when the graph cannot supply enough
    edges, so an empty change set can never look like a measured one.
    """
    if num_edges < 1:
        raise ValueError(f"num_edges must be >= 1, got {num_edges}")
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    rng = make_rng(seed)
    for _ in range(50):
        centre = rng.randrange(graph.num_vertices)
        ball = {centre}
        frontier = [centre]
        edges: set = set()
        while frontier and len(edges) < num_edges:
            next_frontier: List[int] = []
            for v in frontier:
                for w in graph.neighbor_ids(v):
                    if w not in ball:
                        ball.add(w)
                        next_frontier.append(w)
                    edges.add((min(v, w), max(v, w)))
            frontier = next_frontier
        if len(edges) >= num_edges:
            chosen = sorted(edges)[:num_edges]
            return {(u, v): graph.edge_weight(u, v) * factor for u, v in chosen}
    raise ValueError(
        f"could not find a neighbourhood with {num_edges} edges in "
        f"{graph.num_vertices} vertices; the graph is too small or disconnected"
    )


def update_latency_rows(
    index: HC2LIndex,
    graph: Graph,
    workdir: Union[str, Path],
    num_workers: int = 2,
    num_shards: int = 4,
    num_clients: int = 4,
    edges_per_epoch: int = 10,
    epoch_factors: Sequence[float] = EPOCH_FACTORS,
    batch_size: int = 32,
    num_batches: int = 12,
    seed: int = 29,
    shared_cache_slots: int = 4096,
) -> List[Dict[str, object]]:
    """Replay a time-of-day weight-change workload against a live fleet.

    Shards ``index`` as generation 0 under ``workdir`` and starts a
    ``num_workers`` fleet over TCP.  Per epoch: congest one neighbourhood
    (:func:`clustered_edge_changes`), scoped-relabel, write the next
    generation, then hot-swap the fleet while ``num_clients`` concurrent
    TCP clients replay locality batches in closed loop.  The swap must
    lose nothing: every in-swap answer is verified bit-identical to the
    old or the new generation (an error, a drop or a mixed batch raises),
    and a post-swap probe is verified bit-identical to a fresh build on
    the new weights.  The first epoch's change set is additionally timed
    through the *full* relabel to record the scoped speedup.

    Returns one ``dynamic-updates`` row per epoch plus one
    ``relabel-scoped-vs-full`` row.
    """
    if not epoch_factors:
        raise ValueError("epoch_factors must name at least one epoch")
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    # integer weights + dyadic factors keep path sums exact, so the
    # bit-identity walls below are well-posed (see the module docstring)
    graph = integerised(graph)
    index = relabel(index, graph)
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    path = workdir / "dynamic-bench.npz"
    index.save_sharded(path, num_shards=num_shards, boundaries="hierarchy")

    batches = neighborhood_batches(graph, num_batches, batch_size, seed=seed)
    if len(batches) < num_batches:
        raise ValueError(
            f"workload generation produced {len(batches)}/{num_batches} "
            f"batches; the graph is too small for the dynamic bench"
        )

    rows: List[Dict[str, object]] = []
    current_graph = graph
    current_index = index
    with FleetOracle(
        path,
        num_workers=num_workers,
        shared_cache_slots=shared_cache_slots,
    ) as fleet:
        host, port = fleet.start_tcp()
        # warm the shared cache on generation 0 so the swap also proves
        # the epoch bump: a stale cached distance surviving the reload
        # would fail the post-swap bit-identity wall below
        fleet.distances([pair for batch in batches for pair in batch])

        for epoch, factor in enumerate(epoch_factors):
            changed = clustered_edge_changes(
                current_graph, edges_per_epoch, factor, seed=seed + 100 + epoch
            )
            new_graph = current_graph.reweighted(changed)

            relabel_start = time.perf_counter()
            new_index = relabel(current_index, new_graph, changed_edges=changed)
            relabel_seconds = time.perf_counter() - relabel_start
            scoped = bool(getattr(new_index, "_extra", {}).get("relabel_scoped"))

            if epoch == 0:
                rows.append(
                    _scoped_vs_full_row(
                        current_index, new_graph, changed, edges_per_epoch
                    )
                )

            save_start = time.perf_counter()
            new_index.save_sharded(path, num_shards=num_shards, boundaries="hierarchy")
            save_seconds = time.perf_counter() - save_start

            # the locality batches rarely cross the congested neighbourhood,
            # so add one batch of pairs whose distance provably differs
            # between the generations - without it every in-swap answer is
            # generation-ambiguous and the post-swap wall never exercises
            affected = _affected_batch(
                current_index, new_index, changed, batches, batch_size
            )
            epoch_batches = list(batches) + [affected]
            old_expect = [current_index.distances(batch) for batch in epoch_batches]
            new_expect = [new_index.distances(batch) for batch in epoch_batches]
            reload_seconds, swap_counts = asyncio.run(
                _swap_under_load(
                    host, port, epoch_batches, old_expect, new_expect, num_clients
                )
            )
            if swap_counts["errors"]:
                raise AssertionError(
                    f"epoch {epoch}: {swap_counts['errors']} requests errored "
                    f"during the generation swap"
                )

            # staleness wall: the live fleet must now answer bit-identically
            # to a fresh build on the new weights
            fresh = HC2LIndex.build(new_graph, parameters=index.parameters)
            probe = [pair for batch in batches for pair in batch]
            served = fleet.distances(probe)
            expected = fresh.distances(probe)
            if served.tolist() != expected.tolist():
                raise AssertionError(
                    f"epoch {epoch}: post-swap fleet answers diverged from a "
                    f"fresh build on the new weights"
                )

            rows.append(
                {
                    "oracle": f"HC2L+fleet(workers={num_workers})",
                    "workload": "dynamic-updates",
                    "epoch": epoch,
                    "epoch_factor": factor,
                    "num_changed_edges": len(changed),
                    "num_workers": num_workers,
                    "num_shards": num_shards,
                    "num_clients": num_clients,
                    "generation": fleet.generation,
                    "scoped_relabel": scoped,
                    "relabel_seconds": round(relabel_seconds, 4),
                    "save_seconds": round(save_seconds, 4),
                    "reload_seconds": round(reload_seconds, 4),
                    "update_to_serving_seconds": round(
                        relabel_seconds + save_seconds + reload_seconds, 4
                    ),
                    "requests_during_swap": swap_counts["requests"],
                    "pre_swap_answers": swap_counts["pre"],
                    "post_swap_answers": swap_counts["post"],
                    "generation_ambiguous_answers": swap_counts["unchanged"],
                    "errors_during_swap": swap_counts["errors"],
                    "post_swap_bit_identical": True,
                }
            )
            current_graph = new_graph
            current_index = new_index
    return rows


def _scoped_vs_full_row(
    index: HC2LIndex,
    new_graph: Graph,
    changed: Dict[Tuple[int, int], float],
    edges_per_epoch: int,
) -> Dict[str, object]:
    """Time the scoped relabel against the full pass on one change set.

    Uses the minimum of two repeats per side (the label arrays are a few
    MB, so a page-cache hiccup on a single run would dominate the ratio)
    and verifies both produce bit-identical labellings.
    """
    scoped_seconds = float("inf")
    scoped_index = None
    for _ in range(2):
        start = time.perf_counter()
        scoped_index = relabel(index, new_graph, changed_edges=changed)
        scoped_seconds = min(scoped_seconds, time.perf_counter() - start)
    extra = getattr(scoped_index, "_extra", {})
    if not extra.get("relabel_scoped"):
        raise AssertionError(
            "the clustered change set fell back to the full relabel; the "
            "scoped-vs-full row would be meaningless"
        )

    full_seconds = float("inf")
    full_index = None
    for _ in range(2):
        start = time.perf_counter()
        full_index = relabel(index, new_graph)
        full_seconds = min(full_seconds, time.perf_counter() - start)

    if scoped_index.flat_labelling() != full_index.flat_labelling():
        raise AssertionError("scoped relabel diverged from the full relabel")
    return {
        "oracle": "HC2L",
        "workload": "relabel-scoped-vs-full",
        "num_changed_edges": len(changed),
        "edges_per_epoch": edges_per_epoch,
        "scoped_seconds": round(scoped_seconds, 4),
        "full_seconds": round(full_seconds, 4),
        "speedup": round(full_seconds / scoped_seconds, 2),
        "nodes_recomputed": int(extra.get("relabel_nodes_recomputed", 0)),
        "nodes_spliced": int(extra.get("relabel_nodes_spliced", 0)),
    }


def _affected_batch(
    old_index: HC2LIndex,
    new_index: HC2LIndex,
    changed: Dict[Tuple[int, int], float],
    batches: Sequence[Sequence[QueryPair]],
    batch_size: int,
) -> List[QueryPair]:
    """A batch of pairs whose distances differ between the generations.

    Candidates pair the changed edges' endpoints with the workload's
    query vertices; the weight change must shift at least one of them or
    the epoch cannot distinguish old answers from new ones.
    """
    endpoints = sorted({vertex for edge in changed for vertex in edge})
    targets = sorted({t for batch in batches for _, t in batch})
    candidates = [(s, t) for s in endpoints for t in targets if s != t]
    if not candidates:
        raise ValueError("no candidate pairs touch the changed neighbourhood")
    old_values = old_index.distances(candidates)
    new_values = new_index.distances(candidates)
    affected = [
        pair
        for pair, old, new in zip(candidates, old_values, new_values)
        if old != new
    ][:batch_size]
    if not affected:
        raise AssertionError(
            f"reweighting {len(changed)} edges changed no candidate distance; "
            f"the epoch would not distinguish the generations"
        )
    return affected


async def _swap_under_load(
    host: str,
    port: int,
    batches: Sequence[Sequence[QueryPair]],
    old_expect: Sequence[np.ndarray],
    new_expect: Sequence[np.ndarray],
    num_clients: int,
) -> Tuple[float, Dict[str, int]]:
    """Trigger one reload while clients hammer the fleet in closed loop.

    Every answer must be bit-identical to the old or the new generation
    (the swap drains whole batches, so a mixed answer means the drain is
    broken).  Batches whose expected values coincide across generations
    tally as ``unchanged`` - they prove no loss but cannot date the swap.
    Returns the reload round-trip latency and the request tallies; any
    client exception propagates and fails the bench.
    """
    counts = {"requests": 0, "pre": 0, "post": 0, "unchanged": 0, "errors": 0}
    stop = asyncio.Event()
    clients = [await FleetClient.connect(host, port) for _ in range(num_clients)]
    control = await FleetClient.connect(host, port)

    async def run_client(client_id: int, client: FleetClient) -> None:
        i = client_id
        while not stop.is_set():
            batch_id = i % len(batches)
            answers = (await client.distances(batches[batch_id])).tolist()
            old_values = old_expect[batch_id].tolist()
            new_values = new_expect[batch_id].tolist()
            if old_values == new_values and answers == old_values:
                counts["unchanged"] += 1
            elif answers == old_values:
                counts["pre"] += 1
            elif answers == new_values:
                counts["post"] += 1
            else:
                counts["errors"] += 1
                raise AssertionError(
                    f"in-swap answer matched neither generation on batch {batch_id}"
                )
            counts["requests"] += 1
            i += num_clients

    tasks = [
        asyncio.ensure_future(run_client(c, client))
        for c, client in enumerate(clients)
    ]
    try:
        await asyncio.sleep(0.05)  # establish steady-state load pre-swap
        reload_start = time.perf_counter()
        await control.reload()
        reload_seconds = time.perf_counter() - reload_start
        # keep the load running until every client has answered from the
        # new generation - a fixed sleep can observe zero post-swap
        # batches on larger graphs, leaving the in-swap wall unexercised
        deadline = time.perf_counter() + 30.0
        while counts["post"] < num_clients and not any(t.done() for t in tasks):
            if time.perf_counter() > deadline:
                raise AssertionError(
                    "clients saw no post-swap answers within 30s of the reload"
                )
            await asyncio.sleep(0.005)
    finally:
        stop.set()
        results = await asyncio.gather(*tasks, return_exceptions=True)
        for client in clients:
            await client.aclose()
        await control.aclose()
    for result in results:
        if isinstance(result, BaseException):
            counts["errors"] += 1
            raise result
    return reload_seconds, counts
