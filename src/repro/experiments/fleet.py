"""Closed-loop fleet benchmark (serving-scale experiment).

The shard fleet buys process-level parallelism and crash isolation at
the cost of placement, IPC and serialisation per batch.  This workload
quantifies the trade under realistic conditions: a
:class:`~repro.serving.fleet.FleetOracle` is started per
``(worker count, wire mode)`` combination, and ``num_clients``
concurrent TCP clients replay locality-skewed traffic in closed loop -
each client fires its next request the moment the previous answer
returns - recording per-request latency.  Every answer is verified
bit-identical to the monolithic engine before anything is timed.

Three phases per fleet configuration land in ``BENCH_query.json``:

* ``neighborhood-batches`` - the pair-batch workload of PR 7, now with
  a ``wire`` dimension (JSON list frames vs raw binary ndarray frames);
* ``many_to_many-neighborhood`` - dispatch-tick distance matrices
  (``matrix_size ** 2`` floats per reply), the serialization-bound
  shape where the binary wire shows its largest win;
* ``zipf-pairs`` - Zipf-skewed pair batches replayed twice (cold then
  hot) against fleets with the shared cross-worker cache on and off,
  so the cache-hot win and the cache's bookkeeping overhead on the
  cold pass are both visible.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.index import HC2LIndex
from repro.experiments.workloads import (
    neighborhood_batches,
    neighborhood_matrices,
    skewed_pairs,
)
from repro.graph.graph import Graph
from repro.serving.fleet import FleetClient, FleetOracle

QueryPair = Tuple[int, int]

#: wire modes swept by default (order = row order in the bench output)
DEFAULT_WIRES = ("json", "binary")


def fleet_latency_rows(
    index: HC2LIndex,
    graph: Graph,
    workdir: Union[str, Path],
    worker_counts: Sequence[int] = (2, 3),
    num_shards: int = 4,
    num_clients: int = 4,
    num_batches: int = 48,
    batch_size: int = 32,
    seed: int = 17,
    wires: Sequence[str] = DEFAULT_WIRES,
    shared_cache_slots: int = 4096,
    num_matrices: int = 24,
    matrix_size: int = 24,
) -> List[Dict[str, object]]:
    """Measure fleet serving latency per worker count and wire mode.

    Shards ``index`` once under ``workdir`` with hierarchy-aligned
    boundaries, then for each ``(worker count, wire)`` combination
    starts a fleet, verifies every answer against the monolithic engine
    (raises ``AssertionError`` on the first divergence - bit-identical
    or bust), and runs the closed-loop TCP harness over the pair-batch
    and distance-matrix workloads.  A final sweep replays Zipf-skewed
    batches against shared-cache-on and shared-cache-off fleets (cold
    pass then hot pass).  Raises ``ValueError`` if the graph cannot
    produce the requested workload, so a silent empty bench can never
    look like a passing one.
    """
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if not wires:
        raise ValueError("wires must name at least one wire mode")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    path = workdir / "fleet-bench.npz"
    index.save_sharded(path, num_shards=num_shards, boundaries="hierarchy")

    batches = neighborhood_batches(graph, num_batches, batch_size, seed=seed)
    if len(batches) < num_batches:
        raise ValueError(
            f"workload generation produced {len(batches)}/{num_batches} "
            f"batches; the graph is too small or too disconnected for the "
            f"fleet bench"
        )
    baselines = [index.distances(batch) for batch in batches]

    matrices = neighborhood_matrices(graph, num_matrices, matrix_size, seed=seed + 1)
    if len(matrices) < num_matrices:
        raise ValueError(
            f"workload generation produced {len(matrices)}/{num_matrices} "
            f"matrices; the graph is too small for the many_to_many bench"
        )
    matrix_baselines = [
        index.many_to_many(sources, targets) for sources, targets in matrices
    ]

    rows: List[Dict[str, object]] = []
    for num_workers in worker_counts:
        for wire in wires:
            rows.extend(
                _wire_phase_rows(
                    path,
                    index,
                    num_workers=num_workers,
                    wire=wire,
                    num_shards=num_shards,
                    num_clients=num_clients,
                    shared_cache_slots=shared_cache_slots,
                    batches=batches,
                    baselines=baselines,
                    batch_size=batch_size,
                    matrices=matrices,
                    matrix_baselines=matrix_baselines,
                    matrix_size=matrix_size,
                )
            )

    rows.extend(
        _shared_cache_rows(
            path,
            index,
            graph,
            num_workers=worker_counts[0],
            wire="binary" if "binary" in wires else wires[0],
            num_shards=num_shards,
            num_clients=num_clients,
            shared_cache_slots=shared_cache_slots,
            num_batches=num_batches,
            batch_size=batch_size,
            seed=seed + 2,
        )
    )
    return rows


def _wire_phase_rows(
    path: Path,
    index: HC2LIndex,
    *,
    num_workers: int,
    wire: str,
    num_shards: int,
    num_clients: int,
    shared_cache_slots: int,
    batches: Sequence[Sequence[QueryPair]],
    baselines: Sequence[np.ndarray],
    batch_size: int,
    matrices: Sequence[Tuple[List[int], List[int]]],
    matrix_baselines: Sequence[np.ndarray],
    matrix_size: int,
) -> List[Dict[str, object]]:
    """The pair-batch and matrix phases of one fleet configuration."""
    with FleetOracle(
        path,
        num_workers=num_workers,
        wire=wire,
        shared_cache_slots=shared_cache_slots,
    ) as fleet:
        # bit-identity wall before anything is timed (also warms the
        # shared cache identically for every wire, keeping the wire
        # comparison apples-to-apples)
        for batch, baseline in zip(batches, baselines):
            if fleet.distances(batch).tolist() != baseline.tolist():
                raise AssertionError(
                    f"fleet answers diverged from the engine at "
                    f"{num_workers} workers (wire={wire})"
                )
        for (sources, targets), baseline in zip(matrices, matrix_baselines):
            if fleet.many_to_many(sources, targets).tolist() != baseline.tolist():
                raise AssertionError(
                    f"fleet many_to_many diverged from the engine at "
                    f"{num_workers} workers (wire={wire})"
                )
        host, port = fleet.start_tcp()

        fleet.reset_stats()
        latencies, elapsed = asyncio.run(
            _pair_loop(host, port, batches, baselines, num_clients, wire)
        )
        batch_stats = fleet.stats()

        fleet.reset_stats()
        matrix_latencies, matrix_elapsed = asyncio.run(
            _matrix_loop(host, port, matrices, matrix_baselines, num_clients, wire)
        )
        matrix_stats = fleet.stats()

    common = {
        "num_workers": num_workers,
        "wire": wire,
        "num_shards": num_shards,
        "num_clients": num_clients,
        "shared_cache": bool(shared_cache_slots),
    }
    total_queries = sum(len(batch) for batch in batches)
    rows = [
        {
            "oracle": f"HC2L+fleet(workers={num_workers},wire={wire})",
            "workload": "neighborhood-batches",
            **common,
            "num_batches": len(batches),
            "batch_size": batch_size,
            "num_queries": total_queries,
            **_latency_fields(latencies, len(batches), total_queries, elapsed),
            **_placement_fields(batch_stats),
        },
        {
            "oracle": f"HC2L+fleet(workers={num_workers},wire={wire})",
            "workload": "many_to_many-neighborhood",
            **common,
            "num_batches": len(matrices),
            "matrix_size": matrix_size,
            "num_queries": len(matrices) * matrix_size * matrix_size,
            **_latency_fields(
                matrix_latencies,
                len(matrices),
                len(matrices) * matrix_size * matrix_size,
                matrix_elapsed,
            ),
            **_placement_fields(matrix_stats),
        },
    ]
    return rows


def _shared_cache_rows(
    path: Path,
    index: HC2LIndex,
    graph: Graph,
    *,
    num_workers: int,
    wire: str,
    num_shards: int,
    num_clients: int,
    shared_cache_slots: int,
    num_batches: int,
    batch_size: int,
    seed: int,
    exponent: float = 1.3,
) -> List[Dict[str, object]]:
    """Cache-on vs cache-off on Zipf traffic, cold pass then hot pass."""
    pairs = skewed_pairs(graph, num_batches * batch_size, seed=seed, exponent=exponent)
    if len(pairs) < num_batches * batch_size:
        raise ValueError(
            f"workload generation produced {len(pairs)} Zipf pairs, need "
            f"{num_batches * batch_size}"
        )
    batches = [
        pairs[at : at + batch_size] for at in range(0, len(pairs), batch_size)
    ]
    baselines = [index.distances(batch) for batch in batches]

    rows: List[Dict[str, object]] = []
    # dict.fromkeys dedupes while keeping order, so a sweep launched with
    # the cache disabled measures the off-fleet once instead of twice
    for slots in dict.fromkeys((shared_cache_slots, 0)):
        with FleetOracle(
            path, num_workers=num_workers, wire=wire, shared_cache_slots=slots
        ) as fleet:
            for batch, baseline in zip(batches, baselines):
                if fleet.distances(batch).tolist() != baseline.tolist():
                    raise AssertionError(
                        f"fleet answers diverged on the Zipf workload "
                        f"(shared_cache_slots={slots})"
                    )
            host, port = fleet.start_tcp()
            # the verification pass above already warmed the cache, so
            # "cold" here means first timed TCP replay; the cache-off
            # fleet is the true no-cache reference either way
            fleet.reset_stats()
            cold_latencies, _ = asyncio.run(
                _pair_loop(host, port, batches, baselines, num_clients, wire)
            )
            fleet.reset_stats()
            hot_latencies, hot_elapsed = asyncio.run(
                _pair_loop(host, port, batches, baselines, num_clients, wire)
            )
            stats = fleet.stats()
        total_queries = sum(len(batch) for batch in batches)
        row = {
            "oracle": f"HC2L+fleet(workers={num_workers},wire={wire})",
            "workload": "zipf-pairs",
            "num_workers": num_workers,
            "wire": wire,
            "num_shards": num_shards,
            "num_clients": num_clients,
            "shared_cache": bool(slots),
            "shared_cache_slots": slots,
            "zipf_exponent": exponent,
            "num_batches": len(batches),
            "batch_size": batch_size,
            "num_queries": total_queries,
            **_latency_fields(hot_latencies, len(batches), total_queries, hot_elapsed),
            "cold_p50_batch_ms": _p50_ms(cold_latencies),
            **_placement_fields(stats),
        }
        if stats["shared_cache"].get("enabled"):
            cache = stats["shared_cache"]
            row["shared_cache_hit_rate"] = cache["hit_rate"]
            row["shared_cache_hits"] = cache["hits"]
            row["shared_cache_evictions"] = cache["evictions"]
        rows.append(row)
    return rows


def _p50_ms(latencies: Sequence[float]) -> float:
    return round(float(np.percentile(np.asarray(latencies) * 1e3, 50)), 3)


def _latency_fields(
    latencies: Sequence[float], num_requests: int, num_queries: int, elapsed: float
) -> Dict[str, float]:
    latency_ms = np.asarray(latencies, dtype=np.float64) * 1e3
    return {
        "p50_batch_ms": round(float(np.percentile(latency_ms, 50)), 3),
        "p99_batch_ms": round(float(np.percentile(latency_ms, 99)), 3),
        "mean_batch_ms": round(float(latency_ms.mean()), 3),
        "batches_per_second": round(num_requests / elapsed, 1),
        "queries_per_second": round(num_queries / elapsed, 1),
    }


def _placement_fields(stats: Dict[str, object]) -> Dict[str, object]:
    return {
        "majority_hit_rate": stats["majority_hit_rate"],
        "whole_batches": stats["whole_batches"],
        "split_batches": stats["split_batches"],
        "retries": stats["retries"],
        "restarts": stats["restarts"],
    }


async def _pair_loop(
    host: str,
    port: int,
    batches: Sequence[Sequence[QueryPair]],
    baselines: Sequence[np.ndarray],
    num_clients: int,
    wire: str,
) -> Tuple[List[float], float]:
    """Drive pair batches through ``num_clients`` concurrent TCP clients.

    Client ``c`` owns batches ``c, c + num_clients, ...`` and sends them
    back-to-back (closed loop: the next request leaves when the previous
    response lands).  Answers are re-verified against the baselines - a
    placement or marshalling bug must fail the bench, not skew it.
    Returns the per-request latencies and the wall-clock of the whole
    run.
    """

    async def run_client(client_id: int, client: FleetClient) -> List[float]:
        latencies: List[float] = []
        for i in range(client_id, len(batches), num_clients):
            start = time.perf_counter()
            answers = await client.distances(batches[i])
            latencies.append(time.perf_counter() - start)
            if answers.tolist() != baselines[i].tolist():
                raise AssertionError(f"fleet TCP answer diverged on batch {i}")
        return latencies

    return await _drive_clients(host, port, num_clients, wire, run_client)


async def _matrix_loop(
    host: str,
    port: int,
    matrices: Sequence[Tuple[List[int], List[int]]],
    baselines: Sequence[np.ndarray],
    num_clients: int,
    wire: str,
) -> Tuple[List[float], float]:
    """Closed-loop ``many_to_many`` requests (see :func:`_pair_loop`)."""

    async def run_client(client_id: int, client: FleetClient) -> List[float]:
        latencies: List[float] = []
        for i in range(client_id, len(matrices), num_clients):
            sources, targets = matrices[i]
            start = time.perf_counter()
            answers = await client.many_to_many(sources, targets)
            latencies.append(time.perf_counter() - start)
            if answers.tolist() != baselines[i].tolist():
                raise AssertionError(f"fleet TCP matrix diverged on request {i}")
        return latencies

    return await _drive_clients(host, port, num_clients, wire, run_client)


async def _drive_clients(
    host: str, port: int, num_clients: int, wire: str, run_client
) -> Tuple[List[float], float]:
    clients = [
        await FleetClient.connect(host, port, wire=wire) for _ in range(num_clients)
    ]
    try:
        start = time.perf_counter()
        per_client = await asyncio.gather(
            *(run_client(c, client) for c, client in enumerate(clients))
        )
        elapsed = time.perf_counter() - start
    finally:
        for client in clients:
            await client.aclose()
    return [latency for latencies in per_client for latency in latencies], elapsed
