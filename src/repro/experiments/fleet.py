"""Closed-loop fleet benchmark (serving-scale experiment).

The shard fleet buys process-level parallelism and crash isolation at
the cost of placement and IPC per batch.  This workload quantifies the
trade under realistic conditions: a :class:`~repro.serving.fleet.FleetOracle`
is started per worker count, and ``num_clients`` concurrent TCP clients
replay locality-skewed batches (:func:`~repro.experiments.workloads.neighborhood_batches`)
in closed loop - each client fires its next batch the moment the
previous answer returns - recording per-request latency.  Every answer
is verified bit-identical to the monolithic engine before anything is
timed, and the rows carry the placement stats, so ``BENCH_query.json``
shows p50/p99 latency *and* the majority-placement hit rate per worker
count across PRs.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.index import HC2LIndex
from repro.experiments.workloads import neighborhood_batches
from repro.graph.graph import Graph
from repro.serving.fleet import FleetClient, FleetOracle

QueryPair = Tuple[int, int]


def fleet_latency_rows(
    index: HC2LIndex,
    graph: Graph,
    workdir: Union[str, Path],
    worker_counts: Sequence[int] = (2, 3),
    num_shards: int = 4,
    num_clients: int = 4,
    num_batches: int = 48,
    batch_size: int = 32,
    seed: int = 17,
) -> List[Dict[str, object]]:
    """Measure fleet serving latency per worker count.

    Shards ``index`` once under ``workdir`` with hierarchy-aligned
    boundaries, then for each count in ``worker_counts`` starts a fleet,
    verifies every batch answer against the monolithic engine (raises
    ``AssertionError`` on the first divergence - bit-identical or bust),
    and runs the closed-loop TCP harness.  Returns one row per worker
    count; raises ``ValueError`` if the graph cannot produce the
    requested workload, so a silent empty bench can never look like a
    passing one.
    """
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    path = workdir / "fleet-bench.npz"
    index.save_sharded(path, num_shards=num_shards, boundaries="hierarchy")

    batches = neighborhood_batches(graph, num_batches, batch_size, seed=seed)
    if len(batches) < num_batches:
        raise ValueError(
            f"workload generation produced {len(batches)}/{num_batches} "
            f"batches; the graph is too small or too disconnected for the "
            f"fleet bench"
        )
    baselines = [index.distances(batch) for batch in batches]

    rows: List[Dict[str, object]] = []
    for num_workers in worker_counts:
        with FleetOracle(path, num_workers=num_workers) as fleet:
            for batch, baseline in zip(batches, baselines):
                answers = fleet.distances(batch)
                if answers.tolist() != baseline.tolist():
                    raise AssertionError(
                        f"fleet answers diverged from the engine at "
                        f"{num_workers} workers"
                    )
            fleet.reset_stats()
            host, port = fleet.start_tcp()
            latencies, elapsed = asyncio.run(
                _closed_loop(host, port, batches, baselines, num_clients)
            )
            stats = fleet.stats()
        latency_ms = np.asarray(latencies, dtype=np.float64) * 1e3
        total_queries = sum(len(batch) for batch in batches)
        rows.append(
            {
                "oracle": f"HC2L+fleet(workers={num_workers})",
                "num_workers": num_workers,
                "num_shards": num_shards,
                "num_clients": num_clients,
                "num_batches": len(batches),
                "batch_size": batch_size,
                "num_queries": total_queries,
                "p50_batch_ms": round(float(np.percentile(latency_ms, 50)), 3),
                "p99_batch_ms": round(float(np.percentile(latency_ms, 99)), 3),
                "mean_batch_ms": round(float(latency_ms.mean()), 3),
                "batches_per_second": round(len(batches) / elapsed, 1),
                "queries_per_second": round(total_queries / elapsed, 1),
                "majority_hit_rate": stats["majority_hit_rate"],
                "whole_batches": stats["whole_batches"],
                "split_batches": stats["split_batches"],
                "retries": stats["retries"],
                "restarts": stats["restarts"],
            }
        )
    return rows


async def _closed_loop(
    host: str,
    port: int,
    batches: Sequence[Sequence[QueryPair]],
    baselines: Sequence[np.ndarray],
    num_clients: int,
) -> Tuple[List[float], float]:
    """Drive the batches through ``num_clients`` concurrent TCP clients.

    Client ``c`` owns batches ``c, c + num_clients, ...`` and sends them
    back-to-back (closed loop: the next request leaves when the previous
    response lands).  Answers are re-verified against the baselines - a
    placement or marshalling bug must fail the bench, not skew it.
    Returns the per-request latencies and the wall-clock of the whole
    run.
    """

    async def run_client(client_id: int, client: FleetClient) -> List[float]:
        latencies: List[float] = []
        for i in range(client_id, len(batches), num_clients):
            start = time.perf_counter()
            answers = await client.distances(batches[i])
            latencies.append(time.perf_counter() - start)
            if answers.tolist() != baselines[i].tolist():
                raise AssertionError(f"fleet TCP answer diverged on batch {i}")
        return latencies

    clients = [await FleetClient.connect(host, port) for _ in range(num_clients)]
    try:
        start = time.perf_counter()
        per_client = await asyncio.gather(
            *(run_client(c, client) for c, client in enumerate(clients))
        )
        elapsed = time.perf_counter() - start
    finally:
        for client in clients:
            await client.aclose()
    return [latency for latencies in per_client for latency in latencies], elapsed
